//! Fault-universe generation for coverage evaluation.
//!
//! Serial fault simulation needs an explicit fault list. For the classical
//! models the natural universes are:
//!
//! - SAF/TF/SOF/DRF/PUF: two (or one) faults per cell — linear, generated
//!   exhaustively;
//! - coupling faults: quadratic in principle; generated here between
//!   *neighboring* cells (configurable word-distance window plus adjacent
//!   bits within a word), matching the physical-adjacency assumption used
//!   in memory test practice;
//! - address-decoder faults: one remap/multi-access per address per address
//!   bit (`n·log n`), modeling single-bit decoder defects.

use crate::faults::{FaultClass, FaultKind};
use crate::geometry::{CellId, MemGeometry};

/// Parameters for fault-universe generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniverseSpec {
    /// Word-distance window for coupling-fault pairs (`1` = adjacent words).
    pub coupling_window: u64,
    /// Retention time assumed for DRF faults, in nanoseconds.
    pub retention_ns: f64,
    /// Reads survived by a disconnected pull-up/down before decaying.
    pub pull_open_good_reads: u8,
}

impl Default for UniverseSpec {
    fn default() -> Self {
        Self { coupling_window: 1, retention_ns: 50_000.0, pull_open_good_reads: 2 }
    }
}

/// Generates the fault universe for one fault class.
///
/// # Examples
///
/// ```
/// use mbist_mem::{class_universe, FaultClass, MemGeometry, UniverseSpec};
///
/// let g = MemGeometry::bit_oriented(16);
/// let safs = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
/// assert_eq!(safs.len(), 32); // SA0 and SA1 per cell
/// ```
#[must_use]
pub fn class_universe(
    g: &MemGeometry,
    class: FaultClass,
    spec: &UniverseSpec,
) -> Vec<FaultKind> {
    match class {
        FaultClass::StuckAt => g
            .cells()
            .flat_map(|cell| {
                [
                    FaultKind::StuckAt { cell, value: false },
                    FaultKind::StuckAt { cell, value: true },
                ]
            })
            .collect(),
        FaultClass::Transition => g
            .cells()
            .flat_map(|cell| {
                [
                    FaultKind::Transition { cell, rising: true },
                    FaultKind::Transition { cell, rising: false },
                ]
            })
            .collect(),
        FaultClass::CouplingInversion => coupling_pairs(g, spec)
            .into_iter()
            .flat_map(|(aggressor, victim)| {
                [
                    FaultKind::CouplingInversion { aggressor, victim, rising: true },
                    FaultKind::CouplingInversion { aggressor, victim, rising: false },
                ]
            })
            .collect(),
        FaultClass::CouplingIdempotent => coupling_pairs(g, spec)
            .into_iter()
            .flat_map(|(aggressor, victim)| {
                [
                    FaultKind::CouplingIdempotent {
                        aggressor,
                        victim,
                        rising: true,
                        forced: true,
                    },
                    FaultKind::CouplingIdempotent {
                        aggressor,
                        victim,
                        rising: true,
                        forced: false,
                    },
                    FaultKind::CouplingIdempotent {
                        aggressor,
                        victim,
                        rising: false,
                        forced: true,
                    },
                    FaultKind::CouplingIdempotent {
                        aggressor,
                        victim,
                        rising: false,
                        forced: false,
                    },
                ]
            })
            .collect(),
        FaultClass::CouplingState => coupling_pairs(g, spec)
            .into_iter()
            .flat_map(|(aggressor, victim)| {
                [
                    FaultKind::CouplingState {
                        aggressor,
                        victim,
                        when: true,
                        forced: true,
                    },
                    FaultKind::CouplingState {
                        aggressor,
                        victim,
                        when: true,
                        forced: false,
                    },
                    FaultKind::CouplingState {
                        aggressor,
                        victim,
                        when: false,
                        forced: true,
                    },
                    FaultKind::CouplingState {
                        aggressor,
                        victim,
                        when: false,
                        forced: false,
                    },
                ]
            })
            .collect(),
        FaultClass::AddressDecoder => {
            let mut out = Vec::new();
            for from in 0..g.words() {
                for bit in 0..g.addr_bits() {
                    let to = from ^ (1u64 << bit);
                    if g.contains_addr(to) {
                        out.push(FaultKind::AddressMap { from, to });
                        if from < to {
                            out.push(FaultKind::AddressMulti {
                                addr: from,
                                extra: to,
                                wired_and: true,
                            });
                            out.push(FaultKind::AddressMulti {
                                addr: from,
                                extra: to,
                                wired_and: false,
                            });
                        }
                    }
                }
            }
            out
        }
        FaultClass::StuckOpen => {
            g.cells().map(|cell| FaultKind::StuckOpen { cell }).collect()
        }
        FaultClass::Retention => g
            .cells()
            .flat_map(|cell| {
                [
                    FaultKind::Retention {
                        cell,
                        decays_to: false,
                        retention_ns: spec.retention_ns,
                    },
                    FaultKind::Retention {
                        cell,
                        decays_to: true,
                        retention_ns: spec.retention_ns,
                    },
                ]
            })
            .collect(),
        FaultClass::PullOpen => g
            .cells()
            .flat_map(|cell| {
                [
                    FaultKind::PullOpen {
                        cell,
                        good_reads: spec.pull_open_good_reads,
                        decays_to: false,
                    },
                    FaultKind::PullOpen {
                        cell,
                        good_reads: spec.pull_open_good_reads,
                        decays_to: true,
                    },
                ]
            })
            .collect(),
        FaultClass::NpsfStatic => {
            let cols = topology_cols(g);
            let mut out = Vec::new();
            for cell in g.cells() {
                let Some(nb) = neighborhood(g, cell.word, cols) else { continue };
                for pattern in 0..16u8 {
                    let neighborhood = [
                        (CellId::new(nb[0], cell.bit), pattern & 1 != 0),
                        (CellId::new(nb[1], cell.bit), pattern & 2 != 0),
                        (CellId::new(nb[2], cell.bit), pattern & 4 != 0),
                        (CellId::new(nb[3], cell.bit), pattern & 8 != 0),
                    ];
                    for forced in [false, true] {
                        out.push(FaultKind::NpsfStatic {
                            base: cell,
                            neighborhood,
                            forced,
                        });
                    }
                }
            }
            out
        }
        FaultClass::NpsfActive => {
            let cols = topology_cols(g);
            let mut out = Vec::new();
            for cell in g.cells() {
                let Some(nb) = neighborhood(g, cell.word, cols) else { continue };
                for trig in 0..4usize {
                    let rest: Vec<u64> =
                        (0..4).filter(|&k| k != trig).map(|k| nb[k]).collect();
                    for rising in [false, true] {
                        for pattern in 0..8u8 {
                            let others = [
                                (CellId::new(rest[0], cell.bit), pattern & 1 != 0),
                                (CellId::new(rest[1], cell.bit), pattern & 2 != 0),
                                (CellId::new(rest[2], cell.bit), pattern & 4 != 0),
                            ];
                            out.push(FaultKind::NpsfActive {
                                base: cell,
                                trigger: CellId::new(nb[trig], cell.bit),
                                rising,
                                others,
                            });
                        }
                    }
                }
            }
            out
        }
    }
}

/// Exact size of [`class_universe`] without materializing it — counting
/// loops only, no `FaultKind` construction. Lets samplers pick stride
/// indices up front and generate just the kept faults.
#[must_use]
pub fn class_universe_len(
    g: &MemGeometry,
    class: FaultClass,
    spec: &UniverseSpec,
) -> usize {
    let words = usize::try_from(g.words()).expect("words fit usize");
    let width = usize::from(g.width());
    let cells = words * width;
    match class {
        FaultClass::StuckAt
        | FaultClass::Transition
        | FaultClass::Retention
        | FaultClass::PullOpen => 2 * cells,
        FaultClass::StuckOpen => cells,
        FaultClass::CouplingInversion => 2 * coupling_pairs_len(g, spec),
        FaultClass::CouplingIdempotent | FaultClass::CouplingState => {
            4 * coupling_pairs_len(g, spec)
        }
        FaultClass::AddressDecoder => {
            let mut n = 0usize;
            for from in 0..g.words() {
                for bit in 0..g.addr_bits() {
                    let to = from ^ (1u64 << bit);
                    if g.contains_addr(to) {
                        n += if from < to { 3 } else { 1 };
                    }
                }
            }
            n
        }
        FaultClass::NpsfStatic => interior_words(g) * width * 32,
        FaultClass::NpsfActive => interior_words(g) * width * 64,
    }
}

/// Number of `(aggressor, victim)` pairs [`coupling_pairs`] generates.
fn coupling_pairs_len(g: &MemGeometry, spec: &UniverseSpec) -> usize {
    let words = g.words();
    let window = spec.coupling_window;
    let mut word_neighbors = 0u64;
    for w in 0..words {
        word_neighbors += window.min(w) + window.min(words - 1 - w);
    }
    let width = u64::from(g.width());
    usize::try_from(word_neighbors * width + 2 * words * (width - 1))
        .expect("pair count fits usize")
}

/// Number of words with a complete type-1 neighborhood.
fn interior_words(g: &MemGeometry) -> usize {
    let cols = topology_cols(g);
    (0..g.words()).filter(|&w| neighborhood(g, w, cols).is_some()).count()
}

/// Walks the [`class_universe`] enumeration order in fixed-size blocks,
/// constructing only the faults whose global index is in the stride-kept
/// set `ceil(k·len/max) − 1` for `k = 1..=max` — the same subsample
/// `stride_sample` would take from the materialized universe.
struct StrideSampler {
    keep: Box<dyn Iterator<Item = usize>>,
    next: Option<usize>,
    idx: usize,
    out: Vec<FaultKind>,
}

impl StrideSampler {
    fn new(len: usize, max: usize) -> Self {
        let mut keep: Box<dyn Iterator<Item = usize>> =
            Box::new((1..=max).map(move |k| (k * len).div_ceil(max) - 1));
        let next = keep.next();
        Self { keep, next, idx: 0, out: Vec::with_capacity(max) }
    }

    /// Advances past a block of `len` consecutive universe entries,
    /// materializing the kept ones via `gen(offset_in_block)`.
    fn block(&mut self, len: usize, gen: impl Fn(usize) -> FaultKind) {
        let end = self.idx + len;
        while let Some(n) = self.next {
            if n >= end {
                break;
            }
            self.out.push(gen(n - self.idx));
            self.next = self.keep.next();
        }
        self.idx = end;
    }
}

/// [`class_universe`] pre-subsampled to at most `max` faults with the
/// deterministic stride rule `evaluate_coverage` uses (`max == 0` means no
/// cap). Returns exactly `stride_sample(class_universe(..), max)` but
/// generates only the kept faults — on large geometries the NPSF and
/// decoder universes run to tens of thousands of entries, and coverage
/// runs that cap each class at a few hundred should not pay to
/// materialize them.
#[must_use]
pub fn class_universe_sampled(
    g: &MemGeometry,
    class: FaultClass,
    spec: &UniverseSpec,
    max: usize,
) -> Vec<FaultKind> {
    let len = class_universe_len(g, class, spec);
    if max == 0 || len <= max {
        return class_universe(g, class, spec);
    }
    let mut s = StrideSampler::new(len, max);
    match class {
        FaultClass::StuckAt => {
            for cell in g.cells() {
                s.block(2, |i| FaultKind::StuckAt { cell, value: i == 1 });
            }
        }
        FaultClass::Transition => {
            for cell in g.cells() {
                s.block(2, |i| FaultKind::Transition { cell, rising: i == 0 });
            }
        }
        FaultClass::CouplingInversion => {
            for (aggressor, victim) in coupling_pairs(g, spec) {
                s.block(2, |i| FaultKind::CouplingInversion {
                    aggressor,
                    victim,
                    rising: i == 0,
                });
            }
        }
        FaultClass::CouplingIdempotent => {
            for (aggressor, victim) in coupling_pairs(g, spec) {
                s.block(4, |i| FaultKind::CouplingIdempotent {
                    aggressor,
                    victim,
                    rising: i < 2,
                    forced: i % 2 == 0,
                });
            }
        }
        FaultClass::CouplingState => {
            for (aggressor, victim) in coupling_pairs(g, spec) {
                s.block(4, |i| FaultKind::CouplingState {
                    aggressor,
                    victim,
                    when: i < 2,
                    forced: i % 2 == 0,
                });
            }
        }
        FaultClass::AddressDecoder => {
            for from in 0..g.words() {
                for bit in 0..g.addr_bits() {
                    let to = from ^ (1u64 << bit);
                    if g.contains_addr(to) {
                        s.block(1, |_| FaultKind::AddressMap { from, to });
                        if from < to {
                            s.block(2, |i| FaultKind::AddressMulti {
                                addr: from,
                                extra: to,
                                wired_and: i == 0,
                            });
                        }
                    }
                }
            }
        }
        FaultClass::StuckOpen => {
            for cell in g.cells() {
                s.block(1, |_| FaultKind::StuckOpen { cell });
            }
        }
        FaultClass::Retention => {
            for cell in g.cells() {
                s.block(2, |i| FaultKind::Retention {
                    cell,
                    decays_to: i == 1,
                    retention_ns: spec.retention_ns,
                });
            }
        }
        FaultClass::PullOpen => {
            for cell in g.cells() {
                s.block(2, |i| FaultKind::PullOpen {
                    cell,
                    good_reads: spec.pull_open_good_reads,
                    decays_to: i == 1,
                });
            }
        }
        FaultClass::NpsfStatic => {
            let cols = topology_cols(g);
            for cell in g.cells() {
                let Some(nb) = neighborhood(g, cell.word, cols) else { continue };
                s.block(32, |i| {
                    let pattern = u8::try_from(i / 2).expect("pattern fits u8");
                    FaultKind::NpsfStatic {
                        base: cell,
                        neighborhood: [
                            (CellId::new(nb[0], cell.bit), pattern & 1 != 0),
                            (CellId::new(nb[1], cell.bit), pattern & 2 != 0),
                            (CellId::new(nb[2], cell.bit), pattern & 4 != 0),
                            (CellId::new(nb[3], cell.bit), pattern & 8 != 0),
                        ],
                        forced: i % 2 == 1,
                    }
                });
            }
        }
        FaultClass::NpsfActive => {
            let cols = topology_cols(g);
            for cell in g.cells() {
                let Some(nb) = neighborhood(g, cell.word, cols) else { continue };
                s.block(64, |i| {
                    let trig = i / 16;
                    let rising = (i % 16) / 8 == 1;
                    let pattern = u8::try_from(i % 8).expect("pattern fits u8");
                    let rest: Vec<u64> =
                        (0..4).filter(|&k| k != trig).map(|k| nb[k]).collect();
                    FaultKind::NpsfActive {
                        base: cell,
                        trigger: CellId::new(nb[trig], cell.bit),
                        rising,
                        others: [
                            (CellId::new(rest[0], cell.bit), pattern & 1 != 0),
                            (CellId::new(rest[1], cell.bit), pattern & 2 != 0),
                            (CellId::new(rest[2], cell.bit), pattern & 4 != 0),
                        ],
                    }
                });
            }
        }
    }
    debug_assert_eq!(s.idx, len, "sampled walk must cover the whole universe");
    s.out
}

/// The concatenated universe for a class subset, each class independently
/// stride-capped at `max_per_class` faults (`0` = uncapped) — the target
/// fault list a march-test search optimizes against. Classes contribute in
/// the order given, so two callers naming the same subset in the same
/// order see the same fault list in the same order (the determinism the
/// search-result memoization relies on).
#[must_use]
pub fn subset_universe(
    g: &MemGeometry,
    classes: &[FaultClass],
    spec: &UniverseSpec,
    max_per_class: usize,
) -> Vec<FaultKind> {
    let mut out = Vec::new();
    for &class in classes {
        out.extend(class_universe_sampled(g, class, spec, max_per_class));
    }
    out
}

/// The row width assumed for NPSF neighborhoods: words are laid out in
/// rows of `2^⌈addr_bits/2⌉` columns (a square-ish array, the common
/// embedded-SRAM aspect).
#[must_use]
pub fn topology_cols(g: &MemGeometry) -> u64 {
    1u64 << g.addr_bits().div_ceil(2)
}

/// The type-1 (von Neumann) neighborhood of a word — `[north, west, east,
/// south]` — or `None` for edge words whose neighborhood is incomplete.
#[must_use]
pub fn neighborhood(g: &MemGeometry, word: u64, cols: u64) -> Option<[u64; 4]> {
    let row = word / cols;
    let col = word % cols;
    if row == 0 || col == 0 || col + 1 >= cols {
        return None;
    }
    let north = word - cols;
    let south = word + cols;
    let west = word - 1;
    let east = word + 1;
    if !g.contains_addr(south) {
        return None;
    }
    Some([north, west, east, south])
}

/// Ordered (aggressor, victim) cell pairs within the coupling window:
/// cells in words at distance `1..=window`, plus bit-adjacent cells inside
/// the same word.
#[must_use]
pub fn coupling_pairs(g: &MemGeometry, spec: &UniverseSpec) -> Vec<(CellId, CellId)> {
    let mut out = Vec::new();
    for w in 0..g.words() {
        for b in 0..g.width() {
            let cell = CellId::new(w, b);
            // Same bit position in neighboring words, both directions.
            for d in 1..=spec.coupling_window {
                if w >= d {
                    out.push((cell, CellId::new(w - d, b)));
                }
                if w + d < g.words() {
                    out.push((cell, CellId::new(w + d, b)));
                }
            }
            // Adjacent bit within the same word.
            if b + 1 < g.width() {
                out.push((cell, CellId::new(w, b + 1)));
                out.push((CellId::new(w, b + 1), cell));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_universes_have_expected_sizes() {
        let g = MemGeometry::bit_oriented(8);
        let spec = UniverseSpec::default();
        assert_eq!(class_universe(&g, FaultClass::StuckAt, &spec).len(), 16);
        assert_eq!(class_universe(&g, FaultClass::Transition, &spec).len(), 16);
        assert_eq!(class_universe(&g, FaultClass::StuckOpen, &spec).len(), 8);
        assert_eq!(class_universe(&g, FaultClass::Retention, &spec).len(), 16);
        assert_eq!(class_universe(&g, FaultClass::PullOpen, &spec).len(), 16);
    }

    #[test]
    fn coupling_pairs_are_within_window_and_valid() {
        let g = MemGeometry::bit_oriented(8);
        let spec = UniverseSpec { coupling_window: 2, ..UniverseSpec::default() };
        let pairs = coupling_pairs(&g, &spec);
        assert!(!pairs.is_empty());
        for (a, v) in &pairs {
            assert_ne!(a, v);
            assert!(g.contains_cell(*a) && g.contains_cell(*v));
            assert!(a.word.abs_diff(v.word) <= 2);
        }
    }

    #[test]
    fn word_oriented_pairs_include_bit_neighbors() {
        let g = MemGeometry::word_oriented(2, 4);
        let spec = UniverseSpec::default();
        let pairs = coupling_pairs(&g, &spec);
        assert!(pairs.iter().any(|(a, v)| a.word == v.word && a.bit.abs_diff(v.bit) == 1));
    }

    #[test]
    fn every_generated_fault_is_valid() {
        let g = MemGeometry::word_oriented(16, 4);
        let spec = UniverseSpec::default();
        for class in FaultClass::ALL {
            for f in class_universe(&g, class, &spec) {
                assert!(f.is_valid_for(&g), "invalid generated fault {f}");
                assert_eq!(f.class(), class);
            }
        }
    }

    #[test]
    fn npsf_universes_cover_interior_cells_only() {
        // 16 words → 4 columns, interior = rows 1..2 × cols 1..2 minus the
        // bottom edge check: words 5, 6, 9, 10 (with south in range).
        let g = MemGeometry::bit_oriented(16);
        let spec = UniverseSpec::default();
        let cols = topology_cols(&g);
        assert_eq!(cols, 4);
        let interior: Vec<u64> =
            (0..16).filter(|&w| neighborhood(&g, w, cols).is_some()).collect();
        assert_eq!(interior, vec![5, 6, 9, 10]);
        let stat = class_universe(&g, FaultClass::NpsfStatic, &spec);
        assert_eq!(stat.len(), interior.len() * 16 * 2);
        let act = class_universe(&g, FaultClass::NpsfActive, &spec);
        assert_eq!(act.len(), interior.len() * 4 * 2 * 8);
    }

    #[test]
    fn neighborhoods_are_distinct_and_adjacent() {
        let g = MemGeometry::bit_oriented(64);
        let cols = topology_cols(&g);
        assert_eq!(cols, 8);
        let nb = neighborhood(&g, 27, cols).unwrap();
        assert_eq!(nb, [19, 26, 28, 35]);
        assert!(neighborhood(&g, 0, cols).is_none(), "corner has no neighborhood");
        assert!(neighborhood(&g, 7, cols).is_none(), "edge has no neighborhood");
    }

    /// Reference stride rule: keep indices `ceil(k·len/max) − 1`.
    fn stride_oracle(items: Vec<FaultKind>, max: usize) -> Vec<FaultKind> {
        let len = items.len();
        if max == 0 || len <= max {
            return items;
        }
        (1..=max).map(|k| items[(k * len).div_ceil(max) - 1]).collect()
    }

    #[test]
    fn counted_and_sampled_universes_match_the_materialized_ones() {
        let geometries = [
            MemGeometry::bit_oriented(16),
            MemGeometry::bit_oriented(300),
            MemGeometry::word_oriented(12, 4),
            MemGeometry::new(33, 2, 2),
        ];
        let specs = [
            UniverseSpec::default(),
            UniverseSpec { coupling_window: 3, ..UniverseSpec::default() },
        ];
        for g in &geometries {
            for spec in &specs {
                for class in FaultClass::ALL {
                    let full = class_universe(g, class, spec);
                    assert_eq!(
                        class_universe_len(g, class, spec),
                        full.len(),
                        "{class:?} on {g}"
                    );
                    for max in [0usize, 1, 7, 64, 512, full.len()] {
                        assert_eq!(
                            class_universe_sampled(g, class, spec, max),
                            stride_oracle(full.clone(), max),
                            "{class:?} on {g} with max {max}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn decoder_universe_scales_n_log_n() {
        let g = MemGeometry::bit_oriented(16);
        let spec = UniverseSpec::default();
        let afs = class_universe(&g, FaultClass::AddressDecoder, &spec);
        // 16 addresses × 4 bits remaps + 32 ordered-pair multi variants
        assert_eq!(afs.len(), 16 * 4 + 2 * 32);
    }
}
