//! Per-word fault dispatch index.
//!
//! The fault lists serial fault simulation runs against contain exactly one
//! fault, but diagnosis and multi-defect scenarios inject many — and either
//! way, the hot path must not pay an O(faults) scan per bit touched. This
//! index maps each *physical word* to the indices of the fault entries that
//! can affect accesses to it, partitioned by the path on which they act:
//!
//! - `write`: faults consulted while storing a word (SOF, TF, SAF);
//! - `state`: per-cell fault state refreshed by a write (DRF, PUF);
//! - `aggr`: faults triggered by a committed transition in the word
//!   (CFin/CFid by aggressor, ANPSF by trigger);
//! - `read`: faults consulted while observing a word (SOF, DRF, PUF, CFst
//!   by victim, SNPSF by base, SAF);
//! - address-decoder faults (`AddressMap`, `AddressMulti`) keyed by the
//!   logical address they intercept.
//!
//! Index vectors preserve injection order, which the array's semantics
//! depend on (e.g. the last matching stuck-at clamp wins).

use std::collections::HashMap;

use crate::faults::FaultKind;

#[derive(Debug, Clone, Default)]
pub(crate) struct FaultIndex {
    write: HashMap<u64, Vec<u32>>,
    state: HashMap<u64, Vec<u32>>,
    aggr: HashMap<u64, Vec<u32>>,
    read: HashMap<u64, Vec<u32>>,
    addr_map: HashMap<u64, u64>,
    addr_multi: HashMap<u64, Vec<(u64, bool)>>,
}

impl FaultIndex {
    /// Registers fault entry `idx` (its position in the array's fault list).
    pub(crate) fn insert(&mut self, idx: u32, kind: &FaultKind) {
        match *kind {
            FaultKind::StuckAt { cell, .. } => {
                self.write.entry(cell.word).or_default().push(idx);
                self.read.entry(cell.word).or_default().push(idx);
            }
            FaultKind::Transition { cell, .. } => {
                self.write.entry(cell.word).or_default().push(idx);
            }
            FaultKind::StuckOpen { cell } => {
                self.write.entry(cell.word).or_default().push(idx);
                self.read.entry(cell.word).or_default().push(idx);
            }
            FaultKind::Retention { cell, .. } | FaultKind::PullOpen { cell, .. } => {
                self.state.entry(cell.word).or_default().push(idx);
                self.read.entry(cell.word).or_default().push(idx);
            }
            FaultKind::CouplingInversion { aggressor, .. }
            | FaultKind::CouplingIdempotent { aggressor, .. } => {
                self.aggr.entry(aggressor.word).or_default().push(idx);
            }
            FaultKind::CouplingState { victim, .. } => {
                self.read.entry(victim.word).or_default().push(idx);
            }
            FaultKind::NpsfStatic { base, .. } => {
                self.read.entry(base.word).or_default().push(idx);
            }
            FaultKind::NpsfActive { trigger, .. } => {
                self.aggr.entry(trigger.word).or_default().push(idx);
            }
            // The *first* injected remap of an address wins (the resolver
            // historically stopped at the first match).
            FaultKind::AddressMap { from, to } => {
                self.addr_map.entry(from).or_insert(to);
            }
            FaultKind::AddressMulti { addr, extra, wired_and } => {
                self.addr_multi.entry(addr).or_default().push((extra, wired_and));
            }
        }
    }

    pub(crate) fn clear(&mut self) {
        self.write.clear();
        self.state.clear();
        self.aggr.clear();
        self.read.clear();
        self.addr_map.clear();
        self.addr_multi.clear();
    }

    pub(crate) fn write_faults(&self, word: u64) -> &[u32] {
        self.write.get(&word).map_or(&[], Vec::as_slice)
    }

    pub(crate) fn state_faults(&self, word: u64) -> &[u32] {
        self.state.get(&word).map_or(&[], Vec::as_slice)
    }

    pub(crate) fn aggressor_faults(&self, word: u64) -> &[u32] {
        self.aggr.get(&word).map_or(&[], Vec::as_slice)
    }

    pub(crate) fn read_faults(&self, word: u64) -> &[u32] {
        self.read.get(&word).map_or(&[], Vec::as_slice)
    }

    /// Whether any address-decoder fault is present (fast-path gate for the
    /// resolver).
    pub(crate) fn has_address_faults(&self) -> bool {
        !self.addr_map.is_empty() || !self.addr_multi.is_empty()
    }

    pub(crate) fn remap(&self, addr: u64) -> Option<u64> {
        self.addr_map.get(&addr).copied()
    }

    /// Multi-access expansions of `addr`, in injection order.
    pub(crate) fn multi(&self, addr: u64) -> &[(u64, bool)] {
        self.addr_multi.get(&addr).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CellId;

    #[test]
    fn partitions_by_path_and_keeps_injection_order() {
        let mut ix = FaultIndex::default();
        let c = CellId::new(3, 1);
        ix.insert(0, &FaultKind::Transition { cell: c, rising: true });
        ix.insert(1, &FaultKind::StuckAt { cell: c, value: false });
        ix.insert(
            2,
            &FaultKind::Retention { cell: c, decays_to: false, retention_ns: 1.0 },
        );
        assert_eq!(ix.write_faults(3), &[0, 1]);
        assert_eq!(ix.read_faults(3), &[1, 2]);
        assert_eq!(ix.state_faults(3), &[2]);
        assert!(ix.write_faults(4).is_empty());
        assert!(!ix.has_address_faults());
    }

    #[test]
    fn first_address_remap_wins() {
        let mut ix = FaultIndex::default();
        ix.insert(0, &FaultKind::AddressMap { from: 1, to: 4 });
        ix.insert(1, &FaultKind::AddressMap { from: 1, to: 7 });
        assert_eq!(ix.remap(1), Some(4));
        assert!(ix.has_address_faults());
    }

    #[test]
    fn multi_accumulates_in_order() {
        let mut ix = FaultIndex::default();
        ix.insert(0, &FaultKind::AddressMulti { addr: 2, extra: 5, wired_and: true });
        ix.insert(1, &FaultKind::AddressMulti { addr: 2, extra: 6, wired_and: false });
        assert_eq!(ix.multi(2), &[(5, true), (6, false)]);
    }

    #[test]
    fn clear_empties_everything() {
        let mut ix = FaultIndex::default();
        ix.insert(0, &FaultKind::StuckOpen { cell: CellId::new(0, 0) });
        ix.insert(1, &FaultKind::AddressMap { from: 0, to: 1 });
        ix.clear();
        assert!(ix.write_faults(0).is_empty());
        assert!(ix.read_faults(0).is_empty());
        assert!(!ix.has_address_faults());
    }
}
