//! The memory bus protocol between a BIST unit and the array under test.

use std::fmt;

use mbist_rtl::Bits;

use crate::geometry::PortId;

/// A single-cycle memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// Write `data` to the addressed word.
    Write(Bits),
    /// Read the addressed word.
    Read,
}

impl Operation {
    /// Whether this is a write.
    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(self, Operation::Write(_))
    }

    /// Whether this is a read.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self, Operation::Read)
    }
}

/// One bus cycle issued by a BIST controller: port, word address, operation
/// and — for reads — the value the response analyzer expects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusCycle {
    /// Access port used this cycle.
    pub port: PortId,
    /// Word address.
    pub addr: u64,
    /// Operation performed.
    pub op: Operation,
    /// Expected read data (`None` for writes).
    pub expected: Option<Bits>,
}

impl BusCycle {
    /// A write cycle.
    #[must_use]
    pub fn write(port: PortId, addr: u64, data: Bits) -> Self {
        Self { port, addr, op: Operation::Write(data), expected: None }
    }

    /// A read cycle with an expected value for the comparator.
    #[must_use]
    pub fn read(port: PortId, addr: u64, expected: Bits) -> Self {
        Self { port, addr, op: Operation::Read, expected: Some(expected) }
    }

    /// A read cycle whose result is not checked (diagnosis / scrub reads).
    #[must_use]
    pub fn read_unchecked(port: PortId, addr: u64) -> Self {
        Self { port, addr, op: Operation::Read, expected: None }
    }
}

impl fmt::Display for BusCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Operation::Write(d) => {
                write!(f, "{} w{:x}@{:#x}", self.port, d.value(), self.addr)
            }
            Operation::Read => match self.expected {
                Some(e) => write!(f, "{} r{:x}@{:#x}", self.port, e.value(), self.addr),
                None => write!(f, "{} r?@{:#x}", self.port, self.addr),
            },
        }
    }
}

/// A step of an expanded memory test: either a bus cycle or an idle pause
/// (used by data-retention tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TestStep {
    /// Drive one bus cycle.
    Bus(BusCycle),
    /// Idle for the given simulated time (clock to the array kept alive,
    /// no accesses), letting defective cells leak.
    Pause {
        /// Pause duration in nanoseconds.
        ns: f64,
    },
}

impl TestStep {
    /// The bus cycle, if this step is one.
    #[must_use]
    pub fn as_bus(&self) -> Option<&BusCycle> {
        match self {
            TestStep::Bus(c) => Some(c),
            TestStep::Pause { .. } => None,
        }
    }
}

impl From<BusCycle> for TestStep {
    fn from(c: BusCycle) -> Self {
        TestStep::Bus(c)
    }
}

/// The outcome of one checked read: what was expected vs. observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Miscompare {
    /// The failing bus cycle's port.
    pub port: PortId,
    /// The failing word address.
    pub addr: u64,
    /// Expected read data.
    pub expected: Bits,
    /// Observed read data.
    pub observed: Bits,
}

impl Miscompare {
    /// Bit positions that differ (XOR syndrome).
    #[must_use]
    pub fn syndrome(&self) -> Bits {
        self.expected ^ self.observed
    }
}

impl fmt::Display for Miscompare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} addr {:#x}: expected {} observed {}",
            self.port, self.addr, self.expected, self.observed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expectations() {
        let w = BusCycle::write(PortId(0), 3, Bits::bit1(true));
        assert!(w.op.is_write());
        assert!(w.expected.is_none());
        let r = BusCycle::read(PortId(1), 7, Bits::bit1(false));
        assert!(r.op.is_read());
        assert_eq!(r.expected.unwrap().value(), 0);
        let u = BusCycle::read_unchecked(PortId(0), 1);
        assert!(u.expected.is_none());
    }

    #[test]
    fn syndrome_is_xor() {
        let m = Miscompare {
            port: PortId(0),
            addr: 0,
            expected: Bits::new(4, 0b1010),
            observed: Bits::new(4, 0b0011),
        };
        assert_eq!(m.syndrome().value(), 0b1001);
    }

    #[test]
    fn display_forms() {
        let w = BusCycle::write(PortId(0), 16, Bits::new(4, 0xA));
        assert_eq!(w.to_string(), "p0 wa@0x10");
        let r = BusCycle::read(PortId(2), 5, Bits::new(1, 1));
        assert!(r.to_string().contains("r1@0x5"));
    }

    #[test]
    fn step_conversions() {
        let c = BusCycle::read_unchecked(PortId(0), 0);
        let s: TestStep = c.into();
        assert_eq!(s.as_bus(), Some(&c));
        assert!(TestStep::Pause { ns: 1.0 }.as_bus().is_none());
    }
}
