//! Small deterministic pseudo-random generators (std-only).
//!
//! These are the workspace's fallback for the `rand` crate: good enough for
//! power-up state modeling, test-case sampling and benchmark inputs, with
//! bit-for-bit reproducibility from a seed. Not cryptographically secure.

/// SplitMix64: fast, full-period 64-bit generator. Used by
/// [`MemoryArray::randomize`](crate::MemoryArray::randomize) to model
/// unknown power-up state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed` (any value, including zero, is fine).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xorshift64*: a tiny generator with a non-zero-state invariant; a zero
/// seed is remapped to a fixed constant.
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`; returns 0 when `n == 0`. Modulo reduction —
    /// slightly biased for huge `n`, fine for sampling workloads.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // First outputs for seed 0 (public SplitMix64 reference values).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = XorShift64Star::new(99);
        let mut b = XorShift64Star::new(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_still_generates() {
        let mut r = XorShift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
        assert!(r.below(10) < 10);
        assert_eq!(r.below(0), 0);
    }
}
