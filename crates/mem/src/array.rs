//! The fault-injectable memory array.

use mbist_rtl::Bits;

use crate::error::MemError;
use crate::faults::{FaultId, FaultKind};
use crate::geometry::{CellId, MemGeometry, PortId};
use crate::index::FaultIndex;
use crate::rng::SplitMix64;

/// Default simulated time per access, matching the default 100 MHz
/// [`Clock`](mbist_rtl::Clock).
pub const DEFAULT_CYCLE_NS: f64 = 10.0;

#[derive(Debug, Clone, Default)]
struct FaultState {
    /// Consecutive reads of the cell since its last write (PullOpen).
    consecutive_reads: u8,
    /// Simulated time of the last write to the cell (Retention).
    last_write_ns: f64,
}

#[derive(Debug, Clone)]
struct FaultEntry {
    kind: FaultKind,
    state: FaultState,
}

#[derive(Debug, Clone, Default)]
struct SenseLatch {
    value: u64,
    valid: bool,
}

/// A simulated embedded memory with injectable functional faults.
///
/// The array models the *behavior* a BIST unit observes through the bus:
/// fault effects are applied on the read and write paths exactly as the
/// corresponding defect mechanisms would manifest (see
/// [`FaultKind`] for the catalogue). A fault-free array behaves as an ideal
/// RAM.
///
/// Accesses operate on whole `u64` words (the geometry invariant
/// `width ≤ 64` makes one word one machine word), and injected faults are
/// dispatched through a per-word index built at injection time, so the
/// fault-free and single-fault paths — the ones serial fault simulation
/// hammers — never scan the fault list or allocate.
///
/// # Examples
///
/// ```
/// use mbist_mem::{CellId, FaultKind, MemGeometry, MemoryArray, PortId};
/// use mbist_rtl::Bits;
///
/// let mut mem = MemoryArray::new(MemGeometry::bit_oriented(16));
/// mem.inject(FaultKind::StuckAt { cell: CellId::bit_oriented(5), value: false })?;
/// let p = PortId(0);
/// mem.write(p, 5, Bits::bit1(true));
/// assert_eq!(mem.read(p, 5).value(), 0, "stuck-at-0 cell ignores the write");
/// # Ok::<(), mbist_mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemoryArray {
    geometry: MemGeometry,
    words: Vec<u64>,
    faults: Vec<FaultEntry>,
    index: FaultIndex,
    sense: Vec<SenseLatch>,
    now_ns: f64,
    cycle_ns: f64,
    accesses: u64,
}

impl MemoryArray {
    /// Creates a fault-free, zero-initialized array.
    #[must_use]
    pub fn new(geometry: MemGeometry) -> Self {
        Self {
            geometry,
            words: vec![0; usize::try_from(geometry.words()).expect("words fit usize")],
            faults: Vec::new(),
            index: FaultIndex::default(),
            sense: vec![SenseLatch::default(); usize::from(geometry.ports())],
            now_ns: 0.0,
            cycle_ns: DEFAULT_CYCLE_NS,
            accesses: 0,
        }
    }

    /// Creates an array with a single injected fault — the common shape for
    /// serial fault simulation.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidFault`] if the fault does not fit the
    /// geometry.
    pub fn with_fault(geometry: MemGeometry, fault: FaultKind) -> Result<Self, MemError> {
        let mut mem = Self::new(geometry);
        mem.inject(fault)?;
        Ok(mem)
    }

    /// The memory organization.
    #[must_use]
    pub fn geometry(&self) -> MemGeometry {
        self.geometry
    }

    /// Simulated time in nanoseconds.
    #[must_use]
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Number of read/write accesses performed.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Sets the simulated time consumed per access.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is not positive and finite.
    pub fn set_cycle_ns(&mut self, ns: f64) {
        assert!(ns.is_finite() && ns > 0.0, "cycle time must be positive");
        self.cycle_ns = ns;
    }

    /// Injects a fault, returning its handle.
    ///
    /// Injecting a stuck-at fault immediately clamps the stored value, as
    /// the physical defect would.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidFault`] if the fault references cells or
    /// addresses outside the geometry, or aggressor == victim.
    pub fn inject(&mut self, kind: FaultKind) -> Result<FaultId, MemError> {
        if !kind.is_valid_for(&self.geometry) {
            return Err(MemError::InvalidFault { fault: format!("{kind}") });
        }
        if let FaultKind::StuckAt { cell, value } = kind {
            self.set_raw(cell, value);
        }
        let state = FaultState { last_write_ns: self.now_ns, ..FaultState::default() };
        let idx = u32::try_from(self.faults.len()).expect("fault count fits u32");
        self.faults.push(FaultEntry { kind, state });
        self.index.insert(idx, &kind);
        Ok(FaultId(self.faults.len() - 1))
    }

    /// The kinds of all injected faults, in injection order.
    #[must_use]
    pub fn fault_kinds(&self) -> Vec<FaultKind> {
        self.faults.iter().map(|f| f.kind).collect()
    }

    /// Removes every injected fault (stored values keep whatever state the
    /// faults left behind).
    pub fn clear_faults(&mut self) {
        self.faults.clear();
        self.index.clear();
    }

    /// Restores the array to the `new(geometry)` state in place: zeroed
    /// storage, no faults, invalid sense latches, time and access counters
    /// at zero.
    ///
    /// This is the scratch-reuse primitive for serial fault simulation —
    /// `fill(0)` + [`clear_faults`](Self::clear_faults) alone would leak
    /// sense-latch validity and `now_ns` from the previous fault's run,
    /// changing stuck-open and retention behavior.
    pub fn reset(&mut self) {
        self.words.fill(0);
        self.faults.clear();
        self.index.clear();
        for latch in &mut self.sense {
            *latch = SenseLatch::default();
        }
        self.now_ns = 0.0;
        self.accesses = 0;
    }

    /// Idles for `ns` nanoseconds — the data-retention pause.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or non-finite.
    pub fn pause(&mut self, ns: f64) {
        assert!(ns.is_finite() && ns >= 0.0, "pause must be non-negative");
        self.now_ns += ns;
    }

    /// Writes `data` through `port` at word address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the port, address or data width is out of range for the
    /// geometry — a BIST controller never produces such accesses, so they
    /// indicate a harness bug.
    pub fn write(&mut self, port: PortId, addr: u64, data: Bits) {
        self.validate_access(port, addr);
        assert_eq!(data.width(), self.geometry.width(), "write data width mismatch");
        self.advance();
        if !self.index.has_address_faults() {
            self.write_word(addr, data);
            return;
        }
        // Address-decoder faults: at most one remap, then any multi-access
        // expansions of the remapped address.
        let a = self.index.remap(addr).unwrap_or(addr);
        self.write_word(a, data);
        let extras: Vec<u64> =
            self.index.multi(a).iter().map(|&(extra, _)| extra).collect();
        for extra in extras {
            self.write_word(extra, data);
        }
    }

    /// Writes one physical word in two phases: first the whole word is
    /// stored through `u64` masks (stuck-open suppression, transition
    /// faults, stuck-at clamping), then coupling faults triggered by the
    /// actual committed transitions are applied. A victim inside the *same*
    /// word is disturbed only if its own value held during the write (its
    /// write driver was not actively transitioning it) — the classical
    /// sensitization condition for intra-word coupling; victims in other
    /// words are always disturbed.
    fn write_word(&mut self, word: u64, data: Bits) {
        let old = self.words[word as usize];
        let requested = data.value();
        let mut new = requested;
        let mut sof = 0u64;

        if !self.faults.is_empty() {
            let write_list = self.index.write_faults(word);
            // SOF: disconnected cells lose the write entirely.
            for &fi in write_list {
                if let FaultKind::StuckOpen { cell } = self.faults[fi as usize].kind {
                    sof |= 1 << cell.bit;
                }
            }
            // TF: the broken transition leaves the old value in place. The
            // conditions are checked against (old stored, requested) — the
            // two directions are mutually exclusive per bit.
            for &fi in write_list {
                if let FaultKind::Transition { cell, rising } =
                    self.faults[fi as usize].kind
                {
                    let b = 1u64 << cell.bit;
                    if sof & b == 0 {
                        let o = old & b != 0;
                        let n = requested & b != 0;
                        if rising && !o && n {
                            new &= !b;
                        }
                        if !rising && o && !n {
                            new |= b;
                        }
                    }
                }
            }
            // SAF clamps last; the last matching fault wins.
            for &fi in write_list {
                if let FaultKind::StuckAt { cell, value } = self.faults[fi as usize].kind {
                    let b = 1u64 << cell.bit;
                    if sof & b == 0 {
                        if value {
                            new |= b;
                        } else {
                            new &= !b;
                        }
                    }
                }
            }
            new = (new & !sof) | (old & sof);
        }
        self.words[word as usize] = new;

        if !self.faults.is_empty() {
            // Fault-state bookkeeping for every cell whose write landed.
            let MemoryArray { ref index, ref mut faults, now_ns, .. } = *self;
            for &fi in index.state_faults(word) {
                let entry = &mut faults[fi as usize];
                match entry.kind {
                    FaultKind::Retention { cell, .. } if sof & (1 << cell.bit) == 0 => {
                        entry.state.last_write_ns = now_ns;
                    }
                    FaultKind::PullOpen { cell, .. } if sof & (1 << cell.bit) == 0 => {
                        entry.state.consecutive_reads = 0;
                    }
                    _ => {}
                }
            }
        }

        // Phase 2: coupling effects from actual committed transitions.
        let changed = old ^ new;
        if changed == 0 {
            return;
        }
        let aggr_list = self.index.aggressor_faults(word);
        if aggr_list.is_empty() {
            return;
        }
        // Collect in (bit-ascending, injection) order; deleted-neighborhood
        // patterns are evaluated against the committed storage *before* any
        // effect is applied.
        let mut effects: Vec<(CellId, Effect)> = Vec::new();
        let mut m = changed;
        while m != 0 {
            let bit = m.trailing_zeros() as u8;
            m &= m - 1;
            let rising = new & (1u64 << bit) != 0;
            let aggressor = CellId::new(word, bit);
            for &fi in aggr_list {
                match self.faults[fi as usize].kind {
                    FaultKind::CouplingInversion { aggressor: a, victim, rising: r }
                        if a == aggressor
                            && r == rising
                            && victim_sensitized(victim, word, changed) =>
                    {
                        effects.push((victim, Effect::Invert));
                    }
                    FaultKind::CouplingIdempotent {
                        aggressor: a,
                        victim,
                        rising: r,
                        forced,
                    } if a == aggressor
                        && r == rising
                        && victim_sensitized(victim, word, changed) =>
                    {
                        effects.push((victim, Effect::Force(forced)));
                    }
                    FaultKind::NpsfActive { base, trigger, rising: r, others }
                        if trigger == aggressor
                            && r == rising
                            && others
                                .iter()
                                .all(|(c, v)| bit_of(&self.words, *c) == *v)
                            && victim_sensitized(base, word, changed) =>
                    {
                        effects.push((base, Effect::Invert));
                    }
                    _ => {}
                }
            }
        }
        for (victim, effect) in effects {
            let MemoryArray { ref index, ref mut faults, ref mut words, now_ns, .. } =
                *self;
            let v = match effect {
                Effect::Invert => !bit_of(words, victim),
                Effect::Force(b) => b,
            };
            store_victim_raw(index, faults, words, now_ns, victim, v);
        }
    }

    /// Reads through `port` at word address `addr`, applying every active
    /// fault effect on the read path.
    ///
    /// # Panics
    ///
    /// Panics if the port or address is out of range for the geometry.
    pub fn read(&mut self, port: PortId, addr: u64) -> Bits {
        self.validate_access(port, addr);
        self.advance();
        let value = if !self.index.has_address_faults() {
            self.observe_word(port, addr)
        } else {
            // Address-decoder faults: at most one remap, then multi-access
            // expansions combined wired-AND/OR (the polarity of the last
            // matching multi-access fault).
            let a = self.index.remap(addr).unwrap_or(addr);
            let mut combined = self.observe_word(port, a);
            let multi: Vec<(u64, bool)> = self.index.multi(a).to_vec();
            let wired_and = multi.last().is_none_or(|&(_, wa)| wa);
            for &(extra, _) in &multi {
                let v = self.observe_word(port, extra);
                combined = if wired_and { combined & v } else { combined | v };
            }
            combined
        };
        let latch = &mut self.sense[usize::from(port.0)];
        latch.value = value;
        latch.valid = true;
        Bits::new(self.geometry.width(), value)
    }

    /// Observes one physical word: bits without read-path faults come
    /// straight from storage; each faulted bit runs the full per-cell
    /// observation sequence.
    fn observe_word(&mut self, port: PortId, word: u64) -> u64 {
        let raw = self.words[word as usize];
        let mut faulty = 0u64;
        {
            let list = self.index.read_faults(word);
            if list.is_empty() {
                return raw;
            }
            for &fi in list {
                let bit = match self.faults[fi as usize].kind {
                    FaultKind::StuckAt { cell, .. }
                    | FaultKind::StuckOpen { cell }
                    | FaultKind::Retention { cell, .. }
                    | FaultKind::PullOpen { cell, .. } => cell.bit,
                    FaultKind::CouplingState { victim, .. } => victim.bit,
                    FaultKind::NpsfStatic { base, .. } => base.bit,
                    _ => continue,
                };
                faulty |= 1 << bit;
            }
        }
        let mut value = raw;
        let mut m = faulty;
        while m != 0 {
            let bit = m.trailing_zeros() as u8;
            m &= m - 1;
            let MemoryArray {
                ref index,
                ref mut faults,
                ref mut words,
                ref sense,
                now_ns,
                ..
            } = *self;
            let observed = observed_bit_indexed(
                index,
                faults,
                words,
                sense,
                now_ns,
                port,
                CellId::new(word, bit),
            );
            if observed {
                value |= 1 << bit;
            } else {
                value &= !(1 << bit);
            }
        }
        value
    }

    /// Backdoor read of the stored word, bypassing the read path (no fault
    /// effects except what is physically stored, no time advance).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn peek(&self, addr: u64) -> Bits {
        assert!(self.geometry.contains_addr(addr), "peek address out of range");
        Bits::new(self.geometry.width(), self.words[addr as usize])
    }

    /// Backdoor write of the stored word (no fault effects, no time
    /// advance). Useful for setting up test preconditions.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or the width mismatches.
    pub fn poke(&mut self, addr: u64, data: Bits) {
        assert!(self.geometry.contains_addr(addr), "poke address out of range");
        assert_eq!(data.width(), self.geometry.width(), "poke data width mismatch");
        self.words[addr as usize] = data.value();
    }

    /// Fills every word with `data` via the backdoor.
    ///
    /// # Panics
    ///
    /// Panics if the width mismatches.
    pub fn fill(&mut self, data: Bits) {
        assert_eq!(data.width(), self.geometry.width(), "fill data width mismatch");
        self.words.fill(data.value());
    }

    /// Deterministically randomizes all stored words from `seed`
    /// ([SplitMix64](crate::rng::SplitMix64)), modeling unknown power-up
    /// state.
    pub fn randomize(&mut self, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        let mask = if self.geometry.width() >= 64 {
            u64::MAX
        } else {
            (1u64 << self.geometry.width()) - 1
        };
        for w in &mut self.words {
            *w = rng.next_u64() & mask;
        }
    }

    // ----- internal machinery -------------------------------------------

    fn validate_access(&self, port: PortId, addr: u64) {
        assert!(
            usize::from(port.0) < self.sense.len(),
            "port {port} out of range for {} ports",
            self.geometry.ports()
        );
        assert!(
            self.geometry.contains_addr(addr),
            "address {addr:#x} out of range for {} words",
            self.geometry.words()
        );
    }

    fn advance(&mut self) {
        self.now_ns += self.cycle_ns;
        self.accesses += 1;
    }

    fn set_raw(&mut self, cell: CellId, value: bool) {
        set_bit(&mut self.words, cell, value);
    }
}

/// Whether a coupling effect reaches `victim` given the committed change
/// mask of the word just written (see [`MemoryArray::write_word`]).
fn victim_sensitized(victim: CellId, word: u64, changed: u64) -> bool {
    victim.word != word || changed & (1u64 << victim.bit) == 0
}

fn bit_of(words: &[u64], cell: CellId) -> bool {
    (words[cell.word as usize] >> cell.bit) & 1 == 1
}

fn set_bit(words: &mut [u64], cell: CellId, value: bool) {
    let w = &mut words[cell.word as usize];
    if value {
        *w |= 1 << cell.bit;
    } else {
        *w &= !(1 << cell.bit);
    }
}

/// Full functional read of one cell that has at least one read-path fault.
///
/// Free function over the array's destructured fields so the caller can
/// split borrows: the fault-state mutations (retention decay, pull-open
/// drain) need `&mut` access while the dispatch index stays shared.
#[allow(clippy::too_many_arguments)]
fn observed_bit_indexed(
    index: &FaultIndex,
    faults: &mut [FaultEntry],
    words: &mut [u64],
    sense: &[SenseLatch],
    now_ns: f64,
    port: PortId,
    cell: CellId,
) -> bool {
    let list = index.read_faults(cell.word);

    // SOF dominates: nothing is driven, the sense amp keeps its value.
    for &fi in list {
        if matches!(faults[fi as usize].kind, FaultKind::StuckOpen { cell: c } if c == cell)
        {
            let latch = &sense[usize::from(port.0)];
            return latch.valid && (latch.value >> cell.bit) & 1 == 1;
        }
    }

    // Retention decay is applied lazily at observation time.
    let mut decay: Option<bool> = None;
    for &fi in list {
        let entry = &faults[fi as usize];
        if let FaultKind::Retention { cell: c, decays_to, retention_ns } = entry.kind {
            if c == cell && now_ns - entry.state.last_write_ns > retention_ns {
                decay = Some(decays_to);
            }
        }
    }
    if let Some(v) = decay {
        store_victim_raw(index, faults, words, now_ns, cell, v);
    }

    let mut v = bit_of(words, cell);

    // Disconnected pull-up/down: repeated reads drain the node.
    let mut drained: Option<bool> = None;
    for &fi in list {
        if let FaultKind::PullOpen { cell: c, good_reads, decays_to } =
            faults[fi as usize].kind
        {
            if c == cell {
                let st = &mut faults[fi as usize].state;
                st.consecutive_reads = st.consecutive_reads.saturating_add(1);
                if st.consecutive_reads > good_reads {
                    drained = Some(decays_to);
                }
            }
        }
    }
    if let Some(d) = drained {
        v = d;
        store_victim_raw(index, faults, words, now_ns, cell, d);
    }

    // State coupling masks the read while the aggressor holds `when`.
    for &fi in list {
        if let FaultKind::CouplingState { aggressor, victim, when, forced } =
            faults[fi as usize].kind
        {
            if victim == cell && bit_of(words, aggressor) == when {
                v = forced;
            }
        }
    }

    // Static NPSF masks the read while the whole neighborhood pattern is
    // present.
    for &fi in list {
        if let FaultKind::NpsfStatic { base, neighborhood, forced } =
            faults[fi as usize].kind
        {
            if base == cell && neighborhood.iter().all(|(c, val)| bit_of(words, *c) == *val)
            {
                v = forced;
            }
        }
    }

    // Stuck-at clamps last (raw storage is already clamped, but CFst
    // masking above could in principle disagree).
    for &fi in list {
        if let FaultKind::StuckAt { cell: c, value } = faults[fi as usize].kind {
            if c == cell {
                v = value;
            }
        }
    }
    v
}

/// Stores a coupling-induced (or decay-induced) value on a victim:
/// stuck-at clamp applies, but no transition faults and no further coupling
/// cascade (the standard single-level CF simulation model).
fn store_victim_raw(
    index: &FaultIndex,
    faults: &mut [FaultEntry],
    words: &mut [u64],
    now_ns: f64,
    cell: CellId,
    value: bool,
) {
    let mut val = value;
    for &fi in index.write_faults(cell.word) {
        if let FaultKind::StuckAt { cell: c, value: v } = faults[fi as usize].kind {
            if c == cell {
                val = v;
            }
        }
    }
    set_bit(words, cell, val);
    for &fi in index.state_faults(cell.word) {
        let entry = &mut faults[fi as usize];
        match entry.kind {
            FaultKind::Retention { cell: c, .. } if c == cell => {
                entry.state.last_write_ns = now_ns;
            }
            FaultKind::PullOpen { cell: c, .. } if c == cell => {
                entry.state.consecutive_reads = 0;
            }
            _ => {}
        }
    }
}

#[derive(Clone, Copy)]
enum Effect {
    Invert,
    Force(bool),
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PortId = PortId(0);

    fn bit_mem(words: u64) -> MemoryArray {
        MemoryArray::new(MemGeometry::bit_oriented(words))
    }

    fn one() -> Bits {
        Bits::bit1(true)
    }

    fn zero() -> Bits {
        Bits::bit1(false)
    }

    #[test]
    fn fault_free_memory_is_ideal() {
        let mut m = bit_mem(8);
        for a in 0..8 {
            m.write(P, a, if a % 2 == 0 { one() } else { zero() });
        }
        for a in 0..8 {
            assert_eq!(m.read(P, a).value(), u64::from(a % 2 == 0));
        }
    }

    #[test]
    fn stuck_at_clamps_on_injection_and_write() {
        let mut m = bit_mem(4);
        m.poke(2, one());
        m.inject(FaultKind::StuckAt { cell: CellId::bit_oriented(2), value: false })
            .unwrap();
        assert_eq!(m.peek(2).value(), 0, "injection clamps stored value");
        m.write(P, 2, one());
        assert_eq!(m.read(P, 2).value(), 0);
    }

    #[test]
    fn transition_fault_blocks_one_direction_only() {
        let mut m = bit_mem(4);
        m.inject(FaultKind::Transition { cell: CellId::bit_oriented(1), rising: true })
            .unwrap();
        m.write(P, 1, one());
        assert_eq!(m.read(P, 1).value(), 0, "0→1 blocked");
        m.poke(1, one());
        m.write(P, 1, zero());
        assert_eq!(m.read(P, 1).value(), 0, "1→0 still works");
        m.write(P, 1, one());
        assert_eq!(m.read(P, 1).value(), 0, "and 0→1 blocked again");
    }

    #[test]
    fn falling_transition_fault() {
        let mut m = bit_mem(4);
        m.inject(FaultKind::Transition { cell: CellId::bit_oriented(1), rising: false })
            .unwrap();
        m.write(P, 1, one());
        assert_eq!(m.read(P, 1).value(), 1);
        m.write(P, 1, zero());
        assert_eq!(m.read(P, 1).value(), 1, "1→0 blocked");
    }

    #[test]
    fn coupling_inversion_fires_on_matching_transition() {
        let mut m = bit_mem(8);
        m.inject(FaultKind::CouplingInversion {
            aggressor: CellId::bit_oriented(3),
            victim: CellId::bit_oriented(5),
            rising: true,
        })
        .unwrap();
        m.write(P, 5, zero());
        m.write(P, 3, one()); // rising aggressor transition → victim inverts
        assert_eq!(m.read(P, 5).value(), 1);
        m.write(P, 3, zero()); // falling: no effect
        assert_eq!(m.read(P, 5).value(), 1);
        m.write(P, 3, one()); // rising again → inverts back
        assert_eq!(m.read(P, 5).value(), 0);
    }

    #[test]
    fn coupling_inversion_needs_actual_transition() {
        let mut m = bit_mem(8);
        m.inject(FaultKind::CouplingInversion {
            aggressor: CellId::bit_oriented(3),
            victim: CellId::bit_oriented(5),
            rising: true,
        })
        .unwrap();
        m.poke(3, one());
        m.write(P, 5, zero());
        m.write(P, 3, one()); // 1→1: no transition, no effect
        assert_eq!(m.read(P, 5).value(), 0);
    }

    #[test]
    fn coupling_idempotent_forces_value() {
        let mut m = bit_mem(8);
        m.inject(FaultKind::CouplingIdempotent {
            aggressor: CellId::bit_oriented(0),
            victim: CellId::bit_oriented(7),
            rising: false,
            forced: true,
        })
        .unwrap();
        m.poke(0, one());
        m.write(P, 7, zero());
        m.write(P, 0, zero()); // falling transition forces victim to 1
        assert_eq!(m.read(P, 7).value(), 1);
        // forcing again when already 1 changes nothing
        m.poke(0, one());
        m.write(P, 0, zero());
        assert_eq!(m.read(P, 7).value(), 1);
    }

    #[test]
    fn coupling_state_masks_reads_while_active() {
        let mut m = bit_mem(8);
        m.inject(FaultKind::CouplingState {
            aggressor: CellId::bit_oriented(2),
            victim: CellId::bit_oriented(6),
            when: true,
            forced: false,
        })
        .unwrap();
        m.write(P, 6, one());
        m.write(P, 2, one()); // activate
        assert_eq!(m.read(P, 6).value(), 0, "masked while aggressor=1");
        m.write(P, 2, zero()); // deactivate
        assert_eq!(m.read(P, 6).value(), 1, "stored value was preserved");
    }

    #[test]
    fn address_map_redirects_both_reads_and_writes() {
        let mut m = bit_mem(8);
        m.inject(FaultKind::AddressMap { from: 1, to: 4 }).unwrap();
        m.write(P, 1, one()); // really writes word 4
        assert_eq!(m.peek(4).value(), 1);
        assert_eq!(m.peek(1).value(), 0);
        assert_eq!(m.read(P, 1).value(), 1, "read of 1 observes word 4");
        m.poke(4, zero());
        assert_eq!(m.read(P, 1).value(), 0);
    }

    #[test]
    fn address_multi_write_hits_both_and_read_combines() {
        let mut m = bit_mem(8);
        m.inject(FaultKind::AddressMulti { addr: 2, extra: 6, wired_and: true }).unwrap();
        m.write(P, 2, one());
        assert_eq!(m.peek(2).value(), 1);
        assert_eq!(m.peek(6).value(), 1);
        m.poke(6, zero());
        assert_eq!(m.read(P, 2).value(), 0, "wired-AND of 1 and 0");
        let mut m2 = bit_mem(8);
        m2.inject(FaultKind::AddressMulti { addr: 2, extra: 6, wired_and: false }).unwrap();
        m2.poke(2, zero());
        m2.poke(6, one());
        assert_eq!(m2.read(P, 2).value(), 1, "wired-OR of 0 and 1");
    }

    #[test]
    fn stuck_open_returns_previous_sense_value() {
        let mut m = bit_mem(8);
        m.inject(FaultKind::StuckOpen { cell: CellId::bit_oriented(3) }).unwrap();
        m.write(P, 3, one()); // lost
        assert_eq!(m.peek(3).value(), 0);
        m.write(P, 2, one());
        let _ = m.read(P, 2); // sense now holds 1
        assert_eq!(m.read(P, 3).value(), 1, "sense amp repeats previous read");
        m.write(P, 4, zero());
        let _ = m.read(P, 4); // sense now holds 0
        assert_eq!(m.read(P, 3).value(), 0);
    }

    #[test]
    fn retention_decays_only_after_pause() {
        let mut m = bit_mem(4);
        m.inject(FaultKind::Retention {
            cell: CellId::bit_oriented(1),
            decays_to: false,
            retention_ns: 1_000.0,
        })
        .unwrap();
        m.write(P, 1, one());
        assert_eq!(m.read(P, 1).value(), 1, "no decay without pause");
        m.pause(2_000.0);
        assert_eq!(m.read(P, 1).value(), 0, "decayed after exceeding retention");
        // rewriting refreshes the cell
        m.write(P, 1, one());
        assert_eq!(m.read(P, 1).value(), 1);
    }

    #[test]
    fn pull_open_decays_after_good_reads() {
        let mut m = bit_mem(4);
        m.inject(FaultKind::PullOpen {
            cell: CellId::bit_oriented(2),
            good_reads: 2,
            decays_to: false,
        })
        .unwrap();
        m.write(P, 2, one());
        assert_eq!(m.read(P, 2).value(), 1, "read 1 ok");
        assert_eq!(m.read(P, 2).value(), 1, "read 2 ok");
        assert_eq!(m.read(P, 2).value(), 0, "read 3 drained");
        // write resets the drain counter
        m.write(P, 2, one());
        assert_eq!(m.read(P, 2).value(), 1);
    }

    #[test]
    fn static_npsf_masks_reads_only_under_the_full_pattern() {
        // 16 words, 4 columns: base 5 with neighborhood [1, 4, 6, 9].
        let mut m = bit_mem(16);
        let nb = |w: u64| CellId::bit_oriented(w);
        m.inject(FaultKind::NpsfStatic {
            base: nb(5),
            neighborhood: [(nb(1), true), (nb(4), true), (nb(6), false), (nb(9), true)],
            forced: false,
        })
        .unwrap();
        m.write(P, 5, one());
        // Partial pattern: no effect.
        m.write(P, 1, one());
        m.write(P, 4, one());
        m.write(P, 9, one());
        m.write(P, 6, one()); // pattern requires 6 == 0
        assert_eq!(m.read(P, 5).value(), 1);
        // Complete the pattern.
        m.write(P, 6, zero());
        assert_eq!(m.read(P, 5).value(), 0, "masked while pattern present");
        // Break it again; the stored value was never corrupted.
        m.write(P, 1, zero());
        assert_eq!(m.read(P, 5).value(), 1);
    }

    #[test]
    fn active_npsf_flips_base_on_trigger_transition() {
        let mut m = bit_mem(16);
        let nb = |w: u64| CellId::bit_oriented(w);
        m.inject(FaultKind::NpsfActive {
            base: nb(5),
            trigger: nb(6),
            rising: true,
            others: [(nb(1), false), (nb(4), false), (nb(9), false)],
        })
        .unwrap();
        m.write(P, 5, one());
        // others are all 0 (power-on); rising trigger fires the fault
        m.write(P, 6, one());
        assert_eq!(m.read(P, 5).value(), 0, "base flipped");
        // wrong deleted-neighborhood pattern: no effect
        m.write(P, 5, one());
        m.write(P, 1, one());
        m.write(P, 6, zero());
        m.write(P, 6, one());
        assert_eq!(m.read(P, 5).value(), 1);
    }

    #[test]
    fn word_oriented_faults_hit_single_bits() {
        let mut m = MemoryArray::new(MemGeometry::word_oriented(4, 8));
        m.inject(FaultKind::StuckAt { cell: CellId::new(1, 3), value: true }).unwrap();
        m.write(P, 1, Bits::zero(8));
        assert_eq!(m.read(P, 1).value(), 0b0000_1000);
    }

    #[test]
    fn invalid_fault_is_rejected() {
        let mut m = bit_mem(4);
        let err = m
            .inject(FaultKind::StuckAt { cell: CellId::bit_oriented(9), value: true })
            .unwrap_err();
        assert!(err.to_string().contains("SAF1"));
    }

    #[test]
    #[should_panic(expected = "address")]
    fn out_of_range_access_panics() {
        let mut m = bit_mem(4);
        m.write(P, 4, one());
    }

    #[test]
    #[should_panic(expected = "port")]
    fn out_of_range_port_panics() {
        let mut m = bit_mem(4);
        let _ = m.read(PortId(1), 0);
    }

    #[test]
    fn randomize_is_deterministic_and_masked() {
        let mut a = MemoryArray::new(MemGeometry::word_oriented(32, 5));
        let mut b = MemoryArray::new(MemGeometry::word_oriented(32, 5));
        a.randomize(42);
        b.randomize(42);
        for addr in 0..32 {
            assert_eq!(a.peek(addr), b.peek(addr));
            assert!(a.peek(addr).value() < 32);
        }
        let mut c = MemoryArray::new(MemGeometry::word_oriented(32, 5));
        c.randomize(43);
        assert!((0..32).any(|addr| a.peek(addr) != c.peek(addr)));
    }

    #[test]
    fn time_and_access_accounting() {
        let mut m = bit_mem(4);
        m.set_cycle_ns(5.0);
        m.write(P, 0, one());
        let _ = m.read(P, 0);
        m.pause(100.0);
        assert_eq!(m.accesses(), 2);
        assert_eq!(m.now_ns(), 110.0);
    }

    #[test]
    fn clear_faults_restores_ideal_behavior() {
        let mut m = bit_mem(4);
        m.inject(FaultKind::StuckAt { cell: CellId::bit_oriented(0), value: true })
            .unwrap();
        m.clear_faults();
        m.write(P, 0, zero());
        assert_eq!(m.read(P, 0).value(), 0);
        assert!(m.fault_kinds().is_empty());
    }

    #[test]
    fn reset_is_equivalent_to_a_fresh_array() {
        let mut m = bit_mem(8);
        m.inject(FaultKind::StuckOpen { cell: CellId::bit_oriented(3) }).unwrap();
        m.write(P, 2, one());
        let _ = m.read(P, 2); // sense latch now valid and holding 1
        m.pause(5_000.0);
        m.reset();
        assert!(m.fault_kinds().is_empty());
        assert_eq!(m.now_ns(), 0.0);
        assert_eq!(m.accesses(), 0);
        assert_eq!(m.peek(2).value(), 0);
        // A stuck-open cell after reset must read 0 (invalid latch), not the
        // stale pre-reset sense value.
        m.inject(FaultKind::StuckOpen { cell: CellId::bit_oriented(3) }).unwrap();
        assert_eq!(m.read(P, 3).value(), 0, "sense latch must be invalidated");
        // And a retention fault must measure time from 0 again.
        m.reset();
        m.inject(FaultKind::Retention {
            cell: CellId::bit_oriented(1),
            decays_to: true,
            retention_ns: 1_000.0,
        })
        .unwrap();
        assert_eq!(m.read(P, 1).value(), 0, "no decay right after reset");
    }

    #[test]
    fn multiport_sense_latches_are_independent() {
        let mut m = MemoryArray::new(MemGeometry::new(8, 1, 2));
        m.inject(FaultKind::StuckOpen { cell: CellId::bit_oriented(3) }).unwrap();
        let p0 = PortId(0);
        let p1 = PortId(1);
        m.write(p0, 1, one());
        let _ = m.read(p0, 1); // port 0 sense = 1
        m.write(p1, 2, zero());
        let _ = m.read(p1, 2); // port 1 sense = 0
        assert_eq!(m.read(p0, 3).value(), 1);
        assert_eq!(m.read(p1, 3).value(), 0);
    }

    #[test]
    fn many_faults_on_one_word_keep_injection_order_semantics() {
        // Two stuck-at faults on the same cell: the last injected wins on
        // both the write path and the read path (index preserves order).
        let mut m = bit_mem(4);
        m.inject(FaultKind::StuckAt { cell: CellId::bit_oriented(1), value: true })
            .unwrap();
        m.inject(FaultKind::StuckAt { cell: CellId::bit_oriented(1), value: false })
            .unwrap();
        m.write(P, 1, one());
        assert_eq!(m.read(P, 1).value(), 0, "last stuck-at clamp wins");
    }

    #[test]
    fn wide_word_write_hits_only_faulted_bit() {
        // 64-bit words: full-width masks must not overflow.
        let mut m = MemoryArray::new(MemGeometry::word_oriented(4, 64));
        m.inject(FaultKind::StuckAt { cell: CellId::new(2, 63), value: true }).unwrap();
        m.write(P, 2, Bits::zero(64));
        assert_eq!(m.read(P, 2).value(), 1u64 << 63);
        m.write(P, 2, Bits::new(64, u64::MAX));
        assert_eq!(m.read(P, 2).value(), u64::MAX);
    }
}
