//! Error types for the memory crate.

use std::error::Error;
use std::fmt;

/// Errors produced by memory-array operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// The fault does not fit the array geometry (cell or address out of
    /// range, or aggressor equals victim).
    InvalidFault {
        /// Description of the offending fault.
        fault: String,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::InvalidFault { fault } => {
                write!(f, "fault {fault} does not fit the memory geometry")
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<MemError>();
    }

    #[test]
    fn display_names_the_fault() {
        let e = MemError::InvalidFault { fault: "SAF1 c[9.0]".into() };
        assert!(e.to_string().contains("SAF1 c[9.0]"));
    }
}
