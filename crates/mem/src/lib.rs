//! # mbist-mem — fault-injectable embedded memory simulator
//!
//! The memory-under-test substrate for the MBIST workspace: a
//! [`MemoryArray`] models a bit- or word-oriented, single- or multi-port
//! embedded SRAM whose read/write paths apply injected functional faults
//! ([`FaultKind`]) exactly as the underlying defect mechanisms would —
//! stuck-at, transition, coupling (inversion / idempotent / state),
//! address-decoder, stuck-open, data-retention and disconnected
//! pull-up/down faults.
//!
//! [`class_universe`] generates the standard fault lists used for serial
//! fault simulation, and [`Scrambler`] implementations capture
//! logical↔physical address topology.
//!
//! # Examples
//!
//! Detect a transition fault the way a march element would:
//!
//! ```
//! use mbist_mem::{CellId, FaultKind, MemGeometry, MemoryArray, PortId};
//! use mbist_rtl::Bits;
//!
//! let g = MemGeometry::bit_oriented(8);
//! let mut mem = MemoryArray::with_fault(
//!     g,
//!     FaultKind::Transition { cell: CellId::bit_oriented(3), rising: true },
//! )?;
//! let p = PortId(0);
//! // ⇑(w0); ⇑(r0,w1); ⇑(r1): the r1 catches the blocked 0→1 transition.
//! for a in 0..8 { mem.write(p, a, Bits::bit1(false)); }
//! for a in 0..8 {
//!     assert_eq!(mem.read(p, a).value(), 0);
//!     mem.write(p, a, Bits::bit1(true));
//! }
//! let failures: Vec<u64> = (0..8).filter(|&a| mem.read(p, a).value() != 1).collect();
//! assert_eq!(failures, vec![3]);
//! # Ok::<(), mbist_mem::MemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod error;
mod faults;
mod geometry;
mod index;
mod op;
pub mod rng;
mod scramble;
mod universe;

pub use array::{MemoryArray, DEFAULT_CYCLE_NS};
pub use error::MemError;
pub use faults::{FaultClass, FaultId, FaultKind, SupportSet, MAX_SUPPORT_CELLS};
pub use geometry::{CellId, MemGeometry, PortId};
pub use op::{BusCycle, Miscompare, Operation, TestStep};
pub use scramble::{BitReverseScrambler, IdentityScrambler, Scrambler, XorScrambler};
pub use universe::{
    class_universe, class_universe_len, class_universe_sampled, coupling_pairs,
    neighborhood, subset_universe, topology_cols, UniverseSpec,
};
