//! Address scrambling between logical and physical address spaces.
//!
//! Real memory arrays lay out addresses topologically: the physically
//! adjacent neighbor of logical address `a` is usually *not* `a ± 1`.
//! March tests reason about logical addresses; coupling faults live between
//! physically adjacent cells. A [`Scrambler`] captures the mapping so fault
//! universes can be generated between *physical* neighbors and then
//! expressed back in logical addresses.

use crate::geometry::MemGeometry;

/// A bijective logical↔physical word-address mapping.
pub trait Scrambler {
    /// Maps a logical address to its physical row/column address.
    fn to_physical(&self, logical: u64) -> u64;

    /// Maps a physical address back to the logical address.
    fn to_logical(&self, physical: u64) -> u64;
}

/// The identity mapping (no scrambling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IdentityScrambler;

impl Scrambler for IdentityScrambler {
    fn to_physical(&self, logical: u64) -> u64 {
        logical
    }

    fn to_logical(&self, physical: u64) -> u64 {
        physical
    }
}

/// XOR-mask scrambling: `physical = logical ^ mask`, its own inverse —
/// the most common decoder topology perturbation.
///
/// # Examples
///
/// ```
/// use mbist_mem::{MemGeometry, Scrambler, XorScrambler};
///
/// let s = XorScrambler::new(MemGeometry::bit_oriented(16), 0b0101).unwrap();
/// let p = s.to_physical(3);
/// assert_eq!(s.to_logical(p), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorScrambler {
    mask: u64,
}

impl XorScrambler {
    /// Creates a scrambler for the geometry.
    ///
    /// Returns `None` if the mask would map any address out of range (the
    /// word count must be a power of two covering the mask).
    #[must_use]
    pub fn new(geometry: MemGeometry, mask: u64) -> Option<Self> {
        let words = geometry.words();
        if !words.is_power_of_two() || mask >= words {
            return None;
        }
        Some(Self { mask })
    }

    /// The XOR mask.
    #[must_use]
    pub fn mask(&self) -> u64 {
        self.mask
    }
}

impl Scrambler for XorScrambler {
    fn to_physical(&self, logical: u64) -> u64 {
        logical ^ self.mask
    }

    fn to_logical(&self, physical: u64) -> u64 {
        physical ^ self.mask
    }
}

/// Bit-reversal scrambling over the address field — models folded decoder
/// layouts where high-order address bits select nearby columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitReverseScrambler {
    bits: u8,
}

impl BitReverseScrambler {
    /// Creates a scrambler for the geometry.
    ///
    /// Returns `None` unless the word count is a power of two.
    #[must_use]
    pub fn new(geometry: MemGeometry) -> Option<Self> {
        if !geometry.words().is_power_of_two() {
            return None;
        }
        Some(Self { bits: geometry.addr_bits() })
    }

    fn rev(&self, a: u64) -> u64 {
        let mut out = 0u64;
        for i in 0..self.bits {
            if a & (1 << i) != 0 {
                out |= 1 << (self.bits - 1 - i);
            }
        }
        out
    }
}

impl Scrambler for BitReverseScrambler {
    fn to_physical(&self, logical: u64) -> u64 {
        self.rev(logical)
    }

    fn to_logical(&self, physical: u64) -> u64 {
        self.rev(physical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let s = IdentityScrambler;
        for a in 0..32 {
            assert_eq!(s.to_physical(a), a);
            assert_eq!(s.to_logical(a), a);
        }
    }

    #[test]
    fn xor_is_bijective_and_involutive() {
        let g = MemGeometry::bit_oriented(32);
        let s = XorScrambler::new(g, 0b10110).unwrap();
        let mut seen = std::collections::HashSet::new();
        for a in 0..32 {
            let p = s.to_physical(a);
            assert!(p < 32);
            assert!(seen.insert(p), "mapping must be injective");
            assert_eq!(s.to_logical(p), a);
        }
    }

    #[test]
    fn xor_rejects_bad_masks() {
        assert!(XorScrambler::new(MemGeometry::bit_oriented(32), 32).is_none());
        assert!(XorScrambler::new(MemGeometry::bit_oriented(10), 1).is_none());
    }

    #[test]
    fn bit_reverse_roundtrips() {
        let g = MemGeometry::bit_oriented(64);
        let s = BitReverseScrambler::new(g).unwrap();
        for a in 0..64 {
            assert_eq!(s.to_logical(s.to_physical(a)), a);
        }
        assert_eq!(s.to_physical(1), 32);
    }

    #[test]
    fn bit_reverse_rejects_non_power_of_two() {
        assert!(BitReverseScrambler::new(MemGeometry::bit_oriented(24)).is_none());
    }
}
