//! Classical functional fault models for random-access memories.
//!
//! The taxonomy follows van de Goor, *Testing Semiconductor Memories* (the
//! paper's reference \[10\]): stuck-at, transition, coupling (inversion,
//! idempotent, state), address-decoder, stuck-open, data-retention — plus
//! the "disconnected pull-up/pull-down" mechanism that motivates the
//! triple-read March C++ variant in the paper.

use std::fmt;

use crate::geometry::{CellId, MemGeometry};

/// Handle to an injected fault inside a
/// [`MemoryArray`](crate::MemoryArray).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultId(pub(crate) usize);

/// A functional memory fault.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FaultKind {
    /// SAF: the cell permanently holds `value`.
    StuckAt {
        /// Affected cell.
        cell: CellId,
        /// The stuck logic value.
        value: bool,
    },
    /// TF: the cell cannot make one of its transitions. With
    /// `rising = true` the 0→1 transition fails (the cell stays 0);
    /// otherwise the 1→0 transition fails.
    Transition {
        /// Affected cell.
        cell: CellId,
        /// Which transition is broken.
        rising: bool,
    },
    /// CFin ⟨x; ↕⟩: a `rising` (or falling) transition written into the
    /// aggressor inverts the victim.
    CouplingInversion {
        /// Cell whose transition triggers the fault.
        aggressor: CellId,
        /// Cell that gets inverted.
        victim: CellId,
        /// Triggering transition direction on the aggressor.
        rising: bool,
    },
    /// CFid ⟨x; y⟩: a `rising` (or falling) transition written into the
    /// aggressor forces the victim to `forced`.
    CouplingIdempotent {
        /// Cell whose transition triggers the fault.
        aggressor: CellId,
        /// Cell that gets forced.
        victim: CellId,
        /// Triggering transition direction on the aggressor.
        rising: bool,
        /// Value forced onto the victim.
        forced: bool,
    },
    /// CFst ⟨x; y⟩: while the aggressor holds state `when`, the victim
    /// reads as `forced`.
    CouplingState {
        /// Cell whose state masks the victim.
        aggressor: CellId,
        /// Cell whose reads are masked.
        victim: CellId,
        /// Aggressor state that activates the fault.
        when: bool,
        /// Value observed on the victim while active.
        forced: bool,
    },
    /// AF (decoder mapping): accesses to word `from` actually reach word
    /// `to`. Covers both "cell never accessed" (word `from`'s cells) and
    /// "cell accessed by multiple addresses" (word `to`'s cells).
    AddressMap {
        /// The remapped address.
        from: u64,
        /// The word actually accessed.
        to: u64,
    },
    /// AF (multi-access): an access to `addr` reaches its own word *and*
    /// word `extra`. Reads combine the words wired-AND (`wired_and`) or
    /// wired-OR.
    AddressMulti {
        /// The multi-accessing address.
        addr: u64,
        /// The additional word accessed.
        extra: u64,
        /// Read-combination polarity.
        wired_and: bool,
    },
    /// SOF: the cell is disconnected; writes are lost and reads return
    /// whatever the port's sense amplifier last held.
    StuckOpen {
        /// Affected cell.
        cell: CellId,
    },
    /// DRF: after `retention_ns` without a refresh/write the cell leaks to
    /// `decays_to`. Only pause elements (March C+/A+) can detect it.
    Retention {
        /// Affected cell.
        cell: CellId,
        /// Value the cell decays to.
        decays_to: bool,
        /// Retention time in nanoseconds.
        retention_ns: f64,
    },
    /// Disconnected pull-up/pull-down device: the first `good_reads`
    /// consecutive reads after a write return the stored value, further
    /// reads drain the dynamically-held node and return (and latch)
    /// `decays_to`. Only multi-read elements (March C++/A++) detect it.
    PullOpen {
        /// Affected cell.
        cell: CellId,
        /// Number of reads that still see the written value.
        good_reads: u8,
        /// Value observed (and stored) once drained.
        decays_to: bool,
    },
    /// SNPSF (static neighborhood pattern-sensitive fault): while every
    /// neighborhood cell holds its listed value, the base cell reads as
    /// `forced`.
    NpsfStatic {
        /// The victim (base) cell.
        base: CellId,
        /// The neighborhood cells and the values that activate the fault.
        neighborhood: [(CellId, bool); 4],
        /// Value observed on the base while active.
        forced: bool,
    },
    /// ANPSF (active neighborhood pattern-sensitive fault): when the
    /// trigger cell makes the given transition while the remaining
    /// neighborhood cells hold their listed values, the base cell flips.
    NpsfActive {
        /// The victim (base) cell.
        base: CellId,
        /// The cell whose transition fires the fault.
        trigger: CellId,
        /// Triggering transition direction.
        rising: bool,
        /// The rest of the deleted neighborhood and its required values.
        others: [(CellId, bool); 3],
    },
}

/// Upper bound on the number of cells in any address-local [`SupportSet`]:
/// the NPSF deleted neighborhood (base + 4 neighbors) is the largest
/// classical fault model.
pub const MAX_SUPPORT_CELLS: usize = 5;

/// The address-local support set of a fault: every cell whose stored value
/// can deviate from the fault-free trace, plus every cell whose state the
/// fault's activation condition samples.
///
/// A single fault whose support set is known can be simulated by replaying
/// only the operations that touch these cells (sliced differential fault
/// simulation) — every other address behaves exactly as the fault-free
/// golden trace. Faults whose behavior is *not* address-local
/// (address-decoder faults, which remap or fan out accesses globally)
/// have no support set and require a full replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupportSet {
    cells: [CellId; MAX_SUPPORT_CELLS],
    len: u8,
    sense_coupled: bool,
}

impl SupportSet {
    fn new(cells: &[CellId], sense_coupled: bool) -> Self {
        debug_assert!(cells.len() <= MAX_SUPPORT_CELLS);
        let mut buf = [CellId::default(); MAX_SUPPORT_CELLS];
        buf[..cells.len()].copy_from_slice(cells);
        Self {
            cells: buf,
            len: u8::try_from(cells.len()).expect("support fits u8"),
            sense_coupled,
        }
    }

    /// The support cells, in declaration order (words may repeat, e.g. an
    /// intra-word coupling pair).
    #[must_use]
    pub fn cells(&self) -> &[CellId] {
        &self.cells[..usize::from(self.len)]
    }

    /// Whether the observed value additionally depends on the port's
    /// sense-amplifier latch (stuck-open faults): a sliced replay must also
    /// supply the value of the previous read on the same port.
    #[must_use]
    pub fn is_sense_coupled(&self) -> bool {
        self.sense_coupled
    }
}

impl FaultKind {
    /// The broad class this fault belongs to.
    #[must_use]
    pub fn class(&self) -> FaultClass {
        match self {
            FaultKind::StuckAt { .. } => FaultClass::StuckAt,
            FaultKind::Transition { .. } => FaultClass::Transition,
            FaultKind::CouplingInversion { .. } => FaultClass::CouplingInversion,
            FaultKind::CouplingIdempotent { .. } => FaultClass::CouplingIdempotent,
            FaultKind::CouplingState { .. } => FaultClass::CouplingState,
            FaultKind::AddressMap { .. } | FaultKind::AddressMulti { .. } => {
                FaultClass::AddressDecoder
            }
            FaultKind::StuckOpen { .. } => FaultClass::StuckOpen,
            FaultKind::Retention { .. } => FaultClass::Retention,
            FaultKind::PullOpen { .. } => FaultClass::PullOpen,
            FaultKind::NpsfStatic { .. } => FaultClass::NpsfStatic,
            FaultKind::NpsfActive { .. } => FaultClass::NpsfActive,
        }
    }

    /// The address-local support set of the fault, or `None` when its
    /// behavior is not address-local (address-decoder faults — their
    /// deviations span the two wired words; see [`Self::decoder_words`]).
    #[must_use]
    pub fn support(&self) -> Option<SupportSet> {
        match *self {
            FaultKind::StuckAt { cell, .. }
            | FaultKind::Transition { cell, .. }
            | FaultKind::Retention { cell, .. }
            | FaultKind::PullOpen { cell, .. } => Some(SupportSet::new(&[cell], false)),
            // A stuck-open cell reads back the sense-amplifier latch, whose
            // value comes from the previous read on the same port — at any
            // address, so the replay needs that value supplied externally.
            FaultKind::StuckOpen { cell } => Some(SupportSet::new(&[cell], true)),
            FaultKind::CouplingInversion { aggressor, victim, .. }
            | FaultKind::CouplingIdempotent { aggressor, victim, .. }
            | FaultKind::CouplingState { aggressor, victim, .. } => {
                Some(SupportSet::new(&[aggressor, victim], false))
            }
            FaultKind::AddressMap { .. } | FaultKind::AddressMulti { .. } => None,
            FaultKind::NpsfStatic { base, neighborhood, .. } => {
                let mut cells = [base; MAX_SUPPORT_CELLS];
                for (slot, (cell, _)) in cells[1..].iter_mut().zip(neighborhood.iter()) {
                    *slot = *cell;
                }
                Some(SupportSet::new(&cells, false))
            }
            FaultKind::NpsfActive { base, trigger, others, .. } => {
                let mut cells = [base; MAX_SUPPORT_CELLS];
                cells[1] = trigger;
                for (slot, (cell, _)) in cells[2..].iter_mut().zip(others.iter()) {
                    *slot = *cell;
                }
                Some(SupportSet::new(&cells, false))
            }
        }
    }

    /// The two word addresses an address-decoder fault wires together
    /// (`from`/`to` for [`FaultKind::AddressMap`], `addr`/`extra` for
    /// [`FaultKind::AddressMulti`]), or `None` for address-local faults.
    /// A decoder fault's deviations are confined to this pair — every
    /// other access replays identically to the fault-free trace — which is
    /// what differential simulators key their two-word decoder replay on.
    #[must_use]
    pub fn decoder_words(&self) -> Option<(u64, u64)> {
        match *self {
            FaultKind::AddressMap { from, to } => Some((from, to)),
            FaultKind::AddressMulti { addr, extra, .. } => Some((addr, extra)),
            _ => None,
        }
    }

    /// Parses a user-facing fault spec `KIND@ADDR[.BIT]` (the syntax the
    /// CLI's `--fault` flag and the service protocol's `fault` field share)
    /// and validates it against `geometry`.
    ///
    /// `KIND` is one of `sa0 sa1 tf-up tf-down sof drf puf`; `ADDR` is
    /// decimal or `0x`-prefixed hex; `BIT` defaults to 0.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the spec is malformed, names
    /// an unknown kind, or does not fit the geometry.
    pub fn parse_spec(spec: &str, geometry: &MemGeometry) -> Result<Self, String> {
        let (kind, loc) = spec
            .split_once('@')
            .ok_or_else(|| format!("fault `{spec}` must look like sa0@ADDR[.BIT]"))?;
        let (addr_s, bit_s) = match loc.split_once('.') {
            Some((a, b)) => (a, b),
            None => (loc, "0"),
        };
        let addr = if let Some(hex) = addr_s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).map_err(|_| format!("invalid address `{addr_s}`"))
        } else {
            addr_s.parse().map_err(|_| format!("invalid address `{addr_s}`"))
        }?;
        let cell =
            CellId::new(addr, bit_s.parse().map_err(|_| format!("invalid bit `{bit_s}`"))?);
        let fault = match kind {
            "sa0" => FaultKind::StuckAt { cell, value: false },
            "sa1" => FaultKind::StuckAt { cell, value: true },
            "tf-up" => FaultKind::Transition { cell, rising: true },
            "tf-down" => FaultKind::Transition { cell, rising: false },
            "sof" => FaultKind::StuckOpen { cell },
            "drf" => FaultKind::Retention { cell, decays_to: true, retention_ns: 50_000.0 },
            "puf" => FaultKind::PullOpen { cell, good_reads: 2, decays_to: false },
            other => return Err(format!("unknown fault kind `{other}`")),
        };
        if !fault.is_valid_for(geometry) {
            return Err(format!("fault `{spec}` does not fit the geometry"));
        }
        Ok(fault)
    }

    /// Whether the fault is well-formed for the given geometry (cells in
    /// range, aggressor ≠ victim, mapped addresses distinct and in range).
    #[must_use]
    pub fn is_valid_for(&self, g: &MemGeometry) -> bool {
        match *self {
            FaultKind::StuckAt { cell, .. }
            | FaultKind::Transition { cell, .. }
            | FaultKind::StuckOpen { cell }
            | FaultKind::Retention { cell, .. }
            | FaultKind::PullOpen { cell, .. } => g.contains_cell(cell),
            FaultKind::CouplingInversion { aggressor, victim, .. }
            | FaultKind::CouplingIdempotent { aggressor, victim, .. }
            | FaultKind::CouplingState { aggressor, victim, .. } => {
                g.contains_cell(aggressor) && g.contains_cell(victim) && aggressor != victim
            }
            FaultKind::AddressMap { from, to } => {
                g.contains_addr(from) && g.contains_addr(to) && from != to
            }
            FaultKind::AddressMulti { addr, extra, .. } => {
                g.contains_addr(addr) && g.contains_addr(extra) && addr != extra
            }
            FaultKind::NpsfStatic { base, neighborhood, .. } => {
                let mut cells = vec![base];
                cells.extend(neighborhood.iter().map(|(c, _)| *c));
                all_distinct_and_valid(g, &cells)
            }
            FaultKind::NpsfActive { base, trigger, others, .. } => {
                let mut cells = vec![base, trigger];
                cells.extend(others.iter().map(|(c, _)| *c));
                all_distinct_and_valid(g, &cells)
            }
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::StuckAt { cell, value } => {
                write!(f, "SAF{} {cell}", u8::from(value))
            }
            FaultKind::Transition { cell, rising } => {
                write!(f, "TF{} {cell}", if rising { "↑" } else { "↓" })
            }
            FaultKind::CouplingInversion { aggressor, victim, rising } => write!(
                f,
                "CFin<{};↕> {aggressor}->{victim}",
                if rising { "↑" } else { "↓" }
            ),
            FaultKind::CouplingIdempotent { aggressor, victim, rising, forced } => write!(
                f,
                "CFid<{};{}> {aggressor}->{victim}",
                if rising { "↑" } else { "↓" },
                u8::from(forced)
            ),
            FaultKind::CouplingState { aggressor, victim, when, forced } => write!(
                f,
                "CFst<{};{}> {aggressor}->{victim}",
                u8::from(when),
                u8::from(forced)
            ),
            FaultKind::AddressMap { from, to } => write!(f, "AFmap {from:#x}->{to:#x}"),
            FaultKind::AddressMulti { addr, extra, wired_and } => write!(
                f,
                "AFmulti {addr:#x}+{extra:#x} ({})",
                if wired_and { "and" } else { "or" }
            ),
            FaultKind::StuckOpen { cell } => write!(f, "SOF {cell}"),
            FaultKind::Retention { cell, decays_to, retention_ns } => {
                write!(f, "DRF->{} {cell} ({retention_ns}ns)", u8::from(decays_to))
            }
            FaultKind::PullOpen { cell, good_reads, decays_to } => {
                write!(f, "PUF->{} {cell} (after {good_reads} reads)", u8::from(decays_to))
            }
            FaultKind::NpsfStatic { base, neighborhood, forced } => {
                let pat: String =
                    neighborhood.iter().map(|(_, v)| if *v { '1' } else { '0' }).collect();
                write!(f, "SNPSF<{pat};{}> {base}", u8::from(forced))
            }
            FaultKind::NpsfActive { base, trigger, rising, others } => {
                let pat: String =
                    others.iter().map(|(_, v)| if *v { '1' } else { '0' }).collect();
                write!(
                    f,
                    "ANPSF<{}{pat}> {trigger}->{base}",
                    if rising { "↑" } else { "↓" }
                )
            }
        }
    }
}

fn all_distinct_and_valid(g: &MemGeometry, cells: &[CellId]) -> bool {
    cells.iter().all(|c| g.contains_cell(*c))
        && cells.iter().enumerate().all(|(i, c)| cells[..i].iter().all(|p| p != c))
}

/// Broad fault classes, used as coverage-report rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultClass {
    /// Stuck-at faults.
    StuckAt,
    /// Transition faults.
    Transition,
    /// Inversion coupling faults.
    CouplingInversion,
    /// Idempotent coupling faults.
    CouplingIdempotent,
    /// State coupling faults.
    CouplingState,
    /// Address-decoder faults.
    AddressDecoder,
    /// Stuck-open faults.
    StuckOpen,
    /// Data-retention faults.
    Retention,
    /// Disconnected pull-up/down (slow-decay) faults.
    PullOpen,
    /// Static neighborhood pattern-sensitive faults.
    NpsfStatic,
    /// Active neighborhood pattern-sensitive faults.
    NpsfActive,
}

impl FaultClass {
    /// All classes in report order.
    pub const ALL: [FaultClass; 11] = [
        FaultClass::StuckAt,
        FaultClass::Transition,
        FaultClass::CouplingInversion,
        FaultClass::CouplingIdempotent,
        FaultClass::CouplingState,
        FaultClass::AddressDecoder,
        FaultClass::StuckOpen,
        FaultClass::Retention,
        FaultClass::PullOpen,
        FaultClass::NpsfStatic,
        FaultClass::NpsfActive,
    ];

    /// Short report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::StuckAt => "SAF",
            FaultClass::Transition => "TF",
            FaultClass::CouplingInversion => "CFin",
            FaultClass::CouplingIdempotent => "CFid",
            FaultClass::CouplingState => "CFst",
            FaultClass::AddressDecoder => "AF",
            FaultClass::StuckOpen => "SOF",
            FaultClass::Retention => "DRF",
            FaultClass::PullOpen => "PUF",
            FaultClass::NpsfStatic => "SNPSF",
            FaultClass::NpsfActive => "ANPSF",
        }
    }

    /// The lowercase CLI/service tag — the exact inverse of
    /// [`FaultClass::parse_name`], used when echoing a class list back.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            FaultClass::StuckAt => "saf",
            FaultClass::Transition => "tf",
            FaultClass::AddressDecoder => "af",
            FaultClass::CouplingInversion => "cfin",
            FaultClass::CouplingIdempotent => "cfid",
            FaultClass::CouplingState => "cfst",
            FaultClass::StuckOpen => "sof",
            FaultClass::Retention => "drf",
            FaultClass::PullOpen => "puf",
            FaultClass::NpsfStatic => "snpsf",
            FaultClass::NpsfActive => "anpsf",
        }
    }

    /// Parses one lowercase class name as used by the CLI and service
    /// (`saf`, `tf`, `af`, `cfin`, `cfid`, `cfst`, `sof`, `drf`, `puf`,
    /// `snpsf`, `anpsf`) — the single shared spelling table, so the two
    /// front ends cannot drift.
    #[must_use]
    pub fn parse_name(name: &str) -> Option<FaultClass> {
        Some(match name {
            "saf" => FaultClass::StuckAt,
            "tf" => FaultClass::Transition,
            "af" => FaultClass::AddressDecoder,
            "cfin" => FaultClass::CouplingInversion,
            "cfid" => FaultClass::CouplingIdempotent,
            "cfst" => FaultClass::CouplingState,
            "sof" => FaultClass::StuckOpen,
            "drf" => FaultClass::Retention,
            "puf" => FaultClass::PullOpen,
            "snpsf" => FaultClass::NpsfStatic,
            "anpsf" => FaultClass::NpsfActive,
            _ => return None,
        })
    }

    /// Parses a comma-separated class list (`"saf,tf,cfid"`), trimming
    /// whitespace around each name. Duplicates are kept in order — callers
    /// that need a set can dedup.
    ///
    /// # Errors
    ///
    /// Returns the offending name on the first unknown entry.
    pub fn parse_list(spec: &str) -> Result<Vec<FaultClass>, String> {
        spec.split(',')
            .map(|name| {
                let name = name.trim();
                FaultClass::parse_name(name)
                    .ok_or_else(|| format!("unknown fault class `{name}`"))
            })
            .collect()
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> MemGeometry {
        MemGeometry::word_oriented(8, 2)
    }

    #[test]
    fn validity_checks_cells() {
        let ok = FaultKind::StuckAt { cell: CellId::new(7, 1), value: true };
        assert!(ok.is_valid_for(&g()));
        let bad = FaultKind::StuckAt { cell: CellId::new(8, 0), value: true };
        assert!(!bad.is_valid_for(&g()));
    }

    #[test]
    fn coupling_requires_distinct_cells() {
        let same = FaultKind::CouplingInversion {
            aggressor: CellId::new(1, 0),
            victim: CellId::new(1, 0),
            rising: true,
        };
        assert!(!same.is_valid_for(&g()));
    }

    #[test]
    fn decoder_faults_require_distinct_addresses() {
        assert!(!FaultKind::AddressMap { from: 2, to: 2 }.is_valid_for(&g()));
        assert!(FaultKind::AddressMap { from: 2, to: 5 }.is_valid_for(&g()));
        assert!(!FaultKind::AddressMulti { addr: 9, extra: 1, wired_and: true }
            .is_valid_for(&g()));
    }

    #[test]
    fn classes_are_assigned() {
        let f = FaultKind::Retention {
            cell: CellId::bit_oriented(0),
            decays_to: false,
            retention_ns: 1e6,
        };
        assert_eq!(f.class(), FaultClass::Retention);
        assert_eq!(f.class().label(), "DRF");
        let m = FaultKind::AddressMulti { addr: 0, extra: 1, wired_and: false };
        assert_eq!(m.class(), FaultClass::AddressDecoder);
    }

    #[test]
    fn display_is_informative() {
        let f = FaultKind::StuckAt { cell: CellId::new(3, 0), value: true };
        assert!(f.to_string().contains("SAF1"));
        let t = FaultKind::Transition { cell: CellId::new(3, 0), rising: true };
        assert!(t.to_string().contains("TF"));
    }

    #[test]
    fn support_sets_cover_every_named_cell() {
        let a = CellId::new(1, 0);
        let b = CellId::new(2, 1);
        let pair = FaultKind::CouplingIdempotent {
            aggressor: a,
            victim: b,
            rising: true,
            forced: false,
        };
        let s = pair.support().unwrap();
        assert_eq!(s.cells(), &[a, b]);
        assert!(!s.is_sense_coupled());

        let sof = FaultKind::StuckOpen { cell: a };
        assert!(sof.support().unwrap().is_sense_coupled());

        let npsf = FaultKind::NpsfActive {
            base: a,
            trigger: b,
            rising: false,
            others: [
                (CellId::new(3, 0), true),
                (CellId::new(4, 0), false),
                (CellId::new(5, 0), true),
            ],
        };
        let s = npsf.support().unwrap();
        assert_eq!(s.cells().len(), MAX_SUPPORT_CELLS);
        assert_eq!(s.cells()[0], a);
        assert_eq!(s.cells()[1], b);
        assert_eq!(s.cells()[4], CellId::new(5, 0));
    }

    #[test]
    fn decoder_faults_have_no_support() {
        assert!(FaultKind::AddressMap { from: 0, to: 1 }.support().is_none());
        assert!(FaultKind::AddressMulti { addr: 0, extra: 1, wired_and: true }
            .support()
            .is_none());
    }

    #[test]
    fn decoder_words_name_exactly_the_wired_pair() {
        assert_eq!(FaultKind::AddressMap { from: 3, to: 7 }.decoder_words(), Some((3, 7)));
        assert_eq!(
            FaultKind::AddressMulti { addr: 2, extra: 5, wired_and: false }.decoder_words(),
            Some((2, 5))
        );
        // Address-local faults have no decoder pair.
        assert_eq!(
            FaultKind::StuckAt { cell: CellId::new(0, 0), value: true }.decoder_words(),
            None
        );
    }

    #[test]
    fn all_classes_have_unique_labels() {
        let labels: std::collections::HashSet<&str> =
            FaultClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), FaultClass::ALL.len());
    }

    #[test]
    fn parse_spec_covers_every_kind_and_radix() {
        let g = MemGeometry::word_oriented(16, 8);
        assert_eq!(
            FaultKind::parse_spec("sa1@0x5", &g),
            Ok(FaultKind::StuckAt { cell: CellId::new(5, 0), value: true })
        );
        assert_eq!(
            FaultKind::parse_spec("tf-up@3.6", &g),
            Ok(FaultKind::Transition { cell: CellId::new(3, 6), rising: true })
        );
        assert_eq!(
            FaultKind::parse_spec("sof@15.7", &g),
            Ok(FaultKind::StuckOpen { cell: CellId::new(15, 7) })
        );
        assert!(FaultKind::parse_spec("drf@0", &g).is_ok());
        assert!(FaultKind::parse_spec("puf@0", &g).is_ok());
    }

    #[test]
    fn parse_spec_rejects_malformed_and_out_of_range() {
        let g = MemGeometry::bit_oriented(8);
        assert!(FaultKind::parse_spec("sa1", &g).unwrap_err().contains("sa0@ADDR"));
        assert!(FaultKind::parse_spec("zz@1", &g).unwrap_err().contains("unknown fault"));
        assert!(FaultKind::parse_spec("sa1@x", &g).unwrap_err().contains("address"));
        assert!(FaultKind::parse_spec("sa1@0.q", &g).unwrap_err().contains("bit"));
        assert!(FaultKind::parse_spec("sa1@99", &g).unwrap_err().contains("does not fit"));
    }
}
