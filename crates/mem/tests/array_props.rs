//! Property tests for the memory array's fault semantics.

use proptest::prelude::*;

use mbist_mem::{
    class_universe, CellId, FaultClass, FaultKind, MemGeometry, MemoryArray, PortId,
    UniverseSpec,
};
use mbist_rtl::Bits;

const P: PortId = PortId(0);

fn arb_ops() -> impl Strategy<Value = Vec<(u64, u64, bool)>> {
    prop::collection::vec((any::<u64>(), any::<u64>(), any::<bool>()), 1..120)
}

proptest! {
    #[test]
    fn stuck_at_cell_always_reads_its_value(
        ops in arb_ops(),
        cell_word in 0u64..16,
        value in any::<bool>(),
    ) {
        let g = MemGeometry::bit_oriented(16);
        let mut mem = MemoryArray::with_fault(
            g,
            FaultKind::StuckAt { cell: CellId::bit_oriented(cell_word), value },
        ).unwrap();
        for (addr, data, is_write) in ops {
            let addr = addr % 16;
            if is_write {
                mem.write(P, addr, Bits::bit1(data & 1 == 1));
            } else {
                let observed = mem.read(P, addr);
                if addr == cell_word {
                    prop_assert_eq!(observed.value() == 1, value);
                }
            }
        }
    }

    #[test]
    fn unrelated_cells_are_never_disturbed_by_single_cell_faults(
        ops in arb_ops(),
        fault_idx in 0usize..10,
    ) {
        // Any single-cell fault must behave like an ideal RAM on every
        // other address.
        let g = MemGeometry::bit_oriented(16);
        let spec = UniverseSpec::default();
        let universe = class_universe(&g, FaultClass::StuckAt, &spec);
        let fault = universe[fault_idx % universe.len()];
        let FaultKind::StuckAt { cell, .. } = fault else { unreachable!() };

        let mut mem = MemoryArray::with_fault(g, fault).unwrap();
        let mut golden = [false; 16];
        for (addr, data, is_write) in ops {
            let addr = addr % 16;
            let bit = data & 1 == 1;
            if is_write {
                mem.write(P, addr, Bits::bit1(bit));
                golden[addr as usize] = bit;
            } else {
                let observed = mem.read(P, addr).value() == 1;
                if addr != cell.word {
                    prop_assert_eq!(observed, golden[addr as usize]);
                }
            }
        }
    }

    #[test]
    fn every_universe_fault_injects_and_simulates_without_panic(
        class_idx in 0usize..FaultClass::ALL.len(),
        ops in arb_ops(),
    ) {
        let g = MemGeometry::word_oriented(16, 4);
        let spec = UniverseSpec::default();
        let class = FaultClass::ALL[class_idx];
        let universe = class_universe(&g, class, &spec);
        if universe.is_empty() {
            return Ok(());
        }
        let fault = universe[ops.len() % universe.len()];
        let mut mem = MemoryArray::with_fault(g, fault).unwrap();
        for (addr, data, is_write) in ops {
            let addr = addr % 16;
            if is_write {
                mem.write(P, addr, Bits::new(4, data));
            } else {
                let _ = mem.read(P, addr);
            }
        }
        mem.pause(1e6);
        let _ = mem.read(P, 0);
    }

    #[test]
    fn coupling_is_quiescent_without_aggressor_transitions(
        victim_writes in prop::collection::vec(any::<bool>(), 1..30),
    ) {
        // Writing only the victim (and never the aggressor) must behave
        // ideally: coupling needs an aggressor transition.
        let g = MemGeometry::bit_oriented(8);
        let mut mem = MemoryArray::with_fault(
            g,
            FaultKind::CouplingInversion {
                aggressor: CellId::bit_oriented(2),
                victim: CellId::bit_oriented(5),
                rising: true,
            },
        ).unwrap();
        for b in victim_writes {
            mem.write(P, 5, Bits::bit1(b));
            prop_assert_eq!(mem.read(P, 5).value() == 1, b);
        }
    }

    #[test]
    fn pause_never_affects_a_fault_free_memory(
        ops in arb_ops(),
        pause_ns in 0.0f64..1e9,
    ) {
        let g = MemGeometry::word_oriented(8, 8);
        let mut mem = MemoryArray::new(g);
        let mut golden = [0u64; 8];
        for (addr, data, is_write) in ops {
            let addr = addr % 8;
            if is_write {
                let d = Bits::new(8, data);
                mem.write(P, addr, d);
                golden[addr as usize] = d.value();
            }
        }
        mem.pause(pause_ns);
        for addr in 0..8 {
            prop_assert_eq!(mem.read(P, addr).value(), golden[addr as usize]);
        }
    }
}
