//! Property tests for the bit-vector and counter primitives.

use proptest::prelude::*;

use mbist_rtl::{Bits, Direction, ScanChain, UpDownCounter};

fn arb_bits() -> impl Strategy<Value = Bits> {
    (1u8..=64, any::<u64>()).prop_map(|(w, v)| Bits::new(w, v))
}

proptest! {
    #[test]
    fn value_is_always_masked(b in arb_bits()) {
        if b.width() < 64 {
            prop_assert!(b.value() < (1u64 << b.width()));
        }
    }

    #[test]
    fn double_complement_is_identity(b in arb_bits()) {
        prop_assert_eq!(!!b, b);
    }

    #[test]
    fn xor_self_is_zero_and_with_zero_is_identity(b in arb_bits()) {
        prop_assert!((b ^ b).is_zero());
        prop_assert_eq!(b ^ Bits::zero(b.width()), b);
    }

    #[test]
    fn iter_roundtrip(b in arb_bits()) {
        let bits: Vec<bool> = b.iter().collect();
        prop_assert_eq!(Bits::from_bits_lsb_first(bits), b);
    }

    #[test]
    fn inc_then_dec_is_identity(b in arb_bits()) {
        let (inc, _) = b.wrapping_inc();
        let (back, _) = inc.wrapping_dec();
        prop_assert_eq!(back, b);
    }

    #[test]
    fn with_bit_sets_exactly_one_position(b in arb_bits(), idx in 0u8..64, v in any::<bool>()) {
        let idx = idx % b.width();
        let updated = b.with_bit(idx, v);
        prop_assert_eq!(updated.bit(idx), v);
        for i in 0..b.width() {
            if i != idx {
                prop_assert_eq!(updated.bit(i), b.bit(i));
            }
        }
    }

    #[test]
    fn counter_up_sweep_visits_each_address_once(last in 0u64..200) {
        let width = (64 - last.leading_zeros()).max(1) as u8;
        let mut c = UpDownCounter::new(width, last);
        c.load_start(Direction::Up);
        let mut seen = std::collections::HashSet::new();
        loop {
            prop_assert!(seen.insert(c.value().value()));
            if c.at_terminal(Direction::Up) {
                break;
            }
            c.step(Direction::Up);
        }
        prop_assert_eq!(seen.len() as u64, last + 1);
    }

    #[test]
    fn down_sweep_is_reverse_of_up(last in 0u64..100) {
        let width = (64 - last.leading_zeros()).max(1) as u8;
        let sweep = |dir: Direction| {
            let mut c = UpDownCounter::new(width, last);
            c.load_start(dir);
            let mut out = vec![c.value().value()];
            while !c.at_terminal(dir) {
                c.step(dir);
                out.push(c.value().value());
            }
            out
        };
        let mut down = sweep(Direction::Down);
        down.reverse();
        prop_assert_eq!(sweep(Direction::Up), down);
    }

    #[test]
    fn scan_chain_contents_equal_last_n_bits_shifted(bits in prop::collection::vec(any::<bool>(), 1..80)) {
        let len = 16usize;
        let mut chain = ScanChain::new(len);
        for &b in &bits {
            chain.shift_in(b);
        }
        // cell i holds the bit shifted in i steps ago (or the zero fill)
        for i in 0..len {
            let expected = if i < bits.len() { bits[bits.len() - 1 - i] } else { false };
            prop_assert_eq!(chain.cell(i), expected, "cell {}", i);
        }
    }
}
