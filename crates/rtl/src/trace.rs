//! Signal tracing for simulated designs.
//!
//! A [`Trace`] records the value of named signals at each clock cycle.
//! Controllers in this workspace emit their architectural state (instruction
//! counter, FSM state, address, …) into a trace, which can then be rendered
//! as a text waveform or dumped as a VCD file (see [`crate::vcd`]).

use std::collections::BTreeMap;

use crate::bits::Bits;

/// Identifier of a signal within a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) usize);

/// Declaration of a traced signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalDecl {
    /// Hierarchical signal name, e.g. `"ctrl.pc"`.
    pub name: String,
    /// Width in bits.
    pub width: u8,
}

/// A recorded value-change log for a set of signals.
///
/// # Examples
///
/// ```
/// use mbist_rtl::{Bits, Trace};
///
/// let mut t = Trace::new();
/// let pc = t.declare("pc", 4);
/// t.record(0, pc, Bits::new(4, 0));
/// t.record(1, pc, Bits::new(4, 1));
/// assert_eq!(t.value_at(pc, 1).unwrap().value(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    decls: Vec<SignalDecl>,
    // per signal: (cycle, value) change list in nondecreasing cycle order
    changes: Vec<Vec<(u64, Bits)>>,
    last_cycle: u64,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a signal, returning its id.
    pub fn declare(&mut self, name: impl Into<String>, width: u8) -> SignalId {
        self.decls.push(SignalDecl { name: name.into(), width });
        self.changes.push(Vec::new());
        SignalId(self.decls.len() - 1)
    }

    /// The declared signals, in declaration order.
    #[must_use]
    pub fn signals(&self) -> &[SignalDecl] {
        &self.decls
    }

    /// Records `value` for `signal` at `cycle`. Only actual changes are
    /// stored; recording the same value twice is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if the value width differs from the declared width, or if
    /// `cycle` moves backwards for this signal.
    pub fn record(&mut self, cycle: u64, signal: SignalId, value: Bits) {
        let decl = &self.decls[signal.0];
        assert_eq!(value.width(), decl.width, "trace width mismatch for {}", decl.name);
        let log = &mut self.changes[signal.0];
        if let Some(&(last_cycle, last_val)) = log.last() {
            assert!(cycle >= last_cycle, "trace must be recorded in cycle order");
            if last_val == value {
                self.last_cycle = self.last_cycle.max(cycle);
                return;
            }
            if last_cycle == cycle {
                log.pop();
            }
        }
        log.push((cycle, value));
        self.last_cycle = self.last_cycle.max(cycle);
    }

    /// Value of `signal` at `cycle` (the most recent change at or before
    /// `cycle`), or `None` if nothing was recorded yet.
    #[must_use]
    pub fn value_at(&self, signal: SignalId, cycle: u64) -> Option<Bits> {
        let log = &self.changes[signal.0];
        match log.binary_search_by_key(&cycle, |&(c, _)| c) {
            Ok(i) => Some(log[i].1),
            Err(0) => None,
            Err(i) => Some(log[i - 1].1),
        }
    }

    /// The raw change list for a signal.
    #[must_use]
    pub fn changes(&self, signal: SignalId) -> &[(u64, Bits)] {
        &self.changes[signal.0]
    }

    /// Highest cycle seen in any record call.
    #[must_use]
    pub fn last_cycle(&self) -> u64 {
        self.last_cycle
    }

    /// Renders a compact text listing: one line per cycle in
    /// `lo..=hi`, one column per signal.
    #[must_use]
    pub fn render(&self, lo: u64, hi: u64) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(out, "{:>8}", "cycle");
        for d in &self.decls {
            let _ = write!(
                out,
                "  {:>width$}",
                d.name,
                width = d.name.len().max(d.width as usize)
            );
        }
        out.push('\n');
        for cycle in lo..=hi.min(self.last_cycle) {
            let _ = write!(out, "{cycle:>8}");
            for (i, d) in self.decls.iter().enumerate() {
                let col = d.name.len().max(d.width as usize);
                match self.value_at(SignalId(i), cycle) {
                    Some(v) => {
                        let _ = write!(out, "  {:>col$}", v.to_string());
                    }
                    None => {
                        let _ = write!(out, "  {:>col$}", "x");
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Groups every signal's changes by cycle — convenient for diffing two
    /// traces in tests.
    #[must_use]
    pub fn events(&self) -> BTreeMap<u64, Vec<(String, Bits)>> {
        let mut out: BTreeMap<u64, Vec<(String, Bits)>> = BTreeMap::new();
        for (i, log) in self.changes.iter().enumerate() {
            for &(c, v) in log {
                out.entry(c).or_default().push((self.decls[i].name.clone(), v));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_at_interpolates_between_changes() {
        let mut t = Trace::new();
        let s = t.declare("s", 2);
        t.record(0, s, Bits::new(2, 1));
        t.record(5, s, Bits::new(2, 2));
        assert_eq!(t.value_at(s, 0).unwrap().value(), 1);
        assert_eq!(t.value_at(s, 3).unwrap().value(), 1);
        assert_eq!(t.value_at(s, 5).unwrap().value(), 2);
        assert_eq!(t.value_at(s, 9).unwrap().value(), 2);
    }

    #[test]
    fn no_value_before_first_record() {
        let mut t = Trace::new();
        let s = t.declare("s", 1);
        t.record(4, s, Bits::bit1(true));
        assert!(t.value_at(s, 3).is_none());
    }

    #[test]
    fn duplicate_values_are_coalesced() {
        let mut t = Trace::new();
        let s = t.declare("s", 1);
        t.record(0, s, Bits::bit1(false));
        t.record(1, s, Bits::bit1(false));
        t.record(2, s, Bits::bit1(true));
        assert_eq!(t.changes(s).len(), 2);
    }

    #[test]
    fn same_cycle_rerecord_overwrites() {
        let mut t = Trace::new();
        let s = t.declare("s", 4);
        t.record(0, s, Bits::new(4, 1));
        t.record(0, s, Bits::new(4, 7));
        assert_eq!(t.changes(s).len(), 1);
        assert_eq!(t.value_at(s, 0).unwrap().value(), 7);
    }

    #[test]
    #[should_panic(expected = "cycle order")]
    fn backwards_cycle_panics() {
        let mut t = Trace::new();
        let s = t.declare("s", 1);
        t.record(5, s, Bits::bit1(true));
        t.record(4, s, Bits::bit1(false));
    }

    #[test]
    fn render_contains_headers_and_values() {
        let mut t = Trace::new();
        let a = t.declare("addr", 3);
        t.record(0, a, Bits::new(3, 5));
        t.record(1, a, Bits::new(3, 6));
        let text = t.render(0, 1);
        assert!(text.contains("addr"));
        assert!(text.contains("101"));
        assert!(text.contains("110"));
    }

    #[test]
    fn events_group_by_cycle() {
        let mut t = Trace::new();
        let a = t.declare("a", 1);
        let b = t.declare("b", 1);
        t.record(0, a, Bits::bit1(true));
        t.record(0, b, Bits::bit1(false));
        t.record(2, b, Bits::bit1(true));
        let ev = t.events();
        assert_eq!(ev[&0].len(), 2);
        assert_eq!(ev[&2].len(), 1);
    }
}
