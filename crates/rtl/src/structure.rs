//! Structural netlist inventories.
//!
//! Every architectural model in this workspace can *elaborate* itself into a
//! [`Structure`]: a named tree of primitive counts (flip-flops, NAND gates,
//! muxes, …). The area crate later maps a `Structure` onto a technology
//! model to obtain NAND2-equivalents and µm², reproducing the paper's
//! Tables 1-3. Keeping elaboration next to the behavioral model guarantees
//! the area numbers always describe the same hardware that is simulated.

use std::collections::BTreeMap;
use std::fmt;

/// Standard-cell-level primitives recognized by the area model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Primitive {
    /// 2-input NAND gate — the unit of "internal area" in the paper
    /// (2×2-input NAND gates).
    Nand2,
    /// 2-input XOR gate.
    Xor2,
    /// 2-input inverting multiplexer modeled as a 2:1 mux.
    Mux2,
    /// Inverter.
    Inv,
    /// Plain D flip-flop (no scan).
    Dff,
    /// Full-scan D flip-flop (mux-D scan register).
    ScanDff,
    /// Scan-only storage cell: shift-register latch reachable *only* through
    /// the scan path. The paper reports these as 4-5× smaller than full-scan
    /// registers and usable at 1/8-1/6 of the functional clock rate.
    ScanOnlyCell,
    /// One bit of embedded SRAM (used by the \[9\]-style 32×40 SRAM
    /// comparison point).
    SramBit,
}

impl Primitive {
    /// All primitive kinds, in display order.
    pub const ALL: [Primitive; 8] = [
        Primitive::Nand2,
        Primitive::Xor2,
        Primitive::Mux2,
        Primitive::Inv,
        Primitive::Dff,
        Primitive::ScanDff,
        Primitive::ScanOnlyCell,
        Primitive::SramBit,
    ];

    /// Short lowercase mnemonic used in reports.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Primitive::Nand2 => "nand2",
            Primitive::Xor2 => "xor2",
            Primitive::Mux2 => "mux2",
            Primitive::Inv => "inv",
            Primitive::Dff => "dff",
            Primitive::ScanDff => "sdff",
            Primitive::ScanOnlyCell => "socell",
            Primitive::SramBit => "srambit",
        }
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A named tree of primitive counts describing elaborated hardware.
///
/// # Examples
///
/// ```
/// use mbist_rtl::{Primitive, Structure};
///
/// let ctrl = Structure::named("controller")
///     .with_child(Structure::leaf("pc").with(Primitive::Dff, 4))
///     .with_child(Structure::leaf("decode").with(Primitive::Nand2, 12));
/// assert_eq!(ctrl.count(Primitive::Dff), 4);
/// assert_eq!(ctrl.count(Primitive::Nand2), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Structure {
    name: String,
    prims: BTreeMap<Primitive, u32>,
    children: Vec<Structure>,
}

impl Structure {
    /// Creates an empty structure with the given instance name.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        Self { name: name.into(), prims: BTreeMap::new(), children: Vec::new() }
    }

    /// Alias of [`Structure::named`] emphasizing a leaf (no children yet).
    #[must_use]
    pub fn leaf(name: impl Into<String>) -> Self {
        Self::named(name)
    }

    /// Adds `count` instances of `prim` (builder style).
    #[must_use]
    pub fn with(mut self, prim: Primitive, count: u32) -> Self {
        self.add(prim, count);
        self
    }

    /// Adds `count` instances of `prim`.
    pub fn add(&mut self, prim: Primitive, count: u32) {
        if count > 0 {
            *self.prims.entry(prim).or_insert(0) += count;
        }
    }

    /// Appends a child structure (builder style).
    #[must_use]
    pub fn with_child(mut self, child: Structure) -> Self {
        self.push_child(child);
        self
    }

    /// Appends a child structure.
    pub fn push_child(&mut self, child: Structure) {
        self.children.push(child);
    }

    /// Instance name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Direct children.
    #[must_use]
    pub fn children(&self) -> &[Structure] {
        &self.children
    }

    /// Primitives declared directly on this node (excluding children).
    #[must_use]
    pub fn local_counts(&self) -> &BTreeMap<Primitive, u32> {
        &self.prims
    }

    /// Total count of `prim` in this node and all descendants.
    #[must_use]
    pub fn count(&self, prim: Primitive) -> u32 {
        self.prims.get(&prim).copied().unwrap_or(0)
            + self.children.iter().map(|c| c.count(prim)).sum::<u32>()
    }

    /// Flattened totals over the whole tree.
    #[must_use]
    pub fn totals(&self) -> BTreeMap<Primitive, u32> {
        let mut out = BTreeMap::new();
        self.accumulate(&mut out);
        out
    }

    fn accumulate(&self, out: &mut BTreeMap<Primitive, u32>) {
        for (&p, &n) in &self.prims {
            *out.entry(p).or_insert(0) += n;
        }
        for c in &self.children {
            c.accumulate(out);
        }
    }

    /// Finds a descendant (or self) by instance name, depth-first.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&Structure> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Renders an indented text tree of the hierarchy with local counts.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_into(&mut s, 0);
        s
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use fmt::Write;
        let indent = "  ".repeat(depth);
        let _ = write!(out, "{indent}{}", self.name);
        if !self.prims.is_empty() {
            let parts: Vec<String> =
                self.prims.iter().map(|(p, n)| format!("{p}×{n}")).collect();
            let _ = write!(out, "  [{}]", parts.join(" "));
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Structure {
        Structure::named("top")
            .with(Primitive::Nand2, 3)
            .with_child(
                Structure::leaf("a").with(Primitive::Dff, 8).with(Primitive::Nand2, 4),
            )
            .with_child(
                Structure::named("b")
                    .with_child(Structure::leaf("b0").with(Primitive::Xor2, 2)),
            )
    }

    #[test]
    fn counts_recurse() {
        let s = sample();
        assert_eq!(s.count(Primitive::Nand2), 7);
        assert_eq!(s.count(Primitive::Dff), 8);
        assert_eq!(s.count(Primitive::Xor2), 2);
        assert_eq!(s.count(Primitive::SramBit), 0);
    }

    #[test]
    fn totals_match_counts() {
        let s = sample();
        let t = s.totals();
        for p in Primitive::ALL {
            assert_eq!(t.get(&p).copied().unwrap_or(0), s.count(p));
        }
    }

    #[test]
    fn zero_count_is_not_recorded() {
        let s = Structure::leaf("x").with(Primitive::Inv, 0);
        assert!(s.local_counts().is_empty());
    }

    #[test]
    fn find_locates_nested_child() {
        let s = sample();
        assert!(s.find("b0").is_some());
        assert!(s.find("top").is_some());
        assert!(s.find("nope").is_none());
    }

    #[test]
    fn render_shows_hierarchy() {
        let text = sample().render();
        assert!(text.contains("top"));
        assert!(text.contains("  a  [nand2×4 dff×8]"));
        assert!(text.contains("    b0"));
    }
}
