//! Register and scan-chain primitives.

use crate::bits::Bits;
use crate::clock::Clocked;
use crate::structure::{Primitive, Structure};

/// The physical style of a storage cell, which determines its area and the
/// paths by which it can be written.
///
/// The paper's key optimization (§3, Table 3) replaces the microcode storage
/// unit's full-scan registers with IBM ASIC *scan-only* cells that are 4-5×
/// smaller and run at 1/8-1/6 of the functional clock — acceptable because
/// the microcode store is written only through the scan path and never
/// changes during a test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellStyle {
    /// Mux-D full-scan flip-flop: functional D input plus scan path.
    #[default]
    FullScan,
    /// Scan-only shift-register latch: loadable exclusively via the scan
    /// path; no functional write port.
    ScanOnly,
    /// Plain (non-scan) flip-flop.
    Plain,
}

impl CellStyle {
    fn primitive(self) -> Primitive {
        match self {
            CellStyle::FullScan => Primitive::ScanDff,
            CellStyle::ScanOnly => Primitive::ScanOnlyCell,
            CellStyle::Plain => Primitive::Dff,
        }
    }
}

/// A bank of flip-flops holding a [`Bits`] value.
///
/// # Examples
///
/// ```
/// use mbist_rtl::{Bits, Register};
///
/// let mut r = Register::new(4);
/// r.load(Bits::new(4, 0b1001));
/// assert_eq!(r.q().value(), 0b1001);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register {
    q: Bits,
    style: CellStyle,
}

impl Register {
    /// Creates a zeroed register of `width` bits with plain flip-flops.
    #[must_use]
    pub fn new(width: u8) -> Self {
        Self { q: Bits::zero(width), style: CellStyle::Plain }
    }

    /// Creates a zeroed register with the given cell style.
    #[must_use]
    pub fn with_style(width: u8, style: CellStyle) -> Self {
        Self { q: Bits::zero(width), style }
    }

    /// Register width in bits.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.q.width()
    }

    /// Current output value.
    #[must_use]
    pub fn q(&self) -> Bits {
        self.q
    }

    /// Cell style used for area accounting.
    #[must_use]
    pub fn style(&self) -> CellStyle {
        self.style
    }

    /// Loads a new value through the functional path.
    ///
    /// # Panics
    ///
    /// Panics if the width differs from the register width, or if the
    /// register is built from [`CellStyle::ScanOnly`] cells (those have no
    /// functional write port — use a [`ScanChain`]).
    pub fn load(&mut self, value: Bits) {
        assert!(
            self.style != CellStyle::ScanOnly,
            "scan-only register has no functional load path"
        );
        assert_eq!(value.width(), self.q.width(), "register load width mismatch");
        self.q = value;
    }

    /// Structural inventory for area estimation.
    #[must_use]
    pub fn structure(&self, name: &str) -> Structure {
        Structure::leaf(name).with(self.style.primitive(), u32::from(self.q.width()))
    }
}

impl Clocked for Register {
    fn reset(&mut self) {
        self.q = Bits::zero(self.q.width());
    }
}

/// A serial scan chain threading an arbitrary number of storage cells.
///
/// Loading is cycle-accurate: one bit enters per [`ScanChain::shift_in`]
/// call, so loading a Z×Y microcode store costs exactly `Z*Y` scan clocks —
/// the figure of merit when comparing against multi-load architectures such
/// as the patent \[3\] scheme the paper criticizes.
///
/// # Examples
///
/// ```
/// use mbist_rtl::ScanChain;
///
/// let mut chain = ScanChain::new(8);
/// for b in [true, false, true, true, false, false, true, false] {
///     chain.shift_in(b);
/// }
/// assert_eq!(chain.shifts(), 8);
/// assert_eq!(chain.cell(7), true); // first bit shifted in ends up deepest
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanChain {
    cells: Vec<bool>,
    shifts: u64,
    style: CellStyle,
}

impl ScanChain {
    /// Creates a chain of `len` scan-only cells, all zero.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self::with_style(len, CellStyle::ScanOnly)
    }

    /// Creates a chain with an explicit cell style.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn with_style(len: usize, style: CellStyle) -> Self {
        assert!(len > 0, "scan chain must have at least one cell");
        Self { cells: vec![false; len], shifts: 0, style }
    }

    /// Number of cells in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the chain is empty (never true: construction requires ≥ 1).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total shift clocks applied since reset.
    #[must_use]
    pub fn shifts(&self) -> u64 {
        self.shifts
    }

    /// Cell style used for area accounting.
    #[must_use]
    pub fn style(&self) -> CellStyle {
        self.style
    }

    /// Shifts one bit in at position 0, pushing everything one cell deeper;
    /// returns the bit that falls off the far end (scan-out).
    pub fn shift_in(&mut self, bit: bool) -> bool {
        self.shifts += 1;
        let out = *self.cells.last().expect("chain is non-empty");
        for i in (1..self.cells.len()).rev() {
            self.cells[i] = self.cells[i - 1];
        }
        self.cells[0] = bit;
        out
    }

    /// Loads an entire bit pattern MSB-of-chain-first, costing
    /// `pattern.len()` scan clocks.
    ///
    /// After the load, `pattern[0]` sits in the *deepest* cell
    /// (`len - 1`) — i.e. patterns are supplied in the order they enter the
    /// scan-in pin.
    pub fn load_serial(&mut self, pattern: &[bool]) {
        for &b in pattern {
            self.shift_in(b);
        }
    }

    /// Reads cell `index` (0 is the scan-in end).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn cell(&self, index: usize) -> bool {
        self.cells[index]
    }

    /// Inverts cell `index` in place — the single-event-upset (SEU) model:
    /// a particle strike flips one storage node without consuming any scan
    /// clocks and without going through either write path.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn flip_cell(&mut self, index: usize) {
        self.cells[index] = !self.cells[index];
    }

    /// Borrow of all cells, index 0 first.
    #[must_use]
    pub fn cells(&self) -> &[bool] {
        &self.cells
    }

    /// Structural inventory for area estimation.
    #[must_use]
    pub fn structure(&self, name: &str) -> Structure {
        Structure::leaf(name).with(self.style.primitive(), self.cells.len() as u32)
    }
}

impl Clocked for ScanChain {
    fn reset(&mut self) {
        self.cells.fill(false);
        self.shifts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_load_and_reset() {
        let mut r = Register::new(6);
        r.load(Bits::new(6, 0b110101));
        assert_eq!(r.q().value(), 0b110101);
        r.reset();
        assert!(r.q().is_zero());
    }

    #[test]
    #[should_panic(expected = "no functional load path")]
    fn scan_only_register_rejects_functional_load() {
        let mut r = Register::with_style(4, CellStyle::ScanOnly);
        r.load(Bits::new(4, 1));
    }

    #[test]
    fn register_structure_uses_style_primitive() {
        let r = Register::with_style(5, CellStyle::FullScan);
        assert_eq!(r.structure("r").count(Primitive::ScanDff), 5);
        let p = Register::new(5);
        assert_eq!(p.structure("p").count(Primitive::Dff), 5);
    }

    #[test]
    fn chain_shifts_fifo_order() {
        let mut c = ScanChain::new(3);
        c.shift_in(true);
        c.shift_in(false);
        c.shift_in(true);
        assert_eq!(c.cells(), &[true, false, true]);
        // next shift pushes the first bit out the far end
        let out = c.shift_in(false);
        assert!(out);
        assert_eq!(c.cells(), &[false, true, false]);
    }

    #[test]
    fn serial_load_costs_len_clocks() {
        let mut c = ScanChain::new(5);
        c.load_serial(&[true, true, false, false, true]);
        assert_eq!(c.shifts(), 5);
        // first supplied bit is deepest
        assert!(c.cell(4));
    }

    #[test]
    fn reset_clears_cells_and_count() {
        let mut c = ScanChain::new(4);
        c.load_serial(&[true; 4]);
        c.reset();
        assert_eq!(c.cells(), &[false; 4]);
        assert_eq!(c.shifts(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_chain_panics() {
        let _ = ScanChain::new(0);
    }

    #[test]
    fn flip_cell_is_free_and_involutive() {
        let mut c = ScanChain::new(4);
        c.load_serial(&[true, false, true, false]);
        let before = c.cells().to_vec();
        let shifts = c.shifts();
        c.flip_cell(1);
        assert_eq!(c.cell(1), !before[1]);
        assert_eq!(c.shifts(), shifts, "an upset consumes no scan clocks");
        c.flip_cell(1);
        assert_eq!(c.cells(), before.as_slice());
    }
}
