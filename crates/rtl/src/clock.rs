//! Clocking model for cycle-accurate simulation.
//!
//! Everything in this workspace is modeled as a synchronous design with a
//! single clock domain. A component that holds state implements [`Clocked`];
//! a [`Clock`] counts cycles and (optionally) accumulates elapsed physical
//! time so that data-retention experiments can reason about wall-clock
//! pauses, not just cycle counts.

/// A sequential component driven by the (single) simulation clock.
///
/// Implementations must be deterministic: calling [`Clocked::reset`] and
/// replaying the same inputs must produce the same outputs.
pub trait Clocked {
    /// Returns the component to its power-on / reset state.
    fn reset(&mut self);
}

/// A free-running clock: cycle counter plus accumulated simulated time.
///
/// # Examples
///
/// ```
/// use mbist_rtl::Clock;
///
/// let mut clk = Clock::new(10.0); // 10 ns period (100 MHz)
/// clk.tick();
/// clk.tick();
/// assert_eq!(clk.cycles(), 2);
/// assert_eq!(clk.elapsed_ns(), 20.0);
/// clk.advance_ns(1_000_000.0); // a 1 ms test pause
/// assert!(clk.elapsed_ns() > 1_000_000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Clock {
    period_ns: f64,
    cycles: u64,
    extra_ns: f64,
}

impl Clock {
    /// Creates a clock with the given period in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `period_ns` is not strictly positive and finite.
    #[must_use]
    pub fn new(period_ns: f64) -> Self {
        assert!(
            period_ns.is_finite() && period_ns > 0.0,
            "clock period must be positive and finite, got {period_ns}"
        );
        Self { period_ns, cycles: 0, extra_ns: 0.0 }
    }

    /// Advances the clock by one cycle.
    pub fn tick(&mut self) {
        self.cycles += 1;
    }

    /// Advances the clock by `n` cycles.
    pub fn tick_n(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Adds non-clocked simulated time (e.g. a data-retention pause during
    /// which the clock to the BIST unit is gated).
    pub fn advance_ns(&mut self, ns: f64) {
        assert!(ns >= 0.0 && ns.is_finite(), "pause must be non-negative, got {ns}");
        self.extra_ns += ns;
    }

    /// Number of clock cycles issued so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Clock period in nanoseconds.
    #[must_use]
    pub fn period_ns(&self) -> f64 {
        self.period_ns
    }

    /// Total elapsed simulated time in nanoseconds (cycles × period plus
    /// explicit pauses).
    #[must_use]
    pub fn elapsed_ns(&self) -> f64 {
        self.cycles as f64 * self.period_ns + self.extra_ns
    }
}

impl Default for Clock {
    /// A 100 MHz clock (10 ns period), a typical embedded-SRAM BIST rate for
    /// a late-1990s 0.35 µm ASIC process.
    fn default() -> Self {
        Self::new(10.0)
    }
}

impl Clocked for Clock {
    fn reset(&mut self) {
        self.cycles = 0;
        self.extra_ns = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_accumulate() {
        let mut c = Clock::new(5.0);
        c.tick_n(7);
        c.tick();
        assert_eq!(c.cycles(), 8);
        assert_eq!(c.elapsed_ns(), 40.0);
    }

    #[test]
    fn pause_adds_time_without_cycles() {
        let mut c = Clock::default();
        c.tick();
        c.advance_ns(90.0);
        assert_eq!(c.cycles(), 1);
        assert_eq!(c.elapsed_ns(), 100.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = Clock::new(2.0);
        c.tick_n(100);
        c.advance_ns(5.0);
        c.reset();
        assert_eq!(c.cycles(), 0);
        assert_eq!(c.elapsed_ns(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_period_panics() {
        let _ = Clock::new(0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_pause_panics() {
        Clock::default().advance_ns(-1.0);
    }
}
