//! # mbist-rtl — hardware modeling substrate
//!
//! Cycle-accurate modeling primitives shared by every architectural model in
//! the MBIST workspace:
//!
//! - [`Bits`]: fixed-width bit vectors (the value type on every bus),
//! - [`Clock`] / [`Clocked`]: the single-clock simulation discipline,
//! - [`UpDownCounter`] / [`BinaryCounter`]: address and instruction counters,
//! - [`Register`] / [`ScanChain`]: storage with explicit cell styles
//!   (full-scan vs. the paper's 4-5× smaller scan-only cells),
//! - [`Structure`] / [`Primitive`]: structural inventories consumed by the
//!   area model,
//! - [`Trace`] and the [`vcd`] writer for waveform inspection.
//!
//! # Examples
//!
//! Sweep an address counter down and watch the terminal flag:
//!
//! ```
//! use mbist_rtl::{Direction, UpDownCounter};
//!
//! let mut addr = UpDownCounter::new(4, 15);
//! addr.load_start(Direction::Down);
//! let mut visits = 0;
//! loop {
//!     visits += 1;
//!     if addr.at_terminal(Direction::Down) {
//!         break;
//!     }
//!     addr.step(Direction::Down);
//! }
//! assert_eq!(visits, 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod clock;
mod counter;
mod reg;
mod structure;
mod trace;
pub mod vcd;

pub use bits::{Bits, Iter as BitsIter};
pub use clock::{Clock, Clocked};
pub use counter::{BinaryCounter, Direction, UpDownCounter};
pub use reg::{CellStyle, Register, ScanChain};
pub use structure::{Primitive, Structure};
pub use trace::{SignalDecl, SignalId, Trace};
