//! Counter primitives used by BIST address generators and instruction
//! counters.

use crate::bits::Bits;
use crate::clock::Clocked;
use crate::structure::{Primitive, Structure};

/// Counting direction of an up/down counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Count from 0 toward the terminal value.
    #[default]
    Up,
    /// Count from the terminal value toward 0.
    Down,
}

impl Direction {
    /// The opposite direction.
    #[must_use]
    pub fn reversed(self) -> Self {
        match self {
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
        }
    }
}

/// A loadable binary up/down counter with a programmable terminal count.
///
/// This models the BIST *address generator*: an n-bit counter that sweeps
/// `0..=last` in up order or `last..=0` in down order and raises a
/// `terminal` flag on the final count of the current direction. The flag is
/// what the paper calls the `Last Address` status signal.
///
/// # Examples
///
/// ```
/// use mbist_rtl::{Direction, UpDownCounter};
///
/// let mut ctr = UpDownCounter::new(4, 9); // counts 0..=9
/// ctr.load_start(Direction::Up);
/// assert_eq!(ctr.value().value(), 0);
/// for _ in 0..9 {
///     assert!(!ctr.at_terminal(Direction::Up) || ctr.value().value() == 9);
///     ctr.step(Direction::Up);
/// }
/// assert_eq!(ctr.value().value(), 9);
/// assert!(ctr.at_terminal(Direction::Up));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpDownCounter {
    width: u8,
    last: u64,
    value: Bits,
}

impl UpDownCounter {
    /// Creates a counter of `width` bits that sweeps `0..=last`.
    ///
    /// # Panics
    ///
    /// Panics if `last` does not fit in `width` bits.
    #[must_use]
    pub fn new(width: u8, last: u64) -> Self {
        let probe = Bits::new(width, last);
        assert!(
            probe.value() == last,
            "terminal count {last} does not fit in {width} bits"
        );
        Self { width, last, value: Bits::zero(width) }
    }

    /// Counter width in bits.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The inclusive terminal count (`n - 1` for an `n`-address memory).
    #[must_use]
    pub fn last(&self) -> u64 {
        self.last
    }

    /// Current count value.
    #[must_use]
    pub fn value(&self) -> Bits {
        self.value
    }

    /// Loads the starting value for a sweep in `dir`:
    /// `0` for up, `last` for down.
    pub fn load_start(&mut self, dir: Direction) {
        self.value = match dir {
            Direction::Up => Bits::zero(self.width),
            Direction::Down => Bits::new(self.width, self.last),
        };
    }

    /// Whether the counter sits on the final count of a sweep in `dir`.
    #[must_use]
    pub fn at_terminal(&self, dir: Direction) -> bool {
        match dir {
            Direction::Up => self.value.value() == self.last,
            Direction::Down => self.value.is_zero(),
        }
    }

    /// Steps one position in `dir`, saturating at the terminal count.
    ///
    /// Returns `true` if the counter was already at the terminal count (the
    /// step was suppressed) — the hardware equivalent of the carry chain
    /// freezing the counter while `Last Address` is asserted.
    pub fn step(&mut self, dir: Direction) -> bool {
        if self.at_terminal(dir) {
            return true;
        }
        self.value = match dir {
            Direction::Up => self.value.wrapping_inc().0,
            Direction::Down => self.value.wrapping_dec().0,
        };
        false
    }

    /// Structural inventory for area estimation: an n-bit loadable up/down
    /// counter plus the terminal-count comparator.
    #[must_use]
    pub fn structure(&self, name: &str) -> Structure {
        let n = u32::from(self.width);
        Structure::leaf(name)
            .with(Primitive::Dff, n)
            // half-adder + direction mux per bit
            .with(Primitive::Xor2, n)
            .with(Primitive::Mux2, n)
            .with(Primitive::Nand2, 2 * n)
            // terminal-count comparator against `last` and against zero
            .with(Primitive::Xor2, n)
            .with(Primitive::Nand2, n)
    }
}

impl Clocked for UpDownCounter {
    fn reset(&mut self) {
        self.value = Bits::zero(self.width);
    }
}

/// A simple wrapping binary counter with carry-out, modeling e.g. the
/// microcode *instruction counter* (`log2(Z)+1` bits, the extra MSB marking
/// test end by address exhaustion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryCounter {
    value: Bits,
}

impl BinaryCounter {
    /// Creates a zeroed counter of `width` bits.
    #[must_use]
    pub fn new(width: u8) -> Self {
        Self { value: Bits::zero(width) }
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> Bits {
        self.value
    }

    /// Increments, returning the carry-out.
    pub fn increment(&mut self) -> bool {
        let (v, carry) = self.value.wrapping_inc();
        self.value = v;
        carry
    }

    /// Loads an arbitrary value.
    ///
    /// # Panics
    ///
    /// Panics if `value.width()` differs from the counter width.
    pub fn load(&mut self, value: Bits) {
        assert_eq!(value.width(), self.value.width(), "counter load width mismatch");
        self.value = value;
    }

    /// Structural inventory for area estimation.
    #[must_use]
    pub fn structure(&self, name: &str) -> Structure {
        let n = u32::from(self.value.width());
        Structure::leaf(name)
            .with(Primitive::Dff, n)
            .with(Primitive::Xor2, n)
            .with(Primitive::Nand2, n)
            .with(Primitive::Mux2, n) // load path
    }
}

impl Clocked for BinaryCounter {
    fn reset(&mut self) {
        self.value = Bits::zero(self.value.width());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn up_sweep_covers_every_value_once() {
        let mut c = UpDownCounter::new(3, 5);
        c.load_start(Direction::Up);
        let mut seen = vec![c.value().value()];
        while !c.at_terminal(Direction::Up) {
            c.step(Direction::Up);
            seen.push(c.value().value());
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn down_sweep_is_reverse_of_up() {
        let mut c = UpDownCounter::new(3, 5);
        c.load_start(Direction::Down);
        let mut seen = vec![c.value().value()];
        while !c.at_terminal(Direction::Down) {
            c.step(Direction::Down);
            seen.push(c.value().value());
        }
        assert_eq!(seen, vec![5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn step_saturates_at_terminal() {
        let mut c = UpDownCounter::new(2, 3);
        c.load_start(Direction::Up);
        for _ in 0..3 {
            assert!(!c.step(Direction::Up));
        }
        assert!(c.step(Direction::Up), "step at terminal must be suppressed");
        assert_eq!(c.value().value(), 3);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_terminal_panics() {
        let _ = UpDownCounter::new(2, 4);
    }

    #[test]
    fn non_power_of_two_range() {
        // 10 addresses in a 4-bit counter: the terminal comparator, not the
        // carry chain, must end the sweep.
        let mut c = UpDownCounter::new(4, 9);
        c.load_start(Direction::Up);
        let mut n = 1;
        while !c.at_terminal(Direction::Up) {
            c.step(Direction::Up);
            n += 1;
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn binary_counter_carries() {
        let mut c = BinaryCounter::new(2);
        assert!(!c.increment());
        assert!(!c.increment());
        assert!(!c.increment());
        assert!(c.increment(), "wrap from 3 to 0 must carry");
        assert!(c.value().is_zero());
    }

    #[test]
    fn binary_counter_load_and_reset() {
        let mut c = BinaryCounter::new(4);
        c.load(Bits::new(4, 0xA));
        assert_eq!(c.value().value(), 0xA);
        c.reset();
        assert!(c.value().is_zero());
    }

    #[test]
    fn reversed_direction() {
        assert_eq!(Direction::Up.reversed(), Direction::Down);
        assert_eq!(Direction::Down.reversed(), Direction::Up);
    }
}
