//! Fixed-width bit vectors up to 64 bits.
//!
//! [`Bits`] is the value type carried on every simulated bus, register and
//! memory word in this workspace. A `Bits` knows its width, masks all
//! operations to that width, and panics (in debug builds, checked paths in
//! release) when two operands of different widths are mixed — the moral
//! equivalent of an elaboration-time width-mismatch error in an HDL.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A fixed-width bit vector with 1..=64 bits.
///
/// # Examples
///
/// ```
/// use mbist_rtl::Bits;
///
/// let a = Bits::new(8, 0b1010_0001);
/// assert_eq!(a.width(), 8);
/// assert_eq!(a.bit(0), true);
/// assert_eq!(a.bit(1), false);
/// assert_eq!((!a).value(), 0b0101_1110);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bits {
    width: u8,
    value: u64,
}

impl Bits {
    /// Maximum supported width in bits.
    pub const MAX_WIDTH: u8 = 64;

    /// Creates a bit vector of `width` bits holding `value`.
    ///
    /// Bits of `value` above `width` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`Bits::MAX_WIDTH`].
    #[must_use]
    pub fn new(width: u8, value: u64) -> Self {
        assert!(
            (1..=Self::MAX_WIDTH).contains(&width),
            "bit vector width must be in 1..=64, got {width}"
        );
        Self { width, value: value & Self::mask(width) }
    }

    /// Creates an all-zero bit vector of `width` bits.
    #[must_use]
    pub fn zero(width: u8) -> Self {
        Self::new(width, 0)
    }

    /// Creates an all-ones bit vector of `width` bits.
    #[must_use]
    pub fn ones(width: u8) -> Self {
        Self::new(width, u64::MAX)
    }

    /// Creates a single-bit vector from a boolean.
    #[must_use]
    pub fn bit1(value: bool) -> Self {
        Self::new(1, u64::from(value))
    }

    /// Returns a `width`-bit vector that repeats `bit` in every position
    /// (replication, like Verilog `{W{b}}`).
    #[must_use]
    pub fn splat(width: u8, bit: bool) -> Self {
        if bit {
            Self::ones(width)
        } else {
            Self::zero(width)
        }
    }

    /// The value mask for a given width.
    #[must_use]
    fn mask(width: u8) -> u64 {
        if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// The width in bits.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The raw value (always masked to the width).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Reads bit `index` (LSB is index 0).
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    #[must_use]
    pub fn bit(&self, index: u8) -> bool {
        assert!(index < self.width, "bit index {index} out of width {}", self.width);
        (self.value >> index) & 1 == 1
    }

    /// Returns a copy with bit `index` set to `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    #[must_use]
    pub fn with_bit(&self, index: u8, bit: bool) -> Self {
        assert!(index < self.width, "bit index {index} out of width {}", self.width);
        let mut v = self.value;
        if bit {
            v |= 1 << index;
        } else {
            v &= !(1 << index);
        }
        Self::new(self.width, v)
    }

    /// Extracts bits `lo..lo + width` as a new vector (LSB-first slice).
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds the vector width or `width` is zero.
    #[must_use]
    pub fn slice(&self, lo: u8, width: u8) -> Self {
        assert!(
            width >= 1 && lo + width <= self.width,
            "slice [{lo} +: {width}] out of width {}",
            self.width
        );
        Self::new(width, self.value >> lo)
    }

    /// Concatenates `self` (high part) with `low` (low part).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds [`Bits::MAX_WIDTH`].
    #[must_use]
    pub fn concat(&self, low: Bits) -> Self {
        let w = self.width + low.width;
        assert!(w <= Self::MAX_WIDTH, "concatenated width {w} exceeds 64");
        Self::new(w, (self.value << low.width) | low.value)
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.value.count_ones()
    }

    /// Even parity over all bits (`true` if an odd number of bits are set).
    #[must_use]
    pub fn parity(&self) -> bool {
        self.count_ones() % 2 == 1
    }

    /// Whether all bits are zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.value == 0
    }

    /// Whether all bits are one.
    #[must_use]
    pub fn is_ones(&self) -> bool {
        self.value == Self::mask(self.width)
    }

    /// Wrapping increment; returns the new value and a carry-out flag.
    #[must_use]
    pub fn wrapping_inc(&self) -> (Self, bool) {
        let carry = self.is_ones();
        (Self::new(self.width, self.value.wrapping_add(1)), carry)
    }

    /// Wrapping decrement; returns the new value and a borrow-out flag.
    #[must_use]
    pub fn wrapping_dec(&self) -> (Self, bool) {
        let borrow = self.is_zero();
        (Self::new(self.width, self.value.wrapping_sub(1)), borrow)
    }

    /// Iterates over bits LSB-first.
    pub fn iter(&self) -> Iter {
        Iter { bits: *self, next: 0 }
    }

    /// Builds a bit vector from an LSB-first iterator of bits.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields zero or more than 64 bits.
    #[must_use]
    pub fn from_bits_lsb_first<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut value = 0u64;
        let mut width = 0u8;
        for (i, b) in bits.into_iter().enumerate() {
            assert!(i < 64, "more than 64 bits supplied");
            if b {
                value |= 1 << i;
            }
            width = (i + 1) as u8;
        }
        Self::new(width, value)
    }

    fn check_width(&self, other: &Bits, op: &str) {
        assert!(
            self.width == other.width,
            "width mismatch in {op}: {} vs {}",
            self.width,
            other.width
        );
    }
}

/// LSB-first iterator over the bits of a [`Bits`].
#[derive(Debug, Clone)]
pub struct Iter {
    bits: Bits,
    next: u8,
}

impl Iterator for Iter {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.next >= self.bits.width() {
            None
        } else {
            let b = self.bits.bit(self.next);
            self.next += 1;
            Some(b)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.bits.width() - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl BitAnd for Bits {
    type Output = Bits;

    fn bitand(self, rhs: Bits) -> Bits {
        self.check_width(&rhs, "and");
        Bits::new(self.width, self.value & rhs.value)
    }
}

impl BitOr for Bits {
    type Output = Bits;

    fn bitor(self, rhs: Bits) -> Bits {
        self.check_width(&rhs, "or");
        Bits::new(self.width, self.value | rhs.value)
    }
}

impl BitXor for Bits {
    type Output = Bits;

    fn bitxor(self, rhs: Bits) -> Bits {
        self.check_width(&rhs, "xor");
        Bits::new(self.width, self.value ^ rhs.value)
    }
}

impl Not for Bits {
    type Output = Bits;

    fn not(self) -> Bits {
        Bits::new(self.width, !self.value)
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits<{}>({:#b})", self.width, self.value)
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        Ok(())
    }
}

impl fmt::Binary for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.value, f)
    }
}

impl fmt::LowerHex for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.value, f)
    }
}

impl fmt::UpperHex for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.value, f)
    }
}

impl fmt::Octal for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.value, f)
    }
}

impl From<bool> for Bits {
    fn from(b: bool) -> Self {
        Bits::bit1(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_masks_value() {
        let b = Bits::new(4, 0xFF);
        assert_eq!(b.value(), 0xF);
        assert_eq!(b.width(), 4);
    }

    #[test]
    fn full_width_is_supported() {
        let b = Bits::new(64, u64::MAX);
        assert!(b.is_ones());
        assert_eq!(b.count_ones(), 64);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_width_panics() {
        let _ = Bits::new(0, 0);
    }

    #[test]
    fn bit_access_and_update() {
        let b = Bits::zero(8).with_bit(3, true).with_bit(7, true);
        assert!(b.bit(3));
        assert!(b.bit(7));
        assert!(!b.bit(0));
        assert_eq!(b.value(), 0b1000_1000);
        assert!(!b.with_bit(3, false).bit(3));
    }

    #[test]
    #[should_panic(expected = "out of width")]
    fn bit_out_of_range_panics() {
        let _ = Bits::zero(4).bit(4);
    }

    #[test]
    fn slice_and_concat_roundtrip() {
        let b = Bits::new(10, 0b10_1100_1011);
        let hi = b.slice(5, 5);
        let lo = b.slice(0, 5);
        assert_eq!(hi.concat(lo), b);
    }

    #[test]
    fn increments_report_carry() {
        let (v, carry) = Bits::new(3, 0b111).wrapping_inc();
        assert!(carry);
        assert!(v.is_zero());
        let (v, carry) = Bits::new(3, 0b110).wrapping_inc();
        assert!(!carry);
        assert_eq!(v.value(), 0b111);
    }

    #[test]
    fn decrements_report_borrow() {
        let (v, borrow) = Bits::zero(3).wrapping_dec();
        assert!(borrow);
        assert!(v.is_ones());
    }

    #[test]
    fn logic_ops_mask_to_width() {
        let a = Bits::new(4, 0b1100);
        let b = Bits::new(4, 0b1010);
        assert_eq!((a & b).value(), 0b1000);
        assert_eq!((a | b).value(), 0b1110);
        assert_eq!((a ^ b).value(), 0b0110);
        assert_eq!((!a).value(), 0b0011);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mixed_width_xor_panics() {
        let _ = Bits::new(4, 0) ^ Bits::new(5, 0);
    }

    #[test]
    fn parity_counts_set_bits() {
        assert!(Bits::new(8, 0b0000_0001).parity());
        assert!(!Bits::new(8, 0b0000_0011).parity());
        assert!(Bits::new(8, 0b0111_0000).parity());
    }

    #[test]
    fn iter_lsb_first_roundtrip() {
        let b = Bits::new(6, 0b101101);
        let collected: Vec<bool> = b.iter().collect();
        assert_eq!(collected.len(), 6);
        assert_eq!(Bits::from_bits_lsb_first(collected), b);
    }

    #[test]
    fn display_is_msb_first_binary() {
        assert_eq!(Bits::new(6, 0b101101).to_string(), "101101");
        assert_eq!(Bits::new(4, 0b0011).to_string(), "0011");
    }

    #[test]
    fn splat_replicates() {
        assert!(Bits::splat(7, true).is_ones());
        assert!(Bits::splat(7, false).is_zero());
    }
}
