//! Sparse single-fault replay over a [`CompiledTrace`].
//!
//! The replay walks a k-way merge (k ≤ [`MAX_SUPPORT_WORDS`]) of the
//! per-word op lists of the fault's support words, maintaining only the
//! support words' values plus the fault's dynamic state (retention
//! `last_write_ns`, pull-open `consecutive_reads`, per-port sense latches).
//! Each branch mirrors the corresponding single-fault path of
//! `mbist_mem::array` exactly: two-phase writes (stuck-open suppression →
//! transition → stuck-at clamp → commit → state bookkeeping → coupling
//! from committed transitions), and the read order stuck-open → retention
//! decay → pull-open drain → state coupling → static NPSF → stuck-at
//! clamp. Decoder faults — which have no address-local support set — take
//! a dedicated two-word replay over the pair of words they wire together
//! ([`detect_decoder`]). Equivalence with the full replay is asserted by
//! the in-crate tests and the `sliced_equivalence` proptest suite.

use mbist_mem::{CellId, FaultKind, PortId, MAX_SUPPORT_CELLS};

use crate::trace::{CompiledTrace, PrevRead, TraceOp, TraceOpKind};

/// Distinct words a support set can span (one cell per word worst case).
pub(crate) const MAX_SUPPORT_WORDS: usize = MAX_SUPPORT_CELLS;

/// Reusable per-worker replay scratch: the per-port sense-latch history is
/// the only heap allocation a sliced replay needs, so hoisting it here
/// makes the steady state of a fan-out worker allocation-free.
#[derive(Debug, Default)]
pub(crate) struct SlicedScratch {
    last_read: Vec<Option<(u32, u64)>>,
}

/// Sliced differential detection of one fault, or `None` when the fault
/// has neither an address-local support set nor a decoder word pair.
/// Allocating convenience wrapper around [`detect_sliced_with`] for
/// one-shot callers.
pub(crate) fn detect_sliced(trace: &CompiledTrace, fault: FaultKind) -> Option<bool> {
    detect_sliced_with(trace, fault, &mut SlicedScratch::default())
}

/// Sliced differential detection of one fault against caller-provided
/// scratch. Decoder faults take a dedicated two-word replay; `None` is
/// reserved for future fault kinds with neither an address-local support
/// set nor a decoder word pair.
pub(crate) fn detect_sliced_with(
    trace: &CompiledTrace,
    fault: FaultKind,
    scratch: &mut SlicedScratch,
) -> Option<bool> {
    if fault.decoder_words().is_some() {
        return Some(detect_decoder(trace, fault));
    }
    let support = fault.support()?;
    let mut words = [0u64; MAX_SUPPORT_WORDS];
    let mut n = 0;
    for c in support.cells() {
        if !words[..n].contains(&c.word) {
            words[n] = c.word;
            n += 1;
        }
    }
    let words = &words[..n];

    // A fault-free miscompare outside the support replays identically under
    // the fault, so it alone decides detection.
    if trace.golden_miscompares().iter().any(|&(_, a)| !words.contains(&a)) {
        return Some(true);
    }

    let mut lists: [&[TraceOp]; MAX_SUPPORT_WORDS] = [&[]; MAX_SUPPORT_WORDS];
    for (slot, &w) in lists.iter_mut().zip(words.iter()) {
        *slot = trace.ops_for_word(w);
    }
    let mut state = Sparse::new(trace.geometry().ports(), words, fault, scratch);

    // k-way merge of the per-word op lists back into stream order.
    let mut cursor = [0usize; MAX_SUPPORT_WORDS];
    loop {
        let mut next: Option<usize> = None;
        for i in 0..n {
            if cursor[i] < lists[i].len() {
                let step = lists[i][cursor[i]].step;
                if next.is_none_or(|j| lists[j][cursor[j]].step > step) {
                    next = Some(i);
                }
            }
        }
        let Some(i) = next else { break };
        let op = lists[i][cursor[i]];
        cursor[i] += 1;
        match op.kind {
            TraceOpKind::Write(data) => state.write(i, data, op.now_ns),
            TraceOpKind::Read { expected, golden: _, prev_read } => {
                let observed = state.read(i, op.port, op.step, op.now_ns, prev_read);
                if expected.is_some_and(|e| e != observed) {
                    return Some(true);
                }
            }
        }
    }
    Some(false)
}

/// Two-word differential replay of an address-decoder fault. An
/// `AddressMap`/`AddressMulti` deviation is confined to the two words the
/// fault wires together — every other access replays identically to the
/// golden trace — so walking the merged op lists of those two words with
/// the remap / multi-access semantics of `mbist_mem::array` (remap first,
/// then multi expansion on the mapped address; reads combine wired-AND/OR)
/// decides detection exactly.
fn detect_decoder(trace: &CompiledTrace, fault: FaultKind) -> bool {
    let (a, b) = fault.decoder_words().expect("decoder fault");
    // A fault-free miscompare at any other word replays identically under
    // the fault and decides detection on its own.
    if trace.golden_miscompares().iter().any(|&(_, w)| w != a && w != b) {
        return true;
    }
    let (ops_a, ops_b) = (trace.ops_for_word(a), trace.ops_for_word(b));
    // Physical values of the two words (power-up 0). For `AddressMap`,
    // word `a` (= `from`) is never physically accessed — reads and writes
    // of either address land on `b` (= `to`) — so only `val_b` matters.
    let (mut val_a, mut val_b) = (0u64, 0u64);
    let (mut i, mut j) = (0, 0);
    while i < ops_a.len() || j < ops_b.len() {
        let at_a = j >= ops_b.len() || (i < ops_a.len() && ops_a[i].step < ops_b[j].step);
        let op = if at_a { &ops_a[i] } else { &ops_b[j] };
        if at_a {
            i += 1;
        } else {
            j += 1;
        }
        match op.kind {
            TraceOpKind::Write(data) => match fault {
                FaultKind::AddressMap { .. } => val_b = data,
                FaultKind::AddressMulti { .. } => {
                    // A write to `addr` fans out to the extra word too; a
                    // write to `extra` is direct.
                    if at_a {
                        val_a = data;
                    }
                    val_b = data;
                }
                _ => unreachable!("decoder replay handles decoder faults only"),
            },
            TraceOpKind::Read { expected, .. } => {
                let observed = match fault {
                    FaultKind::AddressMap { .. } => val_b,
                    FaultKind::AddressMulti { wired_and, .. } => {
                        if at_a {
                            // Both word lines fire: the bit lines resolve
                            // wired-AND (or wired-OR).
                            if wired_and {
                                val_a & val_b
                            } else {
                                val_a | val_b
                            }
                        } else {
                            val_b
                        }
                    }
                    _ => unreachable!("decoder replay handles decoder faults only"),
                };
                if expected.is_some_and(|e| e != observed) {
                    return true;
                }
            }
        }
    }
    false
}

/// O(|support|) faulty state: the support words' contents plus the fault's
/// dynamic state.
struct Sparse<'s> {
    fault: FaultKind,
    addrs: [u64; MAX_SUPPORT_WORDS],
    values: [u64; MAX_SUPPORT_WORDS],
    n: usize,
    /// Retention bookkeeping (time of last write to the faulty cell).
    last_write_ns: f64,
    /// Pull-open bookkeeping (reads of the faulty cell since its last
    /// write).
    consecutive_reads: u8,
    /// Per-port replayed support reads, as `(step, observed)` — resolves
    /// whether the golden `prev_read` of a stuck-open observation was
    /// itself a (possibly deviating) support read. Borrowed from the
    /// caller's [`SlicedScratch`] so replays reuse one allocation.
    last_read: &'s mut Vec<Option<(u32, u64)>>,
}

impl<'s> Sparse<'s> {
    fn new(
        ports: u8,
        words: &[u64],
        fault: FaultKind,
        scratch: &'s mut SlicedScratch,
    ) -> Self {
        let mut addrs = [0u64; MAX_SUPPORT_WORDS];
        addrs[..words.len()].copy_from_slice(words);
        scratch.last_read.clear();
        scratch.last_read.resize(usize::from(ports), None);
        let mut state = Self {
            fault,
            addrs,
            values: [0; MAX_SUPPORT_WORDS],
            n: words.len(),
            last_write_ns: 0.0,
            consecutive_reads: 0,
            last_read: &mut scratch.last_read,
        };
        // Injection clamps a stuck-at cell immediately, as the array does.
        if let FaultKind::StuckAt { cell, value } = fault {
            state.set_cell(cell, value);
        }
        state
    }

    fn slot_of(&self, word: u64) -> usize {
        self.addrs[..self.n]
            .iter()
            .position(|&a| a == word)
            .expect("support cells live in support words")
    }

    fn bit(&self, cell: CellId) -> bool {
        self.values[self.slot_of(cell.word)] >> cell.bit & 1 == 1
    }

    fn set_cell(&mut self, cell: CellId, value: bool) {
        let slot = self.slot_of(cell.word);
        if value {
            self.values[slot] |= 1 << cell.bit;
        } else {
            self.values[slot] &= !(1 << cell.bit);
        }
    }

    /// Mirrors `MemoryArray::write_word` for the single injected fault.
    fn write(&mut self, slot: usize, data: u64, now_ns: f64) {
        let word = self.addrs[slot];
        let old = self.values[slot];
        let mut new = data;
        let mut sof = 0u64;
        match self.fault {
            FaultKind::StuckOpen { cell } if cell.word == word => {
                sof = 1 << cell.bit;
            }
            FaultKind::Transition { cell, rising } if cell.word == word => {
                let b = 1u64 << cell.bit;
                let o = old & b != 0;
                let r = data & b != 0;
                if rising && !o && r {
                    new &= !b;
                }
                if !rising && o && !r {
                    new |= b;
                }
            }
            FaultKind::StuckAt { cell, value } if cell.word == word => {
                let b = 1u64 << cell.bit;
                if value {
                    new |= b;
                } else {
                    new &= !b;
                }
            }
            _ => {}
        }
        new = (new & !sof) | (old & sof);
        self.values[slot] = new;

        // State bookkeeping for every write that lands on the faulty word
        // (the single fault can never be masked by another fault's SOF).
        match self.fault {
            FaultKind::Retention { cell, .. } if cell.word == word => {
                self.last_write_ns = now_ns;
            }
            FaultKind::PullOpen { cell, .. } if cell.word == word => {
                self.consecutive_reads = 0;
            }
            _ => {}
        }

        // Phase 2: coupling effects from the committed transitions. A single
        // fault has a single aggressor/trigger cell, so at most one effect.
        let changed = old ^ new;
        if changed == 0 {
            return;
        }
        match self.fault {
            FaultKind::CouplingInversion { aggressor, victim, rising }
                if aggressor.word == word =>
            {
                let b = 1u64 << aggressor.bit;
                if changed & b != 0
                    && (new & b != 0) == rising
                    && victim_sensitized(victim, word, changed)
                {
                    let v = !self.bit(victim);
                    self.set_cell(victim, v);
                }
            }
            FaultKind::CouplingIdempotent { aggressor, victim, rising, forced }
                if aggressor.word == word =>
            {
                let b = 1u64 << aggressor.bit;
                if changed & b != 0
                    && (new & b != 0) == rising
                    && victim_sensitized(victim, word, changed)
                {
                    self.set_cell(victim, forced);
                }
            }
            FaultKind::NpsfActive { base, trigger, rising, others }
                if trigger.word == word =>
            {
                let b = 1u64 << trigger.bit;
                if changed & b != 0
                    && (new & b != 0) == rising
                    && others.iter().all(|&(c, v)| self.bit(c) == v)
                    && victim_sensitized(base, word, changed)
                {
                    let v = !self.bit(base);
                    self.set_cell(base, v);
                }
            }
            _ => {}
        }
    }

    /// Mirrors `MemoryArray::observe_word` (and its per-cell
    /// `observed_bit_indexed` sequence) for the single injected fault,
    /// returning the observed word value.
    fn read(
        &mut self,
        slot: usize,
        port: PortId,
        step: u32,
        now_ns: f64,
        prev_read: Option<PrevRead>,
    ) -> u64 {
        let word = self.addrs[slot];
        let mut value = self.values[slot];
        match self.fault {
            // SOF dominates: nothing is driven, the sense amp repeats the
            // previous read on this port (0 while the latch is invalid).
            FaultKind::StuckOpen { cell } if cell.word == word => {
                let b = 1u64 << cell.bit;
                match self.latched(port, prev_read) {
                    Some(latch) if latch & b != 0 => value |= b,
                    _ => value &= !b,
                }
            }
            // Retention decay is applied lazily at observation time, and
            // the decayed store refreshes the cell like any write.
            FaultKind::Retention { cell, decays_to, retention_ns }
                if cell.word == word && now_ns - self.last_write_ns > retention_ns =>
            {
                self.set_cell(cell, decays_to);
                self.last_write_ns = now_ns;
                value = self.values[slot];
            }
            // Pull-open: repeated reads drain the node; the drained store
            // resets the counter, so the drain re-arms like after a write.
            FaultKind::PullOpen { cell, good_reads, decays_to } if cell.word == word => {
                self.consecutive_reads = self.consecutive_reads.saturating_add(1);
                if self.consecutive_reads > good_reads {
                    self.set_cell(cell, decays_to);
                    self.consecutive_reads = 0;
                    value = self.values[slot];
                }
            }
            FaultKind::CouplingState { aggressor, victim, when, forced }
                if victim.word == word && self.bit(aggressor) == when =>
            {
                value = with_bit(value, victim.bit, forced);
            }
            FaultKind::NpsfStatic { base, neighborhood, forced }
                if base.word == word
                    && neighborhood.iter().all(|&(c, v)| self.bit(c) == v) =>
            {
                value = with_bit(value, base.bit, forced);
            }
            // Stuck-at clamps the read path too (storage already clamped,
            // kept for exactness with the array's observation order).
            FaultKind::StuckAt { cell, value: v } if cell.word == word => {
                value = with_bit(value, cell.bit, v);
            }
            _ => {}
        }
        self.last_read[usize::from(port.0)] = Some((step, value));
        value
    }

    /// The sense-amplifier value a stuck-open read repeats: the previous
    /// read on the port — replayed observation if that read was a support
    /// access we replayed, golden otherwise; `None` while the latch is
    /// still invalid (no read yet on the port).
    fn latched(&self, port: PortId, prev_read: Option<PrevRead>) -> Option<u64> {
        let prev = prev_read?;
        if let Some((step, observed)) = self.last_read[usize::from(port.0)] {
            if step == prev.step {
                return Some(observed);
            }
        }
        Some(prev.golden)
    }
}

/// Whether a coupling effect reaches `victim` given the committed change
/// mask of the word just written — same sensitization condition as
/// `mbist_mem::array`.
fn victim_sensitized(victim: CellId, word: u64, changed: u64) -> bool {
    victim.word != word || changed & (1u64 << victim.bit) == 0
}

fn with_bit(value: u64, bit: u8, v: bool) -> u64 {
    if v {
        value | 1 << bit
    } else {
        value & !(1 << bit)
    }
}

#[cfg(test)]
mod tests {
    use crate::expand::{expand_with, ExpandOptions};
    use crate::library;
    use crate::trace::CompiledTrace;
    use mbist_mem::{
        class_universe, FaultClass, MemGeometry, MemoryArray, TestStep, UniverseSpec,
    };

    /// Asserts sliced ≡ full replay for every fault of every class universe
    /// of `g` against `steps`.
    fn assert_equivalence(g: MemGeometry, steps: &[TestStep], label: &str) {
        let trace = CompiledTrace::from_steps(g, steps);
        let spec = UniverseSpec::default();
        let mut scratch = MemoryArray::new(g);
        let mut sliced_hits = 0usize;
        for class in FaultClass::ALL {
            for fault in class_universe(&g, class, &spec) {
                let full = trace.detect_full(fault, &mut scratch);
                if let Some(flag) = trace.detect_sliced(fault) {
                    sliced_hits += 1;
                    assert_eq!(
                        flag, full,
                        "{label}: sliced disagrees with full replay on {fault}"
                    );
                }
                assert_eq!(trace.detect(fault), full, "{label}: routed detect on {fault}");
            }
        }
        assert!(sliced_hits > 0, "{label}: no fault took the sliced path");
    }

    #[test]
    fn sliced_matches_full_replay_bit_oriented() {
        let g = MemGeometry::bit_oriented(16);
        for test in
            [library::mats(), library::march_c(), library::march_a(), library::march_b()]
        {
            let steps = expand_with(&test, &g, &ExpandOptions::for_geometry(&g));
            assert_equivalence(g, &steps, test.name());
        }
    }

    #[test]
    fn sliced_matches_full_replay_on_timing_sensitive_tests() {
        // March C+ carries retention pauses, March C++ triple reads — the
        // Retention/PullOpen timing paths must agree exactly.
        let g = MemGeometry::bit_oriented(16);
        for test in [library::march_c_plus(), library::march_c_plus_plus()] {
            let steps = expand_with(&test, &g, &ExpandOptions::for_geometry(&g));
            assert_equivalence(g, &steps, test.name());
        }
    }

    #[test]
    fn sliced_matches_full_replay_word_oriented() {
        // Word-oriented geometries exercise intra-word coupling
        // sensitization and data backgrounds.
        for g in [MemGeometry::word_oriented(8, 4), MemGeometry::word_oriented(6, 8)] {
            for test in [library::march_c(), library::march_c_plus_plus()] {
                let steps = expand_with(&test, &g, &ExpandOptions::for_geometry(&g));
                assert_equivalence(g, &steps, test.name());
            }
        }
    }

    #[test]
    fn sliced_matches_full_replay_multiport() {
        // Multi-port streams exercise the per-port sense-latch resolution
        // of stuck-open faults.
        let g = MemGeometry::new(12, 1, 2);
        for test in [library::march_c(), library::march_c_plus()] {
            let steps = expand_with(&test, &g, &ExpandOptions::for_geometry(&g));
            assert_equivalence(g, &steps, test.name());
        }
    }

    #[test]
    fn decoder_faults_take_the_two_word_replay() {
        // Decoder faults have no address-local support set, but their
        // deviations are confined to the two wired words — the dedicated
        // replay must agree with the full array bit for bit.
        for g in [MemGeometry::bit_oriented(8), MemGeometry::word_oriented(8, 4)] {
            for test in [library::march_c(), library::mats_plus()] {
                let steps = expand_with(&test, &g, &ExpandOptions::for_geometry(&g));
                let trace = CompiledTrace::from_steps(g, &steps);
                let mut scratch = MemoryArray::new(g);
                for fault in
                    class_universe(&g, FaultClass::AddressDecoder, &UniverseSpec::default())
                {
                    assert_eq!(
                        trace.detect_sliced(fault),
                        Some(trace.detect_full(fault, &mut scratch)),
                        "{fault} ({g})"
                    );
                }
            }
        }
    }
}
