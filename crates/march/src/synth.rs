//! March-test synthesis: searching for a minimal algorithm that covers a
//! target fault-class set.
//!
//! One promise of a programmable BIST controller is that the *algorithm*
//! becomes a tuning knob: when a fab's dominant defect mix is known, a
//! shorter test with the same effective coverage saves test time on every
//! part. This module automates the search — greedy forward selection over
//! a menu of march-element candidates (scored by incremental faults
//! detected in serial simulation), followed by a backward pruning pass —
//! and emits an ordinary [`MarchTest`] ready for any controller in the
//! workspace.

use mbist_mem::{class_universe, FaultClass, FaultKind, MemGeometry, MemoryArray};

use crate::coverage::{stride_sample, CoverageOptions};
use crate::element::{AddressOrder, MarchElement, MarchItem};
use crate::expand::{expand_with, ExpandOptions};
use crate::fanout::detect_universe;
use crate::fanout::WorkerScratch;
use crate::op::MarchOp;
use crate::runner::run_steps_detect;
use crate::test::MarchTest;
use crate::trace::TraceArena;

/// Options for the synthesis search.
#[derive(Debug, Clone)]
pub struct SynthesisOptions {
    /// Geometry the search simulates on (small memories search fast; the
    /// result generalizes because march detection arguments are
    /// size-independent for these classes).
    pub geometry: MemGeometry,
    /// Fault classes the result must cover.
    pub classes: Vec<FaultClass>,
    /// Coverage-evaluation parameters (universe spec, sampling).
    pub coverage: CoverageOptions,
    /// Upper bound on march elements (excluding the initialization).
    pub max_elements: usize,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        Self {
            geometry: MemGeometry::bit_oriented(8),
            classes: vec![
                FaultClass::StuckAt,
                FaultClass::Transition,
                FaultClass::AddressDecoder,
            ],
            coverage: CoverageOptions {
                max_faults_per_class: Some(128),
                ..CoverageOptions::default()
            },
            max_elements: 8,
        }
    }
}

/// Outcome of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesizedMarch {
    /// The synthesized algorithm.
    pub test: MarchTest,
    /// Faults of the target list the result detects.
    pub detected: usize,
    /// Size of the target fault list.
    pub total: usize,
    /// Candidate evaluations performed (search effort).
    pub evaluations: usize,
}

impl SynthesizedMarch {
    /// Whether every targeted fault is detected.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.detected == self.total
    }
}

/// The candidate element menu the greedy synthesis searches over: per-cell
/// read/write patterns × up/down orders (20 deduplicated elements).
///
/// Public so search-based synthesizers (the `mbist-search` crate) draw
/// from the exact same pool instead of a drifting copy — an element the
/// greedy pass can pick is an element the evolutionary pass can mutate to,
/// and vice versa.
#[must_use]
pub fn candidate_elements() -> Vec<MarchElement> {
    use MarchOp::{Read, Write};
    let patterns: Vec<Vec<MarchOp>> = vec![
        vec![Read(false)],
        vec![Read(true)],
        vec![Read(false), Write(true)],
        vec![Read(true), Write(false)],
        vec![Read(false), Write(true), Read(true)],
        vec![Read(true), Write(false), Read(false)],
        vec![Read(false), Write(true), Write(false)],
        vec![Read(true), Write(false), Write(true)],
        vec![Read(false), Write(true), Read(true), Write(false)],
        vec![Read(true), Write(false), Read(false), Write(true)],
    ];
    let mut out = Vec::new();
    for ops in patterns {
        for order in [AddressOrder::Up, AddressOrder::Down] {
            out.push(MarchElement::new(order, ops.clone()));
        }
    }
    out
}

/// Runs the greedy search.
///
/// # Panics
///
/// Panics if `options.classes` is empty.
#[must_use]
pub fn synthesize_march(name: &str, options: &SynthesisOptions) -> SynthesizedMarch {
    assert!(!options.classes.is_empty(), "need at least one target fault class");
    let g = options.geometry;
    let expand_opts = ExpandOptions::for_geometry(&g);

    // Target fault list (deterministically sampled like evaluate_coverage).
    let mut faults: Vec<FaultKind> = Vec::new();
    for &class in &options.classes {
        let mut u = class_universe(&g, class, &options.coverage.spec);
        if let Some(max) = options.coverage.max_faults_per_class {
            u = stride_sample(u, max);
        }
        faults.extend(u);
    }
    let total = faults.len();
    let mut evaluations = 0usize;

    // Every trial expands and compiles its step stream exactly once and
    // batch-simulates the whole fault list through the (optionally
    // parallel) fan-out with the configured engine.
    let jobs = options.coverage.jobs;
    let engine = options.coverage.engine;
    // A tripped token ends the search at the next loop head (and cuts the
    // in-flight fan-out short); the partial result is still a well-formed
    // march test, just not a converged one — callers that set a token must
    // check it and discard.
    let cancel = &options.coverage.cancel;
    let detect_flags = |test: &MarchTest, list: &[FaultKind]| -> Vec<bool> {
        let steps = expand_with(test, &g, &expand_opts);
        detect_universe(&g, &steps, list, jobs, engine, cancel)
    };
    let clean = |test: &MarchTest| -> bool {
        let mut mem = MemoryArray::new(g);
        !run_steps_detect(&mut mem, &expand_with(test, &g, &expand_opts))
    };
    // Per-trial scoring goes through an arena: consecutive trials share
    // the accepted `items` prefix, so each trial recompiles only its new
    // tail element, and one compile answers both the cleanliness check
    // (golden-replay miscompares) and the incremental gain. Counts equal
    // the legacy expand→compile→detect round trip exactly, so the greedy
    // decisions — and the synthesized test — are unchanged.
    let mut arena = TraceArena::new();
    let mut scratch = WorkerScratch::default();
    let mut trial_gain = |test: &MarchTest, list: &[FaultKind]| -> Option<usize> {
        let trace = arena.compile(test, &g, &expand_opts);
        if !trace.golden_miscompares().is_empty() {
            return None; // read expectations inconsistent with state
        }
        Some(trace.count_detected_with(list, engine, None, &mut scratch))
    };
    let survivors = |list: &[FaultKind], flags: &[bool]| -> Vec<FaultKind> {
        list.iter().zip(flags).filter(|&(_, &d)| !d).map(|(&f, _)| f).collect()
    };

    // Start from the canonical initialization.
    let init = MarchElement::new(AddressOrder::Any, vec![MarchOp::Write(false)]);
    let mut items: Vec<MarchItem> = vec![init.into()];
    let mut current = MarchTest::new(name, items.clone());
    let mut undetected = survivors(&faults, &detect_flags(&current, &faults));
    evaluations += total;

    let menu = candidate_elements();
    while !undetected.is_empty() && items.len() - 1 < options.max_elements {
        if cancel.is_cancelled() {
            break;
        }
        let mut best: Option<(usize, usize)> = None; // (menu idx, gain)
        for (k, cand) in menu.iter().enumerate() {
            if cancel.is_cancelled() {
                break;
            }
            let mut trial_items = items.clone();
            trial_items.push(cand.clone().into());
            let trial = MarchTest::new(name, trial_items);
            let Some(gain) = trial_gain(&trial, &undetected) else {
                continue;
            };
            evaluations += undetected.len();
            if gain > 0 && best.is_none_or(|(_, g0)| gain > g0) {
                best = Some((k, gain));
            }
        }
        if let Some((k, _)) = best {
            items.push(menu[k].clone().into());
            current = MarchTest::new(name, items.clone());
            undetected = survivors(&undetected, &detect_flags(&current, &undetected));
            continue;
        }

        // No single element helps: some faults (notably coupling faults
        // needing the opposite address order in a specific state) only pay
        // off as an element *pair*. One level of lookahead breaks the
        // plateau.
        let mut best_pair: Option<(usize, usize, usize)> = None;
        for (a, ca) in menu.iter().enumerate() {
            if cancel.is_cancelled() {
                break;
            }
            for (b, cb) in menu.iter().enumerate() {
                let mut trial_items = items.clone();
                trial_items.push(ca.clone().into());
                trial_items.push(cb.clone().into());
                let trial = MarchTest::new(name, trial_items);
                let Some(gain) = trial_gain(&trial, &undetected) else {
                    continue;
                };
                evaluations += undetected.len();
                if gain > 0 && best_pair.is_none_or(|(_, _, g0)| gain > g0) {
                    best_pair = Some((a, b, gain));
                }
            }
        }
        let Some((a, b, _)) = best_pair else { break };
        items.push(menu[a].clone().into());
        items.push(menu[b].clone().into());
        current = MarchTest::new(name, items.clone());
        undetected = survivors(&undetected, &detect_flags(&current, &undetected));
    }

    // Backward pruning: drop any element whose removal keeps coverage.
    let mut i = 1;
    while i < items.len() {
        if cancel.is_cancelled() {
            break;
        }
        let mut reduced = items.clone();
        reduced.remove(i);
        if reduced.iter().any(|it| it.as_element().is_some()) {
            let trial = MarchTest::new(name, reduced.clone());
            let covers = clean(&trial) && {
                let cur = detect_flags(&current, &faults);
                let red = detect_flags(&trial, &faults);
                cur.iter().zip(&red).all(|(&c, &r)| !c || r)
            };
            evaluations += total;
            if covers {
                items = reduced;
                current = MarchTest::new(name, items.clone());
                continue;
            }
        }
        i += 1;
    }

    let detected = detect_flags(&current, &faults).iter().filter(|&&d| d).count();
    SynthesizedMarch { test: current, detected, total, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::evaluate_coverage;
    use crate::library;

    #[test]
    fn saf_only_synthesis_is_mats_sized() {
        let options = SynthesisOptions {
            classes: vec![FaultClass::StuckAt],
            ..SynthesisOptions::default()
        };
        let result = synthesize_march("synth-saf", &options);
        assert!(result.is_complete(), "{}/{}", result.detected, result.total);
        assert!(
            result.test.ops_per_cell() <= library::mats().ops_per_cell(),
            "SAF-only test should not exceed MATS (got {})",
            result.test
        );
    }

    #[test]
    fn classic_static_set_is_covered_within_march_c_budget() {
        let options = SynthesisOptions::default(); // SAF + TF + AF
        let result = synthesize_march("synth-static", &options);
        assert!(result.is_complete(), "{}", result.test);
        assert!(
            result.test.ops_per_cell() <= library::march_c().ops_per_cell(),
            "{} ops/cell",
            result.test.ops_per_cell()
        );
    }

    #[test]
    fn coupling_synthesis_reaches_full_coverage_within_march_a_budget() {
        let options = SynthesisOptions {
            classes: vec![
                FaultClass::StuckAt,
                FaultClass::Transition,
                FaultClass::CouplingInversion,
                FaultClass::CouplingIdempotent,
            ],
            max_elements: 10,
            ..SynthesisOptions::default()
        };
        let result = synthesize_march("synth-cf", &options);
        assert!(result.is_complete(), "{}", result.test);
        assert!(
            result.test.ops_per_cell() <= library::march_a().ops_per_cell(),
            "{} ops/cell for {}",
            result.test.ops_per_cell(),
            result.test
        );
        // A repeated-sweep structure is required: a single read/write pass
        // cannot see both coupling transition directions.
        assert!(result.test.element_count() >= 3, "{}", result.test);
    }

    #[test]
    fn synthesized_test_generalizes_to_larger_memories() {
        let options = SynthesisOptions::default();
        let result = synthesize_march("synth-static", &options);
        let big = MemGeometry::bit_oriented(32);
        let report = evaluate_coverage(
            &result.test,
            &big,
            &CoverageOptions {
                classes: options.classes.clone(),
                max_faults_per_class: Some(96),
                ..CoverageOptions::default()
            },
        );
        for row in &report.rows {
            assert!(row.is_complete(), "{} incomplete on 32 cells", row.class);
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let options = SynthesisOptions::default();
        let a = synthesize_march("s", &options);
        let b = synthesize_march("s", &options);
        assert_eq!(a.test.items(), b.test.items());
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn result_never_false_alarms() {
        let options = SynthesisOptions {
            classes: vec![FaultClass::StuckAt, FaultClass::CouplingState],
            ..SynthesisOptions::default()
        };
        let result = synthesize_march("s", &options);
        assert!(crate::runner::fault_free_clean(&result.test, &options.geometry));
    }
}
