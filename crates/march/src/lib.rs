//! # mbist-march — march memory-test algorithms
//!
//! March-test substrate for the MBIST workspace:
//!
//! - notation: [`MarchOp`], [`MarchElement`], [`MarchItem`], [`MarchTest`]
//!   with a parser ([`MarchTest::parse`]) and van-de-Goor-style display,
//! - the algorithm [`library`]: MATS, MATS+, March X/Y/C/A/B and the
//!   paper's C+, C++, A+, A++ extensions (retention tails, triple reads),
//! - [`expand`]: the reference expansion of an algorithm into a
//!   [`TestStep`](mbist_mem::TestStep) stream — the specification every
//!   BIST controller is verified against,
//! - [`run_steps`] / [`detects`]: executing streams against a fault-
//!   injectable [`MemoryArray`](mbist_mem::MemoryArray),
//! - [`CompiledTrace`] / [`SimEngine`]: sliced differential fault
//!   simulation — compile a stream once, replay each address-local fault
//!   against only the accesses touching its support set — and lane-packed
//!   bit-parallel simulation ([`SimEngine::Packed`]), batching up to 256
//!   congruent faults into `[u64; 4]` lane blocks per trace replay,
//! - [`evaluate_coverage`]: per-fault-class coverage by serial fault
//!   simulation,
//! - [`run_transparent`]: Nicolaidis-style content-preserving testing.
//!
//! # Examples
//!
//! ```
//! use mbist_march::{detects, library};
//! use mbist_mem::{CellId, FaultKind, MemGeometry};
//!
//! let g = MemGeometry::bit_oriented(32);
//! let tf = FaultKind::Transition { cell: CellId::bit_oriented(17), rising: true };
//! assert!(detects(&library::march_c(), &g, tf)?);
//! # Ok::<(), mbist_mem::MemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod background;
mod cancel;
mod coverage;
mod element;
mod error;
mod expand;
mod fanout;
pub mod library;
pub mod neighborhood;
mod notation;
mod op;
mod packed;
mod runner;
mod score;
mod sliced;
pub mod synth;
mod test;
mod trace;
pub mod transparent;

pub use background::{standard_background_count, standard_backgrounds};
pub use cancel::{CancelToken, CANCEL_CHECK_STRIDE};
pub use coverage::{
    evaluate_coverage, evaluate_coverage_trace, fault_route, routing_breakdown,
    ClassCoverage, CoverageOptions, CoverageReport, FaultRoute, RoutingBreakdown,
    RoutingRow,
};
pub use element::{AddressOrder, ComplementMask, MarchElement, MarchItem};
pub use error::MarchError;
pub use expand::{cycle_count, expand, expand_into, expand_with, ExpandOptions};
pub use op::MarchOp;
pub use runner::{detects, fault_free_clean, run_steps, run_steps_detect, RunReport};
pub use score::CandidateBatchScorer;
pub use synth::{candidate_elements, synthesize_march, SynthesisOptions, SynthesizedMarch};
pub use test::{MarchTest, SymmetricSplit};
pub use trace::{
    canonical_request_key, canonical_trace_key, CompiledTrace, SimEngine, TraceArena,
};
pub use transparent::{is_transparent_compatible, run_transparent, TransparentOutcome};
