//! Transparent (content-preserving) march testing.
//!
//! The paper's conclusion points at Nicolaidis' transparent BIST \[7\] as the
//! natural beneficiary of a programmable controller: periodic in-field
//! testing must restore the memory content it found. The transparent
//! transform of a march test:
//!
//! 1. drops the leading initialization (write-only) elements — the existing
//!    content *is* the initialization,
//! 2. reinterprets every relative data value `d` as `cᵢ ⊕ d`, where `cᵢ` is
//!    the content of cell `i` observed in a *prediction pass* before the
//!    test proper,
//! 3. requires the remaining op sequence to leave every cell with an even
//!    number of inversions so the content is restored.
//!
//! With the March C body (`⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)`)
//! each cell is inverted four times — content-preserving.

use mbist_mem::{BusCycle, MemGeometry, MemoryArray, Miscompare, PortId};
use mbist_rtl::Bits;

use crate::element::MarchItem;
use crate::runner::RunReport;
use crate::test::MarchTest;

/// The outcome of a transparent test session.
#[derive(Debug, Clone, PartialEq)]
pub struct TransparentOutcome {
    /// Result of the transparent test pass.
    pub report: RunReport,
    /// Whether the memory content after the test equals the content the
    /// prediction pass observed.
    pub content_preserved: bool,
}

/// Whether `test` is expressible transparently: after removing the leading
/// write-only elements, every cell must see an even number of write
/// inversions (each `w d̄`-after-`d` flips the cell once; the march
/// structure applies the same flip count to every cell).
#[must_use]
pub fn is_transparent_compatible(test: &MarchTest) -> bool {
    let body: Vec<_> = body_items(test).collect();
    if body.is_empty() {
        return false;
    }
    // Count per-cell write inversions: each write stores d or d̄; the cell
    // value toggles whenever consecutive writes differ. Track relative
    // value through the whole body: it must end where it started.
    let mut value = false; // relative content: c ⊕ 0 at body entry
    for item in &body {
        if let MarchItem::Element(e) = item {
            for op in e.ops() {
                if op.is_write() {
                    value = op.data();
                }
            }
        }
    }
    !value
}

/// Runs a transparent march session against `mem` through `port`:
/// prediction pass (read every cell), transparent test pass, content check.
///
/// Reads during the test expect `cᵢ ⊕ d`; writes store `cᵢ ⊕ d`. A fault
/// that corrupts content or read paths shows up as a miscompare exactly as
/// in a conventional session, but a fault-free memory keeps its content.
///
/// # Panics
///
/// Panics if the test is not transparent-compatible
/// (see [`is_transparent_compatible`]).
#[must_use]
pub fn run_transparent(
    mem: &mut MemoryArray,
    test: &MarchTest,
    port: PortId,
) -> TransparentOutcome {
    assert!(
        is_transparent_compatible(test),
        "{} is not content-preserving; cannot run transparently",
        test.name()
    );
    let geometry = mem.geometry();

    // Prediction pass: observe current content through the functional port.
    let content: Vec<Bits> = (0..geometry.words()).map(|a| mem.read(port, a)).collect();

    // Test pass.
    let mut report = RunReport::default();
    for item in body_items(test) {
        match item {
            MarchItem::Pause { ns } => {
                mem.pause(*ns);
                report.pause_ns += ns;
            }
            MarchItem::Element(e) => {
                let n = geometry.words();
                let addrs: Box<dyn Iterator<Item = u64>> = match e.order().direction() {
                    mbist_rtl::Direction::Up => Box::new(0..n),
                    mbist_rtl::Direction::Down => Box::new((0..n).rev()),
                };
                for addr in addrs {
                    for op in e.ops() {
                        let base = content[usize::try_from(addr).expect("addr fits")];
                        let word = if op.data() { !base } else { base };
                        report.bus_cycles += 1;
                        if op.is_write() {
                            report.writes += 1;
                            mem.write(port, addr, word);
                        } else {
                            report.reads += 1;
                            let observed = mem.read(port, addr);
                            if observed != word {
                                report.miscompares.push(Miscompare {
                                    port,
                                    addr,
                                    expected: word,
                                    observed,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // Content check (backdoor: the guarantee is about the stored state).
    let content_preserved =
        (0..geometry.words()).all(|a| mem.peek(a) == content[a as usize]);

    TransparentOutcome { report, content_preserved }
}

/// Builds the transparent bus-cycle stream without executing it, given a
/// content snapshot — useful for inspecting or cross-checking the
/// transform.
#[must_use]
pub fn transparent_steps(
    test: &MarchTest,
    geometry: &MemGeometry,
    content: &[Bits],
    port: PortId,
) -> Vec<mbist_mem::TestStep> {
    assert_eq!(content.len() as u64, geometry.words(), "content snapshot length mismatch");
    let mut steps = Vec::new();
    for item in body_items(test) {
        match item {
            MarchItem::Pause { ns } => steps.push(mbist_mem::TestStep::Pause { ns: *ns }),
            MarchItem::Element(e) => {
                let n = geometry.words();
                let addrs: Box<dyn Iterator<Item = u64>> = match e.order().direction() {
                    mbist_rtl::Direction::Up => Box::new(0..n),
                    mbist_rtl::Direction::Down => Box::new((0..n).rev()),
                };
                for addr in addrs {
                    for op in e.ops() {
                        let base = content[usize::try_from(addr).expect("addr fits")];
                        let word = if op.data() { !base } else { base };
                        steps.push(mbist_mem::TestStep::Bus(if op.is_write() {
                            BusCycle::write(port, addr, word)
                        } else {
                            BusCycle::read(port, addr, word)
                        }));
                    }
                }
            }
        }
    }
    steps
}

fn body_items(test: &MarchTest) -> impl Iterator<Item = &MarchItem> {
    test.items().iter().skip_while(|i| {
        i.as_element().is_some_and(crate::element::MarchElement::is_write_only)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use mbist_mem::{CellId, FaultKind};

    const P: PortId = PortId(0);

    #[test]
    fn march_c_is_transparent_compatible() {
        assert!(is_transparent_compatible(&library::march_c()));
        assert!(is_transparent_compatible(&library::march_x()));
        assert!(is_transparent_compatible(&library::march_y()));
    }

    #[test]
    fn mats_plus_is_not_content_preserving() {
        // body (r0,w1)(r1,w0) preserves... MATS+ body: ⇑(r0,w1); ⇓(r1,w0)
        // ends at 0 = preserved. MATS body: (r0,w1);(r1): ends at 1 — not.
        assert!(!is_transparent_compatible(&library::mats()));
        assert!(is_transparent_compatible(&library::mats_plus()));
    }

    #[test]
    fn fault_free_transparent_run_preserves_content() {
        let g = MemGeometry::word_oriented(16, 4);
        let mut mem = MemoryArray::new(g);
        mem.randomize(7);
        let before: Vec<Bits> = (0..16).map(|a| mem.peek(a)).collect();
        let out = run_transparent(&mut mem, &library::march_c(), P);
        assert!(out.report.passed());
        assert!(out.content_preserved);
        for (a, b) in before.iter().enumerate() {
            assert_eq!(mem.peek(a as u64), *b);
        }
    }

    #[test]
    fn transparent_run_detects_stuck_at() {
        let g = MemGeometry::bit_oriented(16);
        let mut mem = MemoryArray::with_fault(
            g,
            FaultKind::StuckAt { cell: CellId::bit_oriented(9), value: true },
        )
        .unwrap();
        mem.randomize(3);
        let out = run_transparent(&mut mem, &library::march_c(), P);
        assert!(!out.report.passed());
        assert!(out.report.miscompares.iter().all(|m| m.addr == 9));
    }

    #[test]
    fn transparent_run_detects_coupling() {
        let g = MemGeometry::bit_oriented(16);
        let mut mem = MemoryArray::with_fault(
            g,
            FaultKind::CouplingInversion {
                aggressor: CellId::bit_oriented(4),
                victim: CellId::bit_oriented(11),
                rising: true,
            },
        )
        .unwrap();
        let out = run_transparent(&mut mem, &library::march_c(), P);
        assert!(!out.report.passed());
    }

    #[test]
    #[should_panic(expected = "not content-preserving")]
    fn incompatible_test_panics() {
        let g = MemGeometry::bit_oriented(4);
        let mut mem = MemoryArray::new(g);
        let _ = run_transparent(&mut mem, &library::mats(), P);
    }

    #[test]
    fn steps_match_run_behavior() {
        let g = MemGeometry::bit_oriented(8);
        let mut mem = MemoryArray::new(g);
        mem.randomize(11);
        let content: Vec<Bits> = (0..8).map(|a| mem.peek(a)).collect();
        let steps = transparent_steps(&library::march_c(), &g, &content, P);
        let report = crate::runner::run_steps(&mut mem, &steps);
        assert!(report.passed());
        for (a, c) in content.iter().enumerate() {
            assert_eq!(mem.peek(a as u64), *c);
        }
    }
}
