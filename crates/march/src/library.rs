//! The catalogue of classical march test algorithms.
//!
//! All definitions follow van de Goor, *Testing Semiconductor Memories*
//! (the paper's reference \[10\]). `march_c` is the six-element form the
//! paper gives in Eq. 1 (elsewhere called March C−; the redundant middle
//! `⇕(r0)` of the original March C adds no coverage). The `+` and `++`
//! variants are the paper's §3 extensions: `+` appends the data-retention
//! tail, `++` additionally reads every cell three times to excite
//! disconnected pull-up/pull-down devices.

use crate::test::MarchTest;

/// Default data-retention pause used by the `+`/`++` variants (100 µs —
/// long enough to exceed the default DRF retention in the simulator).
pub const DEFAULT_RETENTION_PAUSE_NS: f64 = 100_000.0;

fn parse(name: &str, notation: &str) -> MarchTest {
    MarchTest::parse(name, notation).expect("library algorithm notation is valid")
}

/// MATS: `⇕(w0); ⇕(r0,w1); ⇕(r1)` — 4n, stuck-at faults only.
#[must_use]
pub fn mats() -> MarchTest {
    parse("mats", "m(w0); m(r0,w1); m(r1)")
}

/// MATS+: `⇕(w0); ⇑(r0,w1); ⇓(r1,w0)` — 5n, SAF + AF.
#[must_use]
pub fn mats_plus() -> MarchTest {
    parse("mats+", "m(w0); u(r0,w1); d(r1,w0)")
}

/// March X: `⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)` — 6n, adds CFin.
#[must_use]
pub fn march_x() -> MarchTest {
    parse("march-x", "m(w0); u(r0,w1); d(r1,w0); m(r0)")
}

/// March Y: `⇕(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); ⇕(r0)` — 8n, adds linked TF.
#[must_use]
pub fn march_y() -> MarchTest {
    parse("march-y", "m(w0); u(r0,w1,r1); d(r1,w0,r0); m(r0)")
}

/// March C (paper Eq. 1):
/// `⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)` — 10n,
/// SAF + TF + AF + unlinked CF.
#[must_use]
pub fn march_c() -> MarchTest {
    parse("march-c", "m(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); m(r0)")
}

/// March C+ — March C with the data-retention tail (paper §3).
#[must_use]
pub fn march_c_plus() -> MarchTest {
    march_c().with_retention("march-c+", DEFAULT_RETENTION_PAUSE_NS)
}

/// March C++ — March C+ with every read performed three times (paper §3).
#[must_use]
pub fn march_c_plus_plus() -> MarchTest {
    march_c()
        .with_multi_reads("tmp", 3)
        .with_retention("tmp", DEFAULT_RETENTION_PAUSE_NS)
        .with_multi_reads_tail_fix()
        .renamed("march-c++")
}

/// March A:
/// `⇕(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)` —
/// 15n, adds linked CFin coverage.
#[must_use]
pub fn march_a() -> MarchTest {
    parse("march-a", "m(w0); u(r0,w1,w0,w1); u(r1,w0,w1); d(r1,w0,w1,w0); d(r0,w1,w0)")
}

/// March A+ — March A with the data-retention tail (paper §3).
#[must_use]
pub fn march_a_plus() -> MarchTest {
    march_a().with_retention("march-a+", DEFAULT_RETENTION_PAUSE_NS)
}

/// March A++ — March A+ with triple reads (paper §3).
#[must_use]
pub fn march_a_plus_plus() -> MarchTest {
    march_a()
        .with_multi_reads("tmp", 3)
        .with_retention("tmp", DEFAULT_RETENTION_PAUSE_NS)
        .with_multi_reads_tail_fix()
        .renamed("march-a++")
}

/// March B:
/// `⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)` —
/// 17n, adds linked CFid coverage. Not symmetric — the paper's example of a
/// test the `Repeat` mechanism cannot compress.
#[must_use]
pub fn march_b() -> MarchTest {
    parse(
        "march-b",
        "m(w0); u(r0,w1,r1,w0,r0,w1); u(r1,w0,w1); d(r1,w0,w1,w0); d(r0,w1,w0)",
    )
}

impl MarchTest {
    /// The `++` variants triple the reads of the *base* algorithm and of the
    /// retention tail's first element, but the final verification read of
    /// the tail is conventionally also tripled; re-apply the multi-read
    /// transform to any element appended after a pause. (Internal helper
    /// for the library's `++` constructors.)
    #[must_use]
    fn with_multi_reads_tail_fix(&self) -> MarchTest {
        let mut after_pause = false;
        let items = self
            .items()
            .iter()
            .map(|item| match item {
                crate::element::MarchItem::Pause { ns } => {
                    after_pause = true;
                    crate::element::MarchItem::Pause { ns: *ns }
                }
                crate::element::MarchItem::Element(e) => {
                    if after_pause {
                        let ops = e
                            .ops()
                            .iter()
                            .flat_map(|op| {
                                let n = if op.is_read() { 3 } else { 1 };
                                std::iter::repeat_n(*op, n)
                            })
                            .collect();
                        crate::element::MarchElement::new(e.order(), ops).into()
                    } else {
                        e.clone().into()
                    }
                }
            })
            .collect();
        MarchTest::new(self.name(), items)
    }
}

/// PMOVI:
/// `⇓(w0); ⇑(r0,w1,r1); ⇑(r1,w0,r0); ⇓(r0,w1,r1); ⇓(r1,w0,r0)` — 13n,
/// every read directly verifies the preceding write (DELTA-class test).
#[must_use]
pub fn pmovi() -> MarchTest {
    parse("pmovi", "d(w0); u(r0,w1,r1); u(r1,w0,r0); d(r0,w1,r1); d(r1,w0,r0)")
}

/// March U:
/// `⇕(w0); ⇑(r0,w1,r1,w0); ⇑(r0,w1); ⇓(r1,w0,r0,w1); ⇓(r1,w0)` —
/// 13n, unlinked + some linked fault coverage.
#[must_use]
pub fn march_u() -> MarchTest {
    parse("march-u", "m(w0); u(r0,w1,r1,w0); u(r0,w1); d(r1,w0,r0,w1); d(r1,w0)")
}

/// March LR:
/// `⇕(w0); ⇓(r0,w1); ⇑(r1,w0,r0,w1); ⇑(r1,w0); ⇑(r0,w1,r1,w0); ⇑(r0)` —
/// 14n, targets realistic linked faults.
#[must_use]
pub fn march_lr() -> MarchTest {
    parse("march-lr", "m(w0); d(r0,w1); u(r1,w0,r0,w1); u(r1,w0); u(r0,w1,r1,w0); u(r0)")
}

/// March SS:
/// `⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0); ⇓(r0,r0,w0,r0,w1);
/// ⇓(r1,r1,w1,r1,w0); ⇕(r0)` — 22n, all static simple faults.
#[must_use]
pub fn march_ss() -> MarchTest {
    parse(
        "march-ss",
        "m(w0); u(r0,r0,w0,r0,w1); u(r1,r1,w1,r1,w0); d(r0,r0,w0,r0,w1); \
         d(r1,r1,w1,r1,w0); m(r0)",
    )
}

/// March G — March B plus the data-retention elements:
/// `⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0);
/// pause; ⇕(r0,w1,r1); pause; ⇕(r1,w0,r0)` — 23n + 2 pauses.
#[must_use]
pub fn march_g() -> MarchTest {
    parse(
        "march-g",
        "m(w0); u(r0,w1,r1,w0,r0,w1); u(r1,w0,w1); d(r1,w0,w1,w0); d(r0,w1,w0); \
         pause(100us); m(r0,w1,r1); pause(100us); m(r1,w0,r0)",
    )
}

/// Every algorithm in the library, in increasing complexity order.
#[must_use]
pub fn all() -> Vec<MarchTest> {
    vec![
        mats(),
        mats_plus(),
        march_x(),
        march_y(),
        march_c(),
        march_c_plus(),
        march_c_plus_plus(),
        pmovi(),
        march_u(),
        march_lr(),
        march_a(),
        march_a_plus(),
        march_a_plus_plus(),
        march_b(),
        march_ss(),
        march_g(),
    ]
}

/// Looks an algorithm up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<MarchTest> {
    all().into_iter().find(|t| t.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexities_match_the_literature() {
        assert_eq!(mats().ops_per_cell(), 4);
        assert_eq!(mats_plus().ops_per_cell(), 5);
        assert_eq!(march_x().ops_per_cell(), 6);
        assert_eq!(march_y().ops_per_cell(), 8);
        assert_eq!(march_c().ops_per_cell(), 10);
        assert_eq!(pmovi().ops_per_cell(), 13);
        assert_eq!(march_u().ops_per_cell(), 13);
        assert_eq!(march_lr().ops_per_cell(), 14);
        assert_eq!(march_a().ops_per_cell(), 15);
        assert_eq!(march_b().ops_per_cell(), 17);
        assert_eq!(march_ss().ops_per_cell(), 22);
        assert_eq!(march_g().ops_per_cell(), 23);
    }

    #[test]
    fn new_symmetries_are_detected() {
        // PMOVI and March SS fold with the order-only mask, March U with
        // the full mask; March LR and March G have no symmetric structure.
        assert!(pmovi().symmetric_split().is_some());
        assert!(march_ss().symmetric_split().is_some());
        let u = march_u().symmetric_split().expect("march U is symmetric");
        assert!(u.mask.order && u.mask.data && u.mask.compare);
        assert!(march_lr().symmetric_split().is_none());
        assert!(march_g().symmetric_split().is_none());
    }

    #[test]
    fn march_g_carries_retention_pauses() {
        assert_eq!(march_g().pause_count(), 2);
    }

    #[test]
    fn plus_variants_add_retention_tail() {
        let cp = march_c_plus();
        assert_eq!(cp.pause_count(), 2);
        assert_eq!(cp.ops_per_cell(), 14);
        let ap = march_a_plus();
        assert_eq!(ap.pause_count(), 2);
        assert_eq!(ap.ops_per_cell(), 19);
    }

    #[test]
    fn plus_plus_variants_triple_all_reads() {
        let cpp = march_c_plus_plus();
        // base: 5r→15r + 5w = 20; tail: (r,w,r)→(3r,w,3r)=7 and (r)→3r = 10
        assert_eq!(cpp.ops_per_cell(), 30);
        assert_eq!(cpp.pause_count(), 2);
        let app = march_a_plus_plus();
        // base: 4r→12 + 11w = 23; tail 10
        assert_eq!(app.ops_per_cell(), 33);
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let names: std::collections::HashSet<String> =
            all().iter().map(|t| t.name().to_string()).collect();
        assert_eq!(names.len(), all().len());
        assert!(by_name("march-c").is_some());
        assert!(by_name("march-c++").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_algorithm_initializes_before_reading() {
        for t in all() {
            let first = t.elements().next().unwrap();
            assert!(
                first.is_write_only(),
                "{} must start with an initialization element",
                t.name()
            );
        }
    }
}
