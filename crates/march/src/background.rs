//! Data backgrounds for word-oriented memories.
//!
//! A bit-oriented march test writes `0`/`1`; a word-oriented memory needs a
//! set of *background patterns* such that every pair of bits within a word
//! is exercised in both equal and opposite polarities. The standard set has
//! `⌈log2(w)⌉ + 1` patterns: the solid background plus one alternating
//! pattern per bit-position period (checkerboard, double stripe, …). Both
//! programmable controllers in the paper loop the entire algorithm once per
//! background.

use mbist_rtl::Bits;

/// The standard background set for a word width.
///
/// # Examples
///
/// ```
/// use mbist_march::standard_backgrounds;
///
/// let bgs = standard_backgrounds(8);
/// assert_eq!(bgs.len(), 4);
/// assert_eq!(bgs[0].value(), 0b0000_0000); // solid
/// assert_eq!(bgs[1].value(), 0b1010_1010); // checkerboard
/// assert_eq!(bgs[2].value(), 0b1100_1100); // double stripe
/// assert_eq!(bgs[3].value(), 0b1111_0000); // half stripe
/// ```
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 64.
#[must_use]
pub fn standard_backgrounds(width: u8) -> Vec<Bits> {
    assert!((1..=64).contains(&width), "word width must be 1..=64");
    let mut out = vec![Bits::zero(width)];
    let mut period = 0u8;
    while (1u8 << period) < width {
        let mut v = 0u64;
        for bit in 0..width {
            if (bit >> period) & 1 == 1 {
                v |= 1 << bit;
            }
        }
        out.push(Bits::new(width, v));
        period += 1;
    }
    out
}

/// Number of standard backgrounds for a width (`⌈log2(w)⌉ + 1`).
#[must_use]
pub fn standard_background_count(width: u8) -> usize {
    standard_backgrounds(width).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_oriented_has_single_background() {
        let bgs = standard_backgrounds(1);
        assert_eq!(bgs.len(), 1);
        assert!(bgs[0].is_zero());
    }

    #[test]
    fn counts_scale_logarithmically() {
        assert_eq!(standard_background_count(1), 1);
        assert_eq!(standard_background_count(2), 2);
        assert_eq!(standard_background_count(4), 3);
        assert_eq!(standard_background_count(8), 4);
        assert_eq!(standard_background_count(16), 5);
        assert_eq!(standard_background_count(32), 6);
        assert_eq!(standard_background_count(64), 7);
    }

    #[test]
    fn non_power_of_two_widths_work() {
        let bgs = standard_backgrounds(5);
        assert_eq!(bgs.len(), 4); // solid + periods 1,2,4
        for bg in &bgs {
            assert_eq!(bg.width(), 5);
        }
    }

    #[test]
    fn every_bit_pair_distinguished() {
        // For any two distinct bit positions, some background assigns them
        // opposite values — the property that lets coupling faults within a
        // word be detected.
        let width = 8u8;
        let bgs = standard_backgrounds(width);
        for i in 0..width {
            for j in 0..width {
                if i == j {
                    continue;
                }
                assert!(
                    bgs.iter().any(|bg| bg.bit(i) != bg.bit(j)),
                    "bits {i} and {j} never separated"
                );
            }
        }
    }

    #[test]
    fn backgrounds_are_distinct() {
        let bgs = standard_backgrounds(16);
        let set: std::collections::HashSet<u64> = bgs.iter().map(Bits::value).collect();
        assert_eq!(set.len(), bgs.len());
    }
}
