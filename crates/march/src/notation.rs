//! Textual march notation.
//!
//! The grammar accepted by [`MarchTest::parse`] follows van de Goor's
//! notation with ASCII-friendly aliases:
//!
//! ```text
//! test    := item (";" item)*
//! item    := element | pause
//! element := order "(" op ("," op)* ")"
//! order   := "u" | "d" | "m" | "⇑" | "⇓" | "⇕"
//! op      := "r0" | "r1" | "w0" | "w1"
//! pause   := "pause(" number ("ns"|"us"|"ms"|"s") ")"
//! ```
//!
//! Whitespace is insignificant. This is the program format used by the
//! field-update example: a new test algorithm arrives as text, is parsed,
//! compiled and scan-loaded into a programmable controller with zero
//! hardware change.

use crate::element::{AddressOrder, MarchElement, MarchItem};
use crate::error::MarchError;
use crate::op::MarchOp;
use crate::test::MarchTest;

impl MarchTest {
    /// Parses march notation into a test named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`MarchError::Parse`] describing the first offending token.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbist_march::MarchTest;
    ///
    /// let t = MarchTest::parse("mats+", "m(w0); u(r0,w1); d(r1,w0)")?;
    /// assert_eq!(t.element_count(), 3);
    /// assert_eq!(t.to_string(), "mats+: ⇕(w0); ⇑(r0,w1); ⇓(r1,w0)");
    /// # Ok::<(), mbist_march::MarchError>(())
    /// ```
    pub fn parse(name: impl Into<String>, notation: &str) -> Result<MarchTest, MarchError> {
        let mut items = Vec::new();
        for raw in notation.split(';') {
            let part = raw.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_item(part)?);
        }
        if !items.iter().any(|i| i.as_element().is_some()) {
            return Err(MarchError::Parse {
                message: "march test must contain at least one element".into(),
            });
        }
        Ok(MarchTest::new(name, items))
    }
}

fn parse_item(part: &str) -> Result<MarchItem, MarchError> {
    let open = part.find('(').ok_or_else(|| MarchError::Parse {
        message: format!("expected `(` in march item `{part}`"),
    })?;
    if !part.ends_with(')') {
        return Err(MarchError::Parse {
            message: format!("expected closing `)` in march item `{part}`"),
        });
    }
    let head = part[..open].trim();
    let body = &part[open + 1..part.len() - 1];

    if head.eq_ignore_ascii_case("pause") {
        return parse_pause(body.trim());
    }

    let order = match head {
        "u" | "U" | "⇑" | "^" => AddressOrder::Up,
        "d" | "D" | "⇓" | "v" => AddressOrder::Down,
        "m" | "M" | "⇕" | "b" => AddressOrder::Any,
        other => {
            return Err(MarchError::Parse {
                message: format!(
                    "unknown address order `{other}` (expected u/d/m or ⇑/⇓/⇕)"
                ),
            })
        }
    };
    let ops: Result<Vec<MarchOp>, MarchError> = body
        .split([',', ' '])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::parse)
        .collect();
    let ops = ops?;
    if ops.is_empty() {
        return Err(MarchError::Parse {
            message: format!("march element `{part}` has no operations"),
        });
    }
    Ok(MarchElement::new(order, ops).into())
}

fn parse_pause(body: &str) -> Result<MarchItem, MarchError> {
    let (number, unit, scale) = if let Some(n) = body.strip_suffix("ns") {
        (n, "ns", 1.0)
    } else if let Some(n) = body.strip_suffix("us") {
        (n, "us", 1e3)
    } else if let Some(n) = body.strip_suffix("ms") {
        (n, "ms", 1e6)
    } else if let Some(n) = body.strip_suffix('s') {
        (n, "s", 1e9)
    } else {
        return Err(MarchError::Parse {
            message: format!("pause `{body}` needs a unit: ns, us, ms or s"),
        });
    };
    let value: f64 = number.trim().parse().map_err(|_| MarchError::Parse {
        message: format!("invalid pause duration `{number}` ({unit})"),
    })?;
    if !value.is_finite() || value < 0.0 {
        return Err(MarchError::Parse {
            message: format!("pause duration must be non-negative, got `{body}`"),
        });
    }
    Ok(MarchItem::Pause { ns: value * scale })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ascii_and_unicode_orders() {
        let a = MarchTest::parse("t", "u(r0,w1); d(r1,w0); m(r0)").unwrap();
        let b = MarchTest::parse("t", "⇑(r0,w1); ⇓(r1,w0); ⇕(r0)").unwrap();
        assert_eq!(a.items(), b.items());
    }

    #[test]
    fn space_separated_ops_accepted() {
        let t = MarchTest::parse("t", "u(r0 w1 r1)").unwrap();
        assert_eq!(t.ops_per_cell(), 3);
    }

    #[test]
    fn parses_pauses_with_units() {
        let t = MarchTest::parse("t", "m(w0); pause(100ms); m(r0)").unwrap();
        match &t.items()[1] {
            MarchItem::Pause { ns } => assert_eq!(*ns, 1e8),
            other => panic!("expected pause, got {other}"),
        }
        let t = MarchTest::parse("t", "m(w0); pause(5us); m(r0)").unwrap();
        match &t.items()[1] {
            MarchItem::Pause { ns } => assert_eq!(*ns, 5_000.0),
            other => panic!("expected pause, got {other}"),
        }
    }

    #[test]
    fn roundtrips_library_tests() {
        for t in crate::library::all() {
            let text: String =
                t.items().iter().map(ToString::to_string).collect::<Vec<_>>().join("; ");
            let reparsed = MarchTest::parse(t.name(), &text).unwrap();
            assert_eq!(reparsed.items(), t.items(), "roundtrip failed for {}", t.name());
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "x(r0)",
            "u(r0",
            "u()",
            "u(q0)",
            "pause(10)",
            "pause(xyzns)",
            "pause(-5ms); m(r0)",
            "pause(1ms)",
            "",
        ] {
            assert!(MarchTest::parse("bad", bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn error_messages_name_the_problem() {
        let err = MarchTest::parse("t", "q(r0)").unwrap_err();
        assert!(err.to_string().contains("address order"));
        let err = MarchTest::parse("t", "u(z9)").unwrap_err();
        assert!(err.to_string().contains("z9"));
    }
}
