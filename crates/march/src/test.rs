//! March tests: named sequences of march items with structural transforms.

use std::fmt;

use crate::element::{AddressOrder, ComplementMask, MarchElement, MarchItem};
use crate::op::MarchOp;

/// A complete march test algorithm.
///
/// # Examples
///
/// ```
/// use mbist_march::MarchTest;
///
/// let c = MarchTest::parse("march-c", "m(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); m(r0)")?;
/// assert_eq!(c.ops_per_cell(), 10);
/// assert_eq!(c.element_count(), 6);
/// # Ok::<(), mbist_march::MarchError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarchTest {
    name: String,
    items: Vec<MarchItem>,
}

impl MarchTest {
    /// Creates a test from items.
    ///
    /// # Panics
    ///
    /// Panics if `items` contains no march element.
    #[must_use]
    pub fn new(name: impl Into<String>, items: Vec<MarchItem>) -> Self {
        assert!(
            items.iter().any(|i| i.as_element().is_some()),
            "march test must contain at least one element"
        );
        Self { name: name.into(), items }
    }

    /// Convenience constructor from elements only.
    #[must_use]
    pub fn from_elements(name: impl Into<String>, elements: Vec<MarchElement>) -> Self {
        Self::new(name, elements.into_iter().map(MarchItem::from).collect())
    }

    /// The test name, e.g. `"march-c"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The test items in execution order.
    #[must_use]
    pub fn items(&self) -> &[MarchItem] {
        &self.items
    }

    /// Iterates over the march elements (skipping pauses).
    pub fn elements(&self) -> impl Iterator<Item = &MarchElement> {
        self.items.iter().filter_map(MarchItem::as_element)
    }

    /// Number of march elements.
    #[must_use]
    pub fn element_count(&self) -> usize {
        self.elements().count()
    }

    /// Number of pauses.
    #[must_use]
    pub fn pause_count(&self) -> usize {
        self.items.iter().filter(|i| i.as_element().is_none()).count()
    }

    /// Total operations applied to each cell — the classical complexity
    /// figure (`10` for a `10n` algorithm).
    #[must_use]
    pub fn ops_per_cell(&self) -> usize {
        self.elements().map(|e| e.ops().len()).sum()
    }

    /// The relative data value every cell holds after the test completes,
    /// i.e. the data of the last write operation. `None` if the test never
    /// writes.
    #[must_use]
    pub fn final_value(&self) -> Option<bool> {
        let mut last = None;
        for e in self.elements() {
            for op in e.ops() {
                if op.is_write() {
                    last = Some(op.data());
                }
            }
        }
        last
    }

    /// Returns a renamed copy.
    #[must_use]
    pub fn renamed(&self, name: impl Into<String>) -> MarchTest {
        MarchTest { name: name.into(), items: self.items.clone() }
    }

    /// Appends the data-retention extension the paper uses for March C+ /
    /// March A+: `pause; ⇕(r d, w d̄, r d̄); pause; ⇕(r d̄)` where `d` is the
    /// test's final cell value.
    ///
    /// # Panics
    ///
    /// Panics if the test never writes (no defined final value).
    #[must_use]
    pub fn with_retention(&self, name: impl Into<String>, pause_ns: f64) -> MarchTest {
        let d = self.final_value().expect("retention extension needs a final write value");
        let mut items = self.items.clone();
        items.push(MarchItem::Pause { ns: pause_ns });
        items.push(
            MarchElement::new(
                AddressOrder::Any,
                vec![MarchOp::Read(d), MarchOp::Write(!d), MarchOp::Read(!d)],
            )
            .into(),
        );
        items.push(MarchItem::Pause { ns: pause_ns });
        items.push(MarchElement::new(AddressOrder::Any, vec![MarchOp::Read(!d)]).into());
        MarchTest { name: name.into(), items }
    }

    /// Replaces every read by `reads` consecutive reads — the paper's
    /// March C++ / A++ transform that excites disconnected pull-up/down
    /// devices.
    ///
    /// # Panics
    ///
    /// Panics if `reads` is zero.
    #[must_use]
    pub fn with_multi_reads(&self, name: impl Into<String>, reads: usize) -> MarchTest {
        assert!(reads >= 1, "read multiplier must be at least 1");
        let items = self
            .items
            .iter()
            .map(|item| match item {
                MarchItem::Element(e) => {
                    let ops = e
                        .ops()
                        .iter()
                        .flat_map(|op| {
                            let n = if op.is_read() { reads } else { 1 };
                            std::iter::repeat_n(*op, n)
                        })
                        .collect();
                    MarchElement::new(e.order(), ops).into()
                }
                MarchItem::Pause { ns } => MarchItem::Pause { ns: *ns },
            })
            .collect();
        MarchTest { name: name.into(), items }
    }

    /// Detects the symmetric structure exploited by the microcode
    /// controller's `Repeat` instruction: a prefix of initialization
    /// (write-only) elements, a block of `half_len` items that — after
    /// applying some [`ComplementMask`] — equals the following
    /// `half_len` items, and a tail.
    ///
    /// Returns the split with the largest half, or `None` if the test has
    /// no such structure.
    #[must_use]
    pub fn symmetric_split(&self) -> Option<SymmetricSplit> {
        let items = &self.items;
        let prefix = items
            .iter()
            .take_while(|i| i.as_element().is_some_and(MarchElement::is_write_only))
            .count();
        let remaining = items.len() - prefix;
        for half_len in (1..=remaining / 2).rev() {
            for mask in ComplementMask::CANDIDATES {
                let matches = (0..half_len).all(|j| {
                    items[prefix + j].complemented(mask) == items[prefix + half_len + j]
                });
                if matches {
                    return Some(SymmetricSplit {
                        prefix_len: prefix,
                        half_len,
                        mask,
                        tail_len: remaining - 2 * half_len,
                    });
                }
            }
        }
        None
    }
}

impl fmt::Display for MarchTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.items.iter().map(MarchItem::to_string).collect();
        write!(f, "{}: {}", self.name, parts.join("; "))
    }
}

/// The symmetric structure of a march test (see
/// [`MarchTest::symmetric_split`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymmetricSplit {
    /// Leading write-only initialization items.
    pub prefix_len: usize,
    /// Items in each symmetric half.
    pub half_len: usize,
    /// The complement mask mapping the first half onto the second.
    pub mask: ComplementMask,
    /// Items after the second half.
    pub tail_len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn ops_per_cell_counts_operations() {
        let c = library::march_c();
        assert_eq!(c.ops_per_cell(), 10);
        let a = library::march_a();
        assert_eq!(a.ops_per_cell(), 15);
    }

    #[test]
    fn final_value_tracks_last_write() {
        assert_eq!(library::march_c().final_value(), Some(false));
        let t = MarchTest::parse("t", "m(w1)").unwrap();
        assert_eq!(t.final_value(), Some(true));
        let reads = MarchTest::parse("r", "m(r0)").unwrap();
        assert_eq!(reads.final_value(), None);
    }

    #[test]
    fn retention_extension_appends_expected_items() {
        let cp = library::march_c().with_retention("march-c+", 1e6);
        assert_eq!(cp.pause_count(), 2);
        assert_eq!(cp.ops_per_cell(), 10 + 4);
        let items = cp.items();
        let last = items.last().unwrap().as_element().unwrap();
        assert_eq!(last.ops(), &[MarchOp::Read(true)]);
    }

    #[test]
    fn multi_read_transform_triples_reads_only() {
        let cpp = library::march_c().with_multi_reads("march-c++", 3);
        // March C has 5 reads and 5 writes per cell → 15 + 5
        assert_eq!(cpp.ops_per_cell(), 20);
        assert_eq!(cpp.element_count(), library::march_c().element_count());
    }

    #[test]
    fn march_c_is_order_symmetric() {
        let split = library::march_c().symmetric_split().expect("march C is symmetric");
        assert_eq!(split.prefix_len, 1);
        assert_eq!(split.half_len, 2);
        assert_eq!(split.tail_len, 1);
        assert_eq!(split.mask, ComplementMask { order: true, data: false, compare: false });
    }

    #[test]
    fn march_a_is_fully_symmetric() {
        let split = library::march_a().symmetric_split().expect("march A is symmetric");
        assert_eq!(split.prefix_len, 1);
        assert_eq!(split.half_len, 2);
        assert_eq!(split.tail_len, 0);
        assert_eq!(split.mask, ComplementMask { order: true, data: true, compare: true });
    }

    #[test]
    fn march_b_is_not_symmetric() {
        assert!(library::march_b().symmetric_split().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn pause_only_test_panics() {
        let _ = MarchTest::new("empty", vec![MarchItem::Pause { ns: 1.0 }]);
    }

    #[test]
    fn display_uses_notation() {
        let c = library::march_c();
        let s = c.to_string();
        assert!(s.starts_with("march-c:"));
        assert!(s.contains("⇕(w0)"));
        assert!(s.contains("⇓(r1,w0)"));
    }

    #[test]
    fn renamed_keeps_items() {
        let c = library::march_c();
        let r = c.renamed("other");
        assert_eq!(r.name(), "other");
        assert_eq!(r.items(), c.items());
    }
}
