//! Reference expansion of march tests into memory-operation streams.
//!
//! [`expand`] is the *specification* every BIST controller in this
//! workspace is verified against: the microcode controller, the
//! programmable FSM controller and the hardwired baselines must all emit
//! exactly this [`TestStep`] stream for a given algorithm and geometry.
//!
//! The looping structure matches the paper's §2: the whole algorithm is
//! repeated once per data background (inner loop) and once per port
//! (outer loop).

use mbist_mem::{BusCycle, MemGeometry, PortId, TestStep};
use mbist_rtl::Bits;

use crate::background::standard_backgrounds;
use crate::element::MarchItem;
use crate::test::MarchTest;

/// Options controlling expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpandOptions {
    /// Data backgrounds to loop over (relative value `0` writes the
    /// background, `1` writes its complement).
    pub backgrounds: Vec<Bits>,
    /// Ports to repeat the algorithm on.
    pub ports: Vec<PortId>,
}

impl ExpandOptions {
    /// The paper's default policy for a geometry: the standard background
    /// set for the word width, every port.
    #[must_use]
    pub fn for_geometry(geometry: &MemGeometry) -> Self {
        Self {
            backgrounds: standard_backgrounds(geometry.width()),
            ports: geometry.port_ids().collect(),
        }
    }

    /// Single background (all zeros), single port — the bit-oriented
    /// single-port configuration of the paper's Table 1.
    #[must_use]
    pub fn minimal(geometry: &MemGeometry) -> Self {
        Self { backgrounds: vec![Bits::zero(geometry.width())], ports: vec![PortId(0)] }
    }
}

/// Expands `test` over `geometry` with default options
/// ([`ExpandOptions::for_geometry`]).
///
/// # Examples
///
/// ```
/// use mbist_march::{expand, library};
/// use mbist_mem::MemGeometry;
///
/// let steps = expand(&library::march_c(), &MemGeometry::bit_oriented(4));
/// // 10 ops per cell × 4 cells, one background, one port
/// assert_eq!(steps.len(), 40);
/// ```
#[must_use]
pub fn expand(test: &MarchTest, geometry: &MemGeometry) -> Vec<TestStep> {
    expand_with(test, geometry, &ExpandOptions::for_geometry(geometry))
}

/// Expands `test` over `geometry` with explicit options.
///
/// # Panics
///
/// Panics if any background width differs from the geometry's word width,
/// or any port is out of range.
#[must_use]
pub fn expand_with(
    test: &MarchTest,
    geometry: &MemGeometry,
    options: &ExpandOptions,
) -> Vec<TestStep> {
    let mut steps = Vec::new();
    expand_into(test, geometry, options, &mut steps);
    steps
}

/// [`expand_with`] into a caller-owned buffer: the buffer is cleared and
/// refilled, so a scoring loop expanding thousands of candidates reuses
/// one allocation instead of growing a fresh `Vec` per candidate.
///
/// # Panics
///
/// Panics under the same conditions as [`expand_with`].
pub fn expand_into(
    test: &MarchTest,
    geometry: &MemGeometry,
    options: &ExpandOptions,
    steps: &mut Vec<TestStep>,
) {
    for bg in &options.backgrounds {
        assert_eq!(bg.width(), geometry.width(), "background width mismatch");
    }
    for p in &options.ports {
        assert!(p.0 < geometry.ports(), "port {p} out of range");
    }

    let passes = options.ports.len() * options.backgrounds.len();
    let pauses =
        test.items().iter().filter(|i| matches!(i, MarchItem::Pause { .. })).count();
    let cycles = usize::try_from(cycle_count(test, geometry, options))
        .expect("cycle count fits usize");
    steps.clear();
    steps.reserve(cycles + pauses * passes);
    for &port in &options.ports {
        for &bg in &options.backgrounds {
            expand_one_pass(test, geometry, port, bg, steps);
        }
    }
}

fn expand_one_pass(
    test: &MarchTest,
    geometry: &MemGeometry,
    port: PortId,
    bg: Bits,
    steps: &mut Vec<TestStep>,
) {
    let n = geometry.words();
    for item in test.items() {
        match item {
            MarchItem::Pause { ns } => steps.push(TestStep::Pause { ns: *ns }),
            MarchItem::Element(e) => {
                let addrs: Box<dyn Iterator<Item = u64>> = match e.order().direction() {
                    mbist_rtl::Direction::Up => Box::new(0..n),
                    mbist_rtl::Direction::Down => Box::new((0..n).rev()),
                };
                for addr in addrs {
                    for op in e.ops() {
                        let word = if op.data() { !bg } else { bg };
                        let cycle = if op.is_write() {
                            BusCycle::write(port, addr, word)
                        } else {
                            BusCycle::read(port, addr, word)
                        };
                        steps.push(TestStep::Bus(cycle));
                    }
                }
            }
        }
    }
}

/// Counts the bus cycles (excluding pauses) of an expansion without
/// materializing it: `ops_per_cell × words × backgrounds × ports`.
#[must_use]
pub fn cycle_count(
    test: &MarchTest,
    geometry: &MemGeometry,
    options: &ExpandOptions,
) -> u64 {
    test.ops_per_cell() as u64
        * geometry.words()
        * options.backgrounds.len() as u64
        * options.ports.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use mbist_mem::Operation;

    #[test]
    fn march_c_expansion_structure() {
        let g = MemGeometry::bit_oriented(3);
        let steps = expand(&library::march_c(), &g);
        assert_eq!(steps.len(), 30);
        // first element: w0 at 0,1,2
        for (i, s) in steps.iter().take(3).enumerate() {
            let c = s.as_bus().unwrap();
            assert_eq!(c.addr, i as u64);
            assert!(matches!(c.op, Operation::Write(d) if d.is_zero()));
        }
        // element 2 at addresses 0,1,2: r0 then w1
        let c = steps[3].as_bus().unwrap();
        assert!(c.op.is_read());
        assert_eq!(c.expected.unwrap().value(), 0);
        let c = steps[4].as_bus().unwrap();
        assert!(matches!(c.op, Operation::Write(d) if d.value() == 1));
    }

    #[test]
    fn down_elements_reverse_addresses() {
        let g = MemGeometry::bit_oriented(4);
        let steps = expand(&library::mats_plus(), &g);
        // 4 init + 8 up-element steps, then ⇓(r1,w0): 3,3,2,2,1,1,0,0
        let tail: Vec<u64> = steps[12..].iter().map(|s| s.as_bus().unwrap().addr).collect();
        assert_eq!(tail, vec![3, 3, 2, 2, 1, 1, 0, 0]);
    }

    #[test]
    fn pauses_appear_in_stream() {
        let g = MemGeometry::bit_oriented(2);
        let steps = expand(&library::march_c_plus(), &g);
        let pauses = steps.iter().filter(|s| matches!(s, TestStep::Pause { .. })).count();
        assert_eq!(pauses, 2);
    }

    #[test]
    fn word_oriented_loops_backgrounds() {
        let g = MemGeometry::word_oriented(4, 4);
        let steps = expand(&library::march_c(), &g);
        // 3 backgrounds for width 4
        assert_eq!(steps.len(), 10 * 4 * 3);
        // the second pass writes the checkerboard background
        let second_pass_first = steps[40].as_bus().unwrap();
        assert!(matches!(second_pass_first.op, Operation::Write(d) if d.value() == 0b1010));
    }

    #[test]
    fn multiport_repeats_per_port() {
        let g = MemGeometry::new(4, 1, 2);
        let steps = expand(&library::mats_plus(), &g);
        assert_eq!(steps.len(), 5 * 4 * 2);
        assert_eq!(steps[0].as_bus().unwrap().port, PortId(0));
        assert_eq!(steps[20].as_bus().unwrap().port, PortId(1));
    }

    #[test]
    fn cycle_count_matches_expansion() {
        let g = MemGeometry::word_oriented(8, 8);
        let opts = ExpandOptions::for_geometry(&g);
        let steps = expand_with(&library::march_a(), &g, &opts);
        let bus = steps.iter().filter(|s| s.as_bus().is_some()).count() as u64;
        assert_eq!(bus, cycle_count(&library::march_a(), &g, &opts));
    }

    #[test]
    fn expand_into_reuses_the_buffer_and_matches_expand_with() {
        let g = MemGeometry::bit_oriented(8);
        let opts = ExpandOptions::for_geometry(&g);
        let mut buf = Vec::new();
        expand_into(&library::march_c(), &g, &opts, &mut buf);
        assert_eq!(buf, expand_with(&library::march_c(), &g, &opts));
        // Refill with a different test: old content fully replaced.
        expand_into(&library::mats(), &g, &opts, &mut buf);
        assert_eq!(buf, expand_with(&library::mats(), &g, &opts));
    }

    #[test]
    fn minimal_options_use_one_background_one_port() {
        let g = MemGeometry::new(4, 8, 2);
        let steps = expand_with(&library::march_c(), &g, &ExpandOptions::minimal(&g));
        assert_eq!(steps.len(), 40);
    }

    #[test]
    #[should_panic(expected = "background width mismatch")]
    fn mismatched_background_panics() {
        let g = MemGeometry::word_oriented(4, 8);
        let opts =
            ExpandOptions { backgrounds: vec![Bits::zero(4)], ports: vec![PortId(0)] };
        let _ = expand_with(&library::march_c(), &g, &opts);
    }
}
