//! March operations.

use std::fmt;
use std::str::FromStr;

use crate::error::MarchError;

/// One memory operation of a march element, with its data value expressed
/// *relative to the data background*: `false` means the background pattern
/// (`d`), `true` means its complement (`d̄`). For a bit-oriented memory with
/// the all-zero background these are literally 0 and 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarchOp {
    /// Write the (possibly complemented) background.
    Write(bool),
    /// Read and compare against the (possibly complemented) background.
    Read(bool),
}

impl MarchOp {
    /// The relative data value (background = `false`, complement = `true`).
    #[must_use]
    pub fn data(&self) -> bool {
        match *self {
            MarchOp::Write(d) | MarchOp::Read(d) => d,
        }
    }

    /// Whether this is a read.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self, MarchOp::Read(_))
    }

    /// Whether this is a write.
    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(self, MarchOp::Write(_))
    }

    /// The same operation with complemented data.
    #[must_use]
    pub fn complemented(&self) -> MarchOp {
        match *self {
            MarchOp::Write(d) => MarchOp::Write(!d),
            MarchOp::Read(d) => MarchOp::Read(!d),
        }
    }
}

impl fmt::Display for MarchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MarchOp::Write(d) => write!(f, "w{}", u8::from(d)),
            MarchOp::Read(d) => write!(f, "r{}", u8::from(d)),
        }
    }
}

impl FromStr for MarchOp {
    type Err = MarchError;

    fn from_str(s: &str) -> Result<Self, MarchError> {
        match s.trim() {
            "w0" => Ok(MarchOp::Write(false)),
            "w1" => Ok(MarchOp::Write(true)),
            "r0" => Ok(MarchOp::Read(false)),
            "r1" => Ok(MarchOp::Read(true)),
            other => Err(MarchError::Parse {
                message: format!(
                    "unknown march operation `{other}` (expected r0/r1/w0/w1)"
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["r0", "r1", "w0", "w1"] {
            let op: MarchOp = s.parse().unwrap();
            assert_eq!(op.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("x0".parse::<MarchOp>().is_err());
        assert!("w2".parse::<MarchOp>().is_err());
        assert!("".parse::<MarchOp>().is_err());
    }

    #[test]
    fn complement_flips_data_not_kind() {
        assert_eq!(MarchOp::Write(false).complemented(), MarchOp::Write(true));
        assert_eq!(MarchOp::Read(true).complemented(), MarchOp::Read(false));
    }

    #[test]
    fn accessors() {
        assert!(MarchOp::Read(false).is_read());
        assert!(MarchOp::Write(true).is_write());
        assert!(MarchOp::Write(true).data());
        assert!(!MarchOp::Read(false).data());
    }
}
