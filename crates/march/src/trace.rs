//! Compiled step traces for sliced differential fault simulation.
//!
//! [`CompiledTrace`] compiles an expanded step stream once per
//! `(test, geometry)`: one fault-free golden replay produces per-address op
//! lists with precomputed access timestamps (pause-adjusted simulated time)
//! and golden read values. A single address-local fault is then simulated
//! by replaying only the ops that touch its support set
//! ([`FaultKind::support`]) against O(|support|) sparse state — see
//! [`crate::sliced`] — instead of paying an O(words) array allocation and
//! an O(stream) replay per fault.
//!
//! The differential argument: a single fault with support set S can only
//! make the cells in S deviate from the golden trace (every fault effect
//! reads and writes cells of S only), so every access outside S behaves
//! exactly as the golden replay, and detection is decided by the golden
//! miscompares (outside S) plus a sparse replay of the accesses to S.
//! Faults without an address-local support set (address-decoder faults)
//! fall back to the full replay, which stays available as the
//! differential-testing oracle.

use mbist_mem::{FaultKind, MemGeometry, MemoryArray, Operation, PortId, TestStep};

use crate::expand::{expand_with, ExpandOptions};
use crate::runner::run_steps_detect;
use crate::sliced;
use crate::test::MarchTest;

/// Which fault-simulation engine a detection loop uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimEngine {
    /// Full replay: one (scratch) array per fault, whole stream, early exit
    /// at the first miscompare.
    Full,
    /// Sliced differential replay over the shared compiled trace, falling
    /// back to full replay for faults without an address-local support set.
    /// Bit-for-bit equivalent to [`SimEngine::Full`].
    #[default]
    Sliced,
}

/// Stable canonical hash of a `(test name, expanded step stream, geometry)`
/// triple — the cache identity of a [`CompiledTrace`].
///
/// The hash is FNV-1a over a canonical byte serialization, so it is stable
/// across processes and runs (unlike [`std::hash::RandomState`]): two
/// invocations that expand to the same stream on the same geometry always
/// collide onto the same key, however their flags were spelled or ordered,
/// while any difference in geometry, name or stream content feeds different
/// bytes.
///
/// # Examples
///
/// ```
/// use mbist_march::{canonical_trace_key, expand, library};
/// use mbist_mem::MemGeometry;
///
/// let g = MemGeometry::word_oriented(64, 8);
/// let steps = expand(&library::march_c(), &g);
/// let k1 = canonical_trace_key("march-c", &g, &steps);
/// let k2 = canonical_trace_key("march-c", &g, &steps);
/// assert_eq!(k1, k2);
/// ```
#[must_use]
pub fn canonical_trace_key(
    test_name: &str,
    geometry: &MemGeometry,
    steps: &[TestStep],
) -> u64 {
    let mut h = Fnv1a::new();
    h.bytes(test_name.as_bytes());
    h.byte(0xff); // unambiguous name terminator (0xff never appears in UTF-8)
    h.u64(geometry.words());
    h.byte(geometry.width());
    h.byte(geometry.ports());
    for step in steps {
        match step {
            TestStep::Pause { ns } => {
                h.byte(0x01);
                h.u64(ns.to_bits());
            }
            TestStep::Bus(cycle) => {
                h.byte(0x02);
                h.byte(cycle.port.0);
                h.u64(cycle.addr);
                match cycle.op {
                    Operation::Write(data) => {
                        h.byte(0x03);
                        h.byte(data.width());
                        h.u64(data.value());
                    }
                    Operation::Read => h.byte(0x04),
                }
                match cycle.expected {
                    None => h.byte(0x05),
                    Some(e) => {
                        h.byte(0x06);
                        h.byte(e.width());
                        h.u64(e.value());
                    }
                }
            }
        }
    }
    h.finish()
}

/// 64-bit FNV-1a over a caller-framed byte stream.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The golden value the port's sense amplifier held before a read — the
/// previous read on the same port, at any address.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrevRead {
    /// Step index of that previous read.
    pub(crate) step: u32,
    /// Its golden (fault-free) observed value.
    pub(crate) golden: u64,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum TraceOpKind {
    Write(u64),
    Read {
        /// Expected value of a checked read (`None` = unchecked).
        expected: Option<u64>,
        /// The previous read on the same port (`None` = sense latch still
        /// invalid), resolving stuck-open observations.
        prev_read: Option<PrevRead>,
    },
}

/// One bus access to a given word, with everything a sparse replay needs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TraceOp {
    /// Index into the step stream (global replay order).
    pub(crate) step: u32,
    pub(crate) port: PortId,
    /// Simulated time *after* the access, exactly as
    /// [`MemoryArray::now_ns`] would report it (cycle time per access plus
    /// all preceding pauses).
    pub(crate) now_ns: f64,
    pub(crate) kind: TraceOpKind,
}

/// An expanded step stream compiled for cheap per-fault replay.
///
/// Immutable after construction, so one trace can be shared by reference
/// across fan-out worker threads; compiling costs one fault-free replay of
/// the stream and is amortized over every fault simulated against it.
///
/// # Examples
///
/// ```
/// use mbist_march::{expand, library, CompiledTrace};
/// use mbist_mem::{CellId, FaultKind, MemGeometry};
///
/// let g = MemGeometry::bit_oriented(16);
/// let trace = CompiledTrace::from_steps(g, &expand(&library::march_c(), &g));
/// let tf = FaultKind::Transition { cell: CellId::bit_oriented(7), rising: true };
/// assert!(trace.detect(tf));
/// ```
#[derive(Debug, Clone)]
pub struct CompiledTrace {
    geometry: MemGeometry,
    steps: Vec<TestStep>,
    per_word: Vec<Vec<TraceOp>>,
    /// Checked reads that fail even fault-free, as `(step, addr)`. Usually
    /// empty; a fault-free-dirty stream detects every fault trivially.
    golden_miscompares: Vec<(u32, u64)>,
}

impl CompiledTrace {
    /// Compiles a step stream by running it once against a fault-free
    /// array, recording per-word op lists, access timestamps and golden
    /// read values.
    ///
    /// # Panics
    ///
    /// Panics if the stream is invalid for the geometry (out-of-range
    /// address/port, data or expectation width mismatch) — the same
    /// conditions a direct [`MemoryArray`] replay would reject.
    #[must_use]
    pub fn from_steps(geometry: MemGeometry, steps: &[TestStep]) -> Self {
        let words = usize::try_from(geometry.words()).expect("words fit usize");
        let mut per_word: Vec<Vec<TraceOp>> = vec![Vec::new(); words];
        let mut golden_miscompares = Vec::new();
        let mut mem = MemoryArray::new(geometry);
        let mut last_read: Vec<Option<PrevRead>> =
            vec![None; usize::from(geometry.ports())];
        for (i, step) in steps.iter().enumerate() {
            let step_no = u32::try_from(i).expect("step count fits u32");
            match step {
                TestStep::Pause { ns } => mem.pause(*ns),
                TestStep::Bus(cycle) => match cycle.op {
                    Operation::Write(data) => {
                        mem.write(cycle.port, cycle.addr, data);
                        per_word[usize::try_from(cycle.addr).expect("addr fits usize")]
                            .push(TraceOp {
                                step: step_no,
                                port: cycle.port,
                                now_ns: mem.now_ns(),
                                kind: TraceOpKind::Write(data.value()),
                            });
                    }
                    Operation::Read => {
                        let observed = mem.read(cycle.port, cycle.addr);
                        let expected = cycle.expected.map(|e| {
                            assert_eq!(
                                e.width(),
                                geometry.width(),
                                "checked-read expectation width mismatch"
                            );
                            e.value()
                        });
                        if cycle.expected.is_some_and(|e| e != observed) {
                            golden_miscompares.push((step_no, cycle.addr));
                        }
                        let port = usize::from(cycle.port.0);
                        per_word[usize::try_from(cycle.addr).expect("addr fits usize")]
                            .push(TraceOp {
                                step: step_no,
                                port: cycle.port,
                                now_ns: mem.now_ns(),
                                kind: TraceOpKind::Read {
                                    expected,
                                    prev_read: last_read[port],
                                },
                            });
                        last_read[port] =
                            Some(PrevRead { step: step_no, golden: observed.value() });
                    }
                },
            }
        }
        Self { geometry, steps: steps.to_vec(), per_word, golden_miscompares }
    }

    /// Compiles the expanded stream of `test` on `geometry` — the common
    /// entry point for coverage and synthesis loops.
    #[must_use]
    pub fn compile(
        test: &MarchTest,
        geometry: &MemGeometry,
        options: &ExpandOptions,
    ) -> Self {
        Self::from_steps(*geometry, &expand_with(test, geometry, options))
    }

    /// The geometry the trace was compiled for.
    #[must_use]
    pub fn geometry(&self) -> MemGeometry {
        self.geometry
    }

    /// The step stream the trace was compiled from (the full-replay
    /// fallback input).
    #[must_use]
    pub fn steps(&self) -> &[TestStep] {
        &self.steps
    }

    /// Whether the stream detects `fault`: sliced replay when the fault is
    /// address-local, full replay on a fresh array otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the fault does not fit the trace geometry.
    #[must_use]
    pub fn detect(&self, fault: FaultKind) -> bool {
        match self.detect_sliced(fault) {
            Some(flag) => flag,
            None => {
                let mut scratch = MemoryArray::new(self.geometry);
                self.detect_full(fault, &mut scratch)
            }
        }
    }

    /// Sliced differential detection, or `None` when the fault has no
    /// address-local support set and only a full replay is sound.
    ///
    /// # Panics
    ///
    /// Panics if the fault does not fit the trace geometry.
    #[must_use]
    pub fn detect_sliced(&self, fault: FaultKind) -> Option<bool> {
        assert!(
            fault.is_valid_for(&self.geometry),
            "fault {fault} does not fit trace geometry {}",
            self.geometry
        );
        sliced::detect_sliced(self, fault)
    }

    /// Full-replay detection on a caller-provided scratch array (reset,
    /// re-injected, replayed with early exit) — the fallback oracle the
    /// sliced engine is verified against.
    ///
    /// # Panics
    ///
    /// Panics if the scratch geometry differs from the trace geometry, or
    /// the fault does not fit it.
    #[must_use]
    pub fn detect_full(&self, fault: FaultKind, scratch: &mut MemoryArray) -> bool {
        assert_eq!(scratch.geometry(), self.geometry, "scratch geometry mismatch");
        scratch.reset();
        scratch.inject(fault).expect("fault must fit the trace geometry");
        run_steps_detect(scratch, &self.steps)
    }

    /// Approximate resident size of the trace in bytes — steps, per-word op
    /// lists and golden-miscompare records — used by byte-capped caches to
    /// account for what they hold. An estimate (allocator slack and `Vec`
    /// growth headroom are not visible), but proportional to the real
    /// footprint and monotone in stream length.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let ops: usize = self.per_word.iter().map(Vec::len).sum();
        std::mem::size_of::<Self>()
            + self.steps.len() * std::mem::size_of::<TestStep>()
            + self.per_word.len() * std::mem::size_of::<Vec<TraceOp>>()
            + ops * std::mem::size_of::<TraceOp>()
            + self.golden_miscompares.len() * std::mem::size_of::<(u32, u64)>()
    }

    /// Every access to `word`, in stream order.
    pub(crate) fn ops_for_word(&self, word: u64) -> &[TraceOp] {
        &self.per_word[usize::try_from(word).expect("addr fits usize")]
    }

    pub(crate) fn golden_miscompares(&self) -> &[(u32, u64)] {
        &self.golden_miscompares
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::expand;
    use crate::library;
    use mbist_mem::{BusCycle, CellId, DEFAULT_CYCLE_NS};
    use mbist_rtl::Bits;

    #[test]
    fn trace_records_every_bus_cycle_once() {
        let g = MemGeometry::bit_oriented(8);
        let steps = expand(&library::march_c(), &g);
        let trace = CompiledTrace::from_steps(g, &steps);
        let bus: usize = steps.iter().filter(|s| matches!(s, TestStep::Bus(_))).count();
        let recorded: usize = (0..8).map(|w| trace.ops_for_word(w).len()).sum();
        assert_eq!(bus, recorded);
        assert!(trace.golden_miscompares().is_empty(), "expanded streams are clean");
    }

    #[test]
    fn timestamps_account_for_pauses() {
        let g = MemGeometry::bit_oriented(2);
        let w = |addr| {
            TestStep::Bus(BusCycle {
                port: PortId(0),
                addr,
                op: Operation::Write(Bits::bit1(true)),
                expected: None,
            })
        };
        let steps = [w(0), TestStep::Pause { ns: 1_000.0 }, w(1), w(0)];
        let trace = CompiledTrace::from_steps(g, &steps);
        let ops0 = trace.ops_for_word(0);
        assert_eq!(ops0.len(), 2);
        assert_eq!(ops0[0].now_ns, DEFAULT_CYCLE_NS);
        assert_eq!(ops0[1].now_ns, 1_000.0 + 3.0 * DEFAULT_CYCLE_NS);
    }

    #[test]
    fn golden_miscompares_capture_dirty_streams() {
        let g = MemGeometry::bit_oriented(2);
        let steps = [TestStep::Bus(BusCycle {
            port: PortId(0),
            addr: 1,
            op: Operation::Read,
            expected: Some(Bits::bit1(true)), // memory powers up 0
        })];
        let trace = CompiledTrace::from_steps(g, &steps);
        assert_eq!(trace.golden_miscompares(), &[(0, 1)]);
        // A dirty stream "detects" everything, sliced or full.
        let f = FaultKind::StuckAt { cell: CellId::bit_oriented(0), value: false };
        assert!(trace.detect(f));
        assert_eq!(trace.detect_sliced(f), Some(true));
    }

    #[test]
    fn detect_full_reuses_scratch_without_state_leak() {
        let g = MemGeometry::bit_oriented(8);
        let trace = CompiledTrace::from_steps(g, &expand(&library::march_c_plus(), &g));
        let mut scratch = MemoryArray::new(g);
        let drf = FaultKind::Retention {
            cell: CellId::bit_oriented(3),
            decays_to: true,
            retention_ns: 50_000.0,
        };
        let saf = FaultKind::StuckAt { cell: CellId::bit_oriented(1), value: true };
        // Interleave faults so stale now_ns / sense state would be caught.
        let a = trace.detect_full(drf, &mut scratch);
        let b = trace.detect_full(saf, &mut scratch);
        let c = trace.detect_full(drf, &mut scratch);
        assert_eq!(a, c);
        assert!(a && b);
    }

    #[test]
    fn canonical_key_is_stable_and_input_sensitive() {
        let g = MemGeometry::word_oriented(64, 8);
        let steps = expand(&library::march_c(), &g);
        let k = canonical_trace_key("march-c", &g, &steps);
        assert_eq!(k, canonical_trace_key("march-c", &g, &steps), "deterministic");
        assert_ne!(k, canonical_trace_key("march-a", &g, &steps), "name feeds the key");
        let g2 = MemGeometry::new(64, 8, 2);
        assert_ne!(k, canonical_trace_key("march-c", &g2, &steps), "geometry feeds it");
        let mut shorter = steps.clone();
        shorter.pop();
        assert_ne!(k, canonical_trace_key("march-c", &g, &shorter), "stream feeds it");
    }

    #[test]
    fn canonical_keys_never_collide_across_library_and_geometries() {
        // Pairwise-distinct keys over the whole algorithm library × several
        // geometries: two different geometries must never collide.
        let mut seen = std::collections::HashMap::new();
        for g in [
            MemGeometry::bit_oriented(16),
            MemGeometry::bit_oriented(64),
            MemGeometry::word_oriented(16, 8),
            MemGeometry::new(16, 8, 2),
        ] {
            for t in library::all() {
                let steps = expand(&t, &g);
                let key = canonical_trace_key(t.name(), &g, &steps);
                if let Some(prev) = seen.insert(key, (t.name().to_string(), g)) {
                    panic!("key collision: {prev:?} vs ({}, {g})", t.name());
                }
            }
        }
    }

    #[test]
    fn approx_bytes_grows_with_the_stream() {
        let g = MemGeometry::bit_oriented(16);
        let small = CompiledTrace::from_steps(g, &expand(&library::mats(), &g));
        let big = CompiledTrace::from_steps(g, &expand(&library::march_c_plus_plus(), &g));
        assert!(small.approx_bytes() > 0);
        assert!(big.approx_bytes() > small.approx_bytes());
    }

    #[test]
    #[should_panic(expected = "does not fit trace geometry")]
    fn out_of_range_fault_panics() {
        let g = MemGeometry::bit_oriented(4);
        let trace = CompiledTrace::from_steps(g, &expand(&library::mats(), &g));
        let _ =
            trace.detect(FaultKind::StuckAt { cell: CellId::bit_oriented(9), value: true });
    }
}
