//! Compiled step traces for sliced differential fault simulation.
//!
//! [`CompiledTrace`] compiles an expanded step stream once per
//! `(test, geometry)`: one fault-free golden replay produces per-address op
//! lists with precomputed access timestamps (pause-adjusted simulated time)
//! and golden read values. A single address-local fault is then simulated
//! by replaying only the ops that touch its support set
//! ([`FaultKind::support`]) against O(|support|) sparse state — see
//! [`crate::sliced`] — instead of paying an O(words) array allocation and
//! an O(stream) replay per fault.
//!
//! The differential argument: a single fault with support set S can only
//! make the cells in S deviate from the golden trace (every fault effect
//! reads and writes cells of S only), so every access outside S behaves
//! exactly as the golden replay, and detection is decided by the golden
//! miscompares (outside S) plus a sparse replay of the accesses to S.
//! Address-decoder faults, whose support is the two remapped words rather
//! than a cell neighborhood, replay those two words' merged op streams
//! ([`FaultKind::decoder_words`]); only faults with neither a support set
//! nor a decoder word pair fall back to the full replay, which stays
//! available as the differential-testing oracle.

use std::collections::HashMap;

use mbist_mem::{
    BusCycle, FaultKind, MemGeometry, MemoryArray, Operation, PortId, TestStep,
    DEFAULT_CYCLE_NS,
};

use mbist_rtl::Bits;

use crate::element::{MarchElement, MarchItem};
use crate::expand::{expand_into, expand_with, ExpandOptions};
use crate::runner::run_steps_detect;
use crate::sliced;
use crate::test::MarchTest;

/// Which fault-simulation engine a detection loop uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimEngine {
    /// Full replay: one (scratch) array per fault, whole stream, early exit
    /// at the first miscompare.
    Full,
    /// Sliced differential replay over the shared compiled trace, falling
    /// back to full replay for faults without an address-local support set.
    /// Bit-for-bit equivalent to [`SimEngine::Full`].
    #[default]
    Sliced,
    /// Lane-packed bit-parallel replay: up to 256 congruent address-local
    /// faults are batched into the bit lanes of `[u64; 4]` state vectors and
    /// the trace is replayed **once per batch** with branch-free lane
    /// updates (see [`crate::packed`]). Every address-local class is
    /// vectorized — including stuck-open sense latches, retention decay
    /// (precomputed deadlines) and fixed-shape NPSF — and congruent faults
    /// are batched across data backgrounds and ports; only decoder faults
    /// fall back per fault to the sliced/full paths. Bit-for-bit equivalent
    /// to [`SimEngine::Full`].
    Packed,
}

/// Stable canonical hash of a `(test name, expanded step stream, geometry)`
/// triple — the cache identity of a [`CompiledTrace`].
///
/// The hash is FNV-1a over a canonical byte serialization, so it is stable
/// across processes and runs (unlike [`std::hash::RandomState`]): two
/// invocations that expand to the same stream on the same geometry always
/// collide onto the same key, however their flags were spelled or ordered,
/// while any difference in geometry, name or stream content feeds different
/// bytes.
///
/// # Examples
///
/// ```
/// use mbist_march::{canonical_trace_key, expand, library};
/// use mbist_mem::MemGeometry;
///
/// let g = MemGeometry::word_oriented(64, 8);
/// let steps = expand(&library::march_c(), &g);
/// let k1 = canonical_trace_key("march-c", &g, &steps);
/// let k2 = canonical_trace_key("march-c", &g, &steps);
/// assert_eq!(k1, k2);
/// ```
#[must_use]
pub fn canonical_trace_key(
    test_name: &str,
    geometry: &MemGeometry,
    steps: &[TestStep],
) -> u64 {
    let mut h = Fnv1a::new();
    h.bytes(test_name.as_bytes());
    h.byte(0xff); // unambiguous name terminator (0xff never appears in UTF-8)
    h.u64(geometry.words());
    h.byte(geometry.width());
    h.byte(geometry.ports());
    for step in steps {
        match step {
            TestStep::Pause { ns } => {
                h.byte(0x01);
                h.u64(ns.to_bits());
            }
            TestStep::Bus(cycle) => {
                h.byte(0x02);
                h.byte(cycle.port.0);
                h.u64(cycle.addr);
                match cycle.op {
                    Operation::Write(data) => {
                        h.byte(0x03);
                        h.byte(data.width());
                        h.u64(data.value());
                    }
                    Operation::Read => h.byte(0x04),
                }
                match cycle.expected {
                    None => h.byte(0x05),
                    Some(e) => {
                        h.byte(0x06);
                        h.byte(e.width());
                        h.u64(e.value());
                    }
                }
            }
        }
    }
    h.finish()
}

/// [`canonical_trace_key`] for a `(test, geometry)` pair in one call: the
/// test is expanded with the geometry's default [`ExpandOptions`] and the
/// resulting stream is hashed. This is the routing identity a sharded
/// service front end uses to place a request on the shard that owns (or
/// will own) the compiled trace, without compiling the trace itself.
#[must_use]
pub fn canonical_request_key(test: &MarchTest, geometry: &MemGeometry) -> u64 {
    let steps = expand_with(test, geometry, &ExpandOptions::for_geometry(geometry));
    canonical_trace_key(test.name(), geometry, &steps)
}

/// 64-bit FNV-1a over a caller-framed byte stream.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// [`Fnv1a`] behind the std `Hasher`/`BuildHasher` traits, for the packed
/// engine's hot routing maps where SipHash's per-lookup cost would eat the
/// batching win. Hash quality only affects speed, never results —
/// congruence always comes from full key equality.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FnvBuild;

#[derive(Debug)]
pub(crate) struct FnvHasher(u64);

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(Fnv1a::OFFSET)
    }
}

impl FnvHasher {
    fn mix(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(Fnv1a::PRIME);
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }

    // Whole-value mixing: one multiply per integer write instead of one
    // per byte (the keys these maps see are a handful of small integers).
    fn write_u8(&mut self, i: u8) {
        self.mix(u64::from(i));
    }

    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// Folds one op's content projection — the `(kind, data, expected,
/// golden)` tuple, exactly what `packed::build_program` reads — into a
/// running FNV word-content hash. Tags make the framing unambiguous.
#[inline]
fn mix_op_content(h: &mut u64, kind: &TraceOpKind) {
    let mut mix = |v: u64| *h = (*h ^ v).wrapping_mul(Fnv1a::PRIME);
    match *kind {
        TraceOpKind::Write(data) => {
            mix(0);
            mix(data);
        }
        TraceOpKind::Read { expected: None, golden, .. } => {
            mix(1);
            mix(golden);
        }
        TraceOpKind::Read { expected: Some(e), golden, .. } => {
            mix(2);
            mix(e);
            mix(golden);
        }
    }
}

/// Whether two op lists carry the identical content projection (the exact
/// congruence the word-class ids certify — timestamps, ports and sense
/// history are deliberately not part of it).
fn projection_eq(a: &[TraceOp], b: &[TraceOp]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x.kind, y.kind) {
            (TraceOpKind::Write(da), TraceOpKind::Write(db)) => da == db,
            (
                TraceOpKind::Read { expected: ea, golden: ga, .. },
                TraceOpKind::Read { expected: eb, golden: gb, .. },
            ) => ea == eb && ga == gb,
            _ => false,
        })
}

/// Interns each word's op-list content into a dense class id (ids in
/// first-occurrence order). Two words with the same id provably yield
/// identical packed access programs for any bit position: the incremental
/// content hashes only bucket candidates — congruence always comes from
/// the full [`projection_eq`] comparison, so hash quality can never
/// change a class assignment.
fn intern_word_classes(per_word: &[Vec<TraceOp>], hashes: &[u64]) -> Vec<u32> {
    let mut buckets: HashMap<u64, Vec<(u32, usize)>, FnvBuild> =
        HashMap::with_hasher(FnvBuild);
    let mut classes = Vec::with_capacity(per_word.len());
    let mut next = 0u32;
    for (w, ops) in per_word.iter().enumerate() {
        let bucket = buckets.entry(hashes[w]).or_default();
        let found = bucket
            .iter()
            .find_map(|&(id, rep)| projection_eq(ops, &per_word[rep]).then_some(id));
        let id = match found {
            Some(id) => id,
            None => {
                let id = next;
                next = next.checked_add(1).expect("class count fits u32");
                bucket.push((id, w));
                id
            }
        };
        classes.push(id);
    }
    classes
}

/// Checks the address-uniform-march shape (see the
/// [`CompiledTrace::uniform_interleave`] field doc): the op stream parses
/// into segments that each visit every word exactly once in strictly
/// monotone address order with one uniform op count. A visit shared
/// between a segment's last word and the next segment's first word (a ⇑
/// element followed by a ⇓ element both touching the top address) is
/// split by op count, which the parse threads through as `carry`.
///
/// Returns `false` for any stream that doesn't parse — the packed engine
/// then builds inter-word programs per pair instead of routing by address
/// order, which is always exact, just slower. Geometries under three
/// words also decline: they hold at most one inter-word pair, so per-pair
/// memoization already covers them (and the two-word parse would need
/// lookahead to split shared boundary visits).
fn certify_uniform_interleave(words: u64, steps: &[TestStep]) -> bool {
    certify_uniform_interleave_with(words, steps, &mut Vec::new())
}

/// [`certify_uniform_interleave`] into a caller-owned visit buffer, so a
/// hot recompile loop ([`TraceArena`]) certifies without allocating.
fn certify_uniform_interleave_with(
    words: u64,
    steps: &[TestStep],
    visits: &mut Vec<(u64, u32)>,
) -> bool {
    let n = usize::try_from(words).expect("words fit usize");
    if n < 3 {
        return false;
    }
    // Collapse the op stream to word visits: consecutive ops on one
    // address (pauses don't access, so they split nothing).
    visits.clear();
    for step in steps {
        if let TestStep::Bus(cycle) = step {
            match visits.last_mut() {
                Some((addr, count)) if *addr == cycle.addr => *count += 1,
                _ => visits.push((cycle.addr, 1)),
            }
        }
    }
    let mut i = 0;
    let mut carry = 0u32;
    while i < visits.len() {
        if i + n > visits.len() {
            return false;
        }
        // The second visit is interior to the segment (n ≥ 3), so its
        // count is the segment's uniform op count.
        let k = visits[i + 1].1;
        if k == 0 || visits[i].1 - carry != k {
            return false;
        }
        let ascending = visits[i].0 < visits[i + 1].0;
        let start = if ascending { 0 } else { words - 1 };
        for (j, &(addr, count)) in visits[i..i + n].iter().enumerate() {
            let j = u64::try_from(j).expect("segment index fits u64");
            let expect = if ascending { start + j } else { start - j };
            if addr != expect {
                return false;
            }
            // Interior visits must carry exactly k ops; the boundary
            // visits are checked against `carry` outside this loop.
            if j != 0 && j != words - 1 && count != k {
                return false;
            }
        }
        let last = visits[i + n - 1].1;
        if last == k {
            carry = 0;
            i += n;
        } else if last > k {
            // The tail of this visit opens the next segment at the same
            // address.
            carry = k;
            i += n - 1;
        } else {
            return false;
        }
    }
    carry == 0
}

/// The golden value the port's sense amplifier held before a read — the
/// previous read on the same port, at any address.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrevRead {
    /// Step index of that previous read.
    pub(crate) step: u32,
    /// Its golden (fault-free) observed value.
    pub(crate) golden: u64,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum TraceOpKind {
    Write(u64),
    Read {
        /// Expected value of a checked read (`None` = unchecked).
        expected: Option<u64>,
        /// The golden (fault-free) observed value — what the packed engine
        /// diffs lane states against on checked reads.
        golden: u64,
        /// The previous read on the same port (`None` = sense latch still
        /// invalid), resolving stuck-open observations.
        prev_read: Option<PrevRead>,
    },
}

/// One bus access to a given word, with everything a sparse replay needs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TraceOp {
    /// Index into the step stream (global replay order).
    pub(crate) step: u32,
    pub(crate) port: PortId,
    /// Simulated time *after* the access, exactly as
    /// [`MemoryArray::now_ns`] would report it (cycle time per access plus
    /// all preceding pauses).
    pub(crate) now_ns: f64,
    pub(crate) kind: TraceOpKind,
}

/// An expanded step stream compiled for cheap per-fault replay.
///
/// Immutable after construction, so one trace can be shared by reference
/// across fan-out worker threads; compiling costs one fault-free replay of
/// the stream and is amortized over every fault simulated against it.
///
/// # Examples
///
/// ```
/// use mbist_march::{expand, library, CompiledTrace};
/// use mbist_mem::{CellId, FaultKind, MemGeometry};
///
/// let g = MemGeometry::bit_oriented(16);
/// let trace = CompiledTrace::from_steps(g, &expand(&library::march_c(), &g));
/// let tf = FaultKind::Transition { cell: CellId::bit_oriented(7), rising: true };
/// assert!(trace.detect(tf));
/// ```
#[derive(Debug, Clone)]
pub struct CompiledTrace {
    geometry: MemGeometry,
    steps: Vec<TestStep>,
    per_word: Vec<Vec<TraceOp>>,
    /// Checked reads that fail even fault-free, as `(step, addr)`. Usually
    /// empty; a fault-free-dirty stream detects every fault trivially.
    golden_miscompares: Vec<(u32, u64)>,
    /// Interned content class per word: two words share an id iff their op
    /// lists carry identical `(kind, data, expected, golden)` sequences, so
    /// faults on same-class words provably share a packed access program
    /// (see [`crate::packed`]). Computed once at compile time — the packed
    /// engine's batch routing stays O(1) per fault.
    word_class: Vec<u32>,
    /// Certificate that the stream is an address-uniform march: every
    /// segment visits every word exactly once, in strictly monotone address
    /// order, with one op count per segment. Under this shape the merged
    /// op order of any word pair depends only on which address is smaller,
    /// which lets the packed engine route inter-word coupling faults
    /// without rebuilding their merged program.
    uniform_interleave: bool,
}

impl CompiledTrace {
    /// Compiles a step stream by running it once against a fault-free
    /// array, recording per-word op lists, access timestamps and golden
    /// read values.
    ///
    /// # Panics
    ///
    /// Panics if the stream is invalid for the geometry (out-of-range
    /// address/port, data or expectation width mismatch) — the same
    /// conditions a direct [`MemoryArray`] replay would reject.
    #[must_use]
    pub fn from_steps(geometry: MemGeometry, steps: &[TestStep]) -> Self {
        Self::from_steps_owned(geometry, steps.to_vec())
    }

    /// [`Self::from_steps`] taking ownership of the stream — spares the
    /// defensive copy when the caller's expansion is already a `Vec` it no
    /// longer needs (the hot path for whole-run coverage evaluation).
    #[must_use]
    pub fn from_steps_owned(geometry: MemGeometry, steps: Vec<TestStep>) -> Self {
        let words = usize::try_from(geometry.words()).expect("words fit usize");
        // Pre-size each word's op list: one counting pass over the stream
        // beats re-allocating a thousand small vectors mid-replay.
        let mut counts = vec![0usize; words];
        for step in &steps {
            if let TestStep::Bus(cycle) = step {
                counts[usize::try_from(cycle.addr).expect("addr fits usize")] += 1;
            }
        }
        let mut per_word: Vec<Vec<TraceOp>> =
            counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        let mut word_hash = vec![Fnv1a::OFFSET; words];
        let mut golden_miscompares = Vec::new();
        let mut mem = MemoryArray::new(geometry);
        let mut last_read: Vec<Option<PrevRead>> =
            vec![None; usize::from(geometry.ports())];
        for (i, step) in steps.iter().enumerate() {
            let step_no = u32::try_from(i).expect("step count fits u32");
            match step {
                TestStep::Pause { ns } => mem.pause(*ns),
                TestStep::Bus(cycle) => match cycle.op {
                    Operation::Write(data) => {
                        mem.write(cycle.port, cycle.addr, data);
                        let addr = usize::try_from(cycle.addr).expect("addr fits usize");
                        let kind = TraceOpKind::Write(data.value());
                        mix_op_content(&mut word_hash[addr], &kind);
                        per_word[addr].push(TraceOp {
                            step: step_no,
                            port: cycle.port,
                            now_ns: mem.now_ns(),
                            kind,
                        });
                    }
                    Operation::Read => {
                        let observed = mem.read(cycle.port, cycle.addr);
                        let expected = cycle.expected.map(|e| {
                            assert_eq!(
                                e.width(),
                                geometry.width(),
                                "checked-read expectation width mismatch"
                            );
                            e.value()
                        });
                        if cycle.expected.is_some_and(|e| e != observed) {
                            golden_miscompares.push((step_no, cycle.addr));
                        }
                        let port = usize::from(cycle.port.0);
                        let addr = usize::try_from(cycle.addr).expect("addr fits usize");
                        let kind = TraceOpKind::Read {
                            expected,
                            golden: observed.value(),
                            prev_read: last_read[port],
                        };
                        mix_op_content(&mut word_hash[addr], &kind);
                        per_word[addr].push(TraceOp {
                            step: step_no,
                            port: cycle.port,
                            now_ns: mem.now_ns(),
                            kind,
                        });
                        last_read[port] =
                            Some(PrevRead { step: step_no, golden: observed.value() });
                    }
                },
            }
        }
        let word_class = intern_word_classes(&per_word, &word_hash);
        let uniform_interleave = certify_uniform_interleave(geometry.words(), &steps);
        Self {
            geometry,
            steps,
            per_word,
            golden_miscompares,
            word_class,
            uniform_interleave,
        }
    }

    /// Compiles the expanded stream of `test` on `geometry` — the common
    /// entry point for coverage and synthesis loops.
    #[must_use]
    pub fn compile(
        test: &MarchTest,
        geometry: &MemGeometry,
        options: &ExpandOptions,
    ) -> Self {
        Self::from_steps_owned(*geometry, expand_with(test, geometry, options))
    }

    /// The geometry the trace was compiled for.
    #[must_use]
    pub fn geometry(&self) -> MemGeometry {
        self.geometry
    }

    /// The step stream the trace was compiled from (the full-replay
    /// fallback input).
    #[must_use]
    pub fn steps(&self) -> &[TestStep] {
        &self.steps
    }

    /// Whether the stream detects `fault`: sliced replay when the fault is
    /// address-local, full replay on a fresh array otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the fault does not fit the trace geometry.
    #[must_use]
    pub fn detect(&self, fault: FaultKind) -> bool {
        match self.detect_sliced(fault) {
            Some(flag) => flag,
            None => {
                let mut scratch = MemoryArray::new(self.geometry);
                self.detect_full(fault, &mut scratch)
            }
        }
    }

    /// Sliced differential detection, or `None` when the fault has no
    /// address-local support set and only a full replay is sound.
    ///
    /// # Panics
    ///
    /// Panics if the fault does not fit the trace geometry.
    #[must_use]
    pub fn detect_sliced(&self, fault: FaultKind) -> Option<bool> {
        assert!(
            fault.is_valid_for(&self.geometry),
            "fault {fault} does not fit trace geometry {}",
            self.geometry
        );
        sliced::detect_sliced(self, fault)
    }

    /// Simulates every fault in `universe` against this trace through the
    /// selected engine, fanning out across `jobs` workers, and returns one
    /// detection flag per fault in universe order.
    ///
    /// Worker count and engine only change wall-clock time, never the
    /// flags — [`SimEngine::Packed`] batches compatible faults into `u64`
    /// lanes and replays the trace once per batch, while non-vectorizable
    /// faults transparently take the sliced/full paths.
    ///
    /// # Panics
    ///
    /// Panics if a fault in `universe` does not fit the trace geometry.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbist_march::{expand, library, CompiledTrace, SimEngine};
    /// use mbist_mem::{class_universe, FaultClass, MemGeometry, UniverseSpec};
    ///
    /// let g = MemGeometry::bit_oriented(16);
    /// let trace = CompiledTrace::from_steps(g, &expand(&library::march_c(), &g));
    /// let universe = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
    /// let flags = trace.detect_universe(&universe, Some(1), SimEngine::Packed);
    /// assert!(flags.iter().all(|&d| d), "March C detects every SAF");
    /// ```
    #[must_use]
    pub fn detect_universe(
        &self,
        universe: &[FaultKind],
        jobs: Option<usize>,
        engine: SimEngine,
    ) -> Vec<bool> {
        for fault in universe {
            assert!(
                fault.is_valid_for(&self.geometry),
                "fault {fault} does not fit trace geometry {}",
                self.geometry
            );
        }
        crate::fanout::detect_universe_trace(
            self,
            universe,
            jobs,
            engine,
            &crate::cancel::CancelToken::none(),
        )
    }

    /// Full-replay detection on a caller-provided scratch array (reset,
    /// re-injected, replayed with early exit) — the fallback oracle the
    /// sliced engine is verified against.
    ///
    /// # Panics
    ///
    /// Panics if the scratch geometry differs from the trace geometry, or
    /// the fault does not fit it.
    #[must_use]
    pub fn detect_full(&self, fault: FaultKind, scratch: &mut MemoryArray) -> bool {
        assert_eq!(scratch.geometry(), self.geometry, "scratch geometry mismatch");
        scratch.reset();
        scratch.inject(fault).expect("fault must fit the trace geometry");
        run_steps_detect(scratch, &self.steps)
    }

    /// Approximate resident size of the trace in bytes — steps, per-word op
    /// lists and golden-miscompare records — used by byte-capped caches to
    /// account for what they hold. An estimate (allocator slack and `Vec`
    /// growth headroom are not visible), but proportional to the real
    /// footprint and monotone in stream length.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let ops: usize = self.per_word.iter().map(Vec::len).sum();
        std::mem::size_of::<Self>()
            + self.steps.len() * std::mem::size_of::<TestStep>()
            + self.per_word.len() * std::mem::size_of::<Vec<TraceOp>>()
            + ops * std::mem::size_of::<TraceOp>()
            + self.golden_miscompares.len() * std::mem::size_of::<(u32, u64)>()
            + self.word_class.len() * std::mem::size_of::<u32>()
    }

    /// Every access to `word`, in stream order.
    pub(crate) fn ops_for_word(&self, word: u64) -> &[TraceOp] {
        &self.per_word[usize::try_from(word).expect("addr fits usize")]
    }

    /// The interned content class of `word` (see the field doc).
    pub(crate) fn word_class(&self, word: u64) -> u32 {
        self.word_class[usize::try_from(word).expect("addr fits usize")]
    }

    /// Counts how many faults of `universe` the trace detects, with an
    /// optional early-exit cap: once `stop_after` detections are seen the
    /// scan quits and returns exactly `stop_after`. A lexicographic
    /// fitness comparing `min(detected, target)` only needs the capped
    /// value, so a synthesis loop saves the tail of the universe for every
    /// candidate that already met its target.
    ///
    /// The result is engine- and chunking-independent: with no cap (or an
    /// unreached cap) the exact total is returned; a reached cap returns
    /// the cap itself, never "cap plus however many the last chunk held".
    ///
    /// # Panics
    ///
    /// Panics if a fault in `universe` does not fit the trace geometry.
    #[must_use]
    pub fn count_detected(
        &self,
        universe: &[FaultKind],
        engine: SimEngine,
        stop_after: Option<usize>,
    ) -> usize {
        let mut scratch = crate::fanout::WorkerScratch::default();
        self.count_detected_with(universe, engine, stop_after, &mut scratch)
    }

    /// [`Self::count_detected`] with a caller-owned scratch, so a scoring
    /// loop keeps one simulation scratch hot instead of reallocating per
    /// candidate.
    pub(crate) fn count_detected_with(
        &self,
        universe: &[FaultKind],
        engine: SimEngine,
        stop_after: Option<usize>,
        scratch: &mut crate::fanout::WorkerScratch,
    ) -> usize {
        for fault in universe {
            assert!(
                fault.is_valid_for(&self.geometry),
                "fault {fault} does not fit trace geometry {}",
                self.geometry
            );
        }
        let stop = stop_after.unwrap_or(usize::MAX);
        if stop == 0 {
            return 0;
        }
        let mut count = 0usize;
        match engine {
            SimEngine::Packed => {
                // Chunk granularity trades batch fullness (big chunks keep
                // the 256 lanes packed) against cap responsiveness (small
                // chunks exit sooner once the cap is reached).
                const CAPPED_PACKED_CHUNK: usize = 1024;
                for chunk in universe.chunks(CAPPED_PACKED_CHUNK) {
                    let flags = crate::packed::detect_chunk(
                        self,
                        chunk,
                        scratch,
                        &crate::cancel::CancelToken::none(),
                    );
                    count += flags.iter().filter(|&&f| f).count();
                    if count >= stop {
                        return stop;
                    }
                }
            }
            _ => {
                for &fault in universe {
                    if crate::fanout::detect_one(self, fault, engine, scratch) {
                        count += 1;
                        if count >= stop {
                            return stop;
                        }
                    }
                }
            }
        }
        count
    }

    /// Whether the address-uniform-march certificate holds (see the field
    /// doc).
    pub(crate) fn uniform_interleave(&self) -> bool {
        self.uniform_interleave
    }

    /// Whether every word shares one content class (class ids are dense in
    /// first-occurrence order, so "all zero" means "all identical") — with
    /// [`Self::uniform_interleave`] and clean golden replay, the signature
    /// under which the packed planner's precomputed routing is sound.
    pub(crate) fn monoclass(&self) -> bool {
        self.word_class.iter().all(|&c| c == 0)
    }

    pub(crate) fn golden_miscompares(&self) -> &[(u32, u64)] {
        &self.golden_miscompares
    }
}

/// Replay state snapshot at an element boundary: everything a resumed
/// compile needs to continue as if it had replayed the prefix itself.
#[derive(Default)]
struct Checkpoint {
    /// Steps compiled so far (prefix length in the step stream).
    steps: u32,
    /// Simulated time after the prefix.
    now_ns: f64,
    /// Golden miscompares recorded so far (prefix length).
    miscompares: u32,
    /// Fault-free word values after the prefix.
    values: Vec<u64>,
    /// Last read per port after the prefix.
    last_read: Vec<Option<PrevRead>>,
    /// Incremental word-content hashes after the prefix.
    word_hash: Vec<u64>,
}

/// Reusable compilation arena for hot candidate-scoring loops.
///
/// One arena owns a [`CompiledTrace`] slot plus every scratch buffer a
/// compile needs, so recompiling a stream of similar candidates reaches an
/// allocation-free steady state: the step stream, per-word op lists,
/// content hashes and certificate scratch all keep their capacity across
/// compiles, and the fault-free golden replay runs against a raw value
/// array instead of a freshly allocated [`MemoryArray`].
///
/// On single-pass expansions (one port × one background, no pauses — the
/// shape every synthesis candidate has) the arena also snapshots replay
/// state at every element boundary: a candidate sharing an element prefix
/// with the previously compiled one resumes from the last shared
/// checkpoint instead of replaying from power-up. Shrink loops, whose
/// trial candidates share almost their whole prefix with the incumbent,
/// recompile in near-constant time.
///
/// The produced trace is bit-identical to [`CompiledTrace::compile`] on
/// the same inputs (pinned by tests); only the wall-clock cost changes.
#[derive(Default)]
pub struct TraceArena {
    trace: Option<CompiledTrace>,
    /// Live replay state (fault-free word values, simulated time, per-port
    /// sense history, per-word content hashes).
    values: Vec<u64>,
    now_ns: f64,
    last_read: Vec<Option<PrevRead>>,
    word_hash: Vec<u64>,
    /// One snapshot per compiled element of the previous candidate.
    checkpoints: Vec<Checkpoint>,
    /// Retired checkpoints, recycled to keep steady state allocation-free.
    spare: Vec<Checkpoint>,
    /// Elements of the previously compiled candidate (the prefix key).
    prev_elements: Vec<MarchElement>,
    /// Expansion config the checkpoints are valid under.
    prev_config: Option<(MemGeometry, ExpandOptions)>,
    /// Whether the checkpoint state describes `trace` (false after a
    /// slow-path compile or on a fresh arena).
    prev_valid: bool,
    /// Certificate scratch ([`certify_uniform_interleave_with`]).
    visits: Vec<(u64, u32)>,
    /// Per-element decoded ops — `(is_write, bus word, word value)` — so
    /// the replay loop resolves data backgrounds once per element instead
    /// of once per access.
    decoded: Vec<(bool, Bits, u64)>,
    /// Skip recording the flat step stream on the fast path (see
    /// [`Self::set_skip_steps`]).
    skip_steps: bool,
    /// When set, only these words' per-word op lists are populated on the
    /// fast path (see [`Self::set_word_support`]).
    word_support: Option<Vec<bool>>,
}

impl TraceArena {
    /// A fresh arena: buffers grow on first use and are reused after.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Skips recording the flat [`TestStep`] stream on the element fast
    /// path: compiled traces come back with empty `steps`, while the
    /// per-word op lists still carry the true global step indices. The
    /// packed engine detects purely from the per-word lists, so a
    /// packed-only scoring loop saves one push per access; the sliced and
    /// full engines replay the step stream and MUST NOT consume traces
    /// compiled this way. Toggling invalidates any cached prefix state.
    pub(crate) fn set_skip_steps(&mut self, skip: bool) {
        if self.skip_steps != skip {
            self.skip_steps = skip;
            self.prev_valid = false;
        }
    }

    /// Restricts fast-path compilation to populate per-word op lists only
    /// for words marked in `support` (untracked words come back with empty
    /// lists; golden replay — values, timing, miscompares — still covers
    /// the whole array exactly). The produced traces are valid solely for
    /// consumers that declared the support set, e.g.
    /// [`UniversePlan::count_detected`](crate::packed::UniversePlan) via
    /// its `support_mask`. `None` restores reference-complete compiles.
    /// Changing the support invalidates any cached prefix state.
    pub(crate) fn set_word_support(&mut self, support: Option<Vec<bool>>) {
        if self.word_support != support {
            self.word_support = support;
            self.prev_valid = false;
        }
    }

    /// Compiles `test` exactly like [`CompiledTrace::compile`], reusing
    /// the arena's buffers and any element-prefix overlap with the
    /// previous compile. The returned trace borrows the arena and is
    /// valid until the next `compile` call.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`CompiledTrace::compile`]
    /// (background width mismatch, port out of range, invalid stream).
    pub fn compile(
        &mut self,
        test: &MarchTest,
        geometry: &MemGeometry,
        options: &ExpandOptions,
    ) -> &CompiledTrace {
        let fast = options.ports.len() == 1
            && options.backgrounds.len() == 1
            && test.items().iter().all(|i| matches!(i, MarchItem::Element(_)));
        if fast {
            self.compile_elements(test, geometry, options);
        } else {
            self.compile_slow(test, geometry, options);
        }
        self.trace.as_ref().expect("compile populates the trace")
    }

    /// Cold path for multi-pass or pause-carrying tests: full recompile
    /// through the reference pipeline, reusing only the step buffer.
    fn compile_slow(
        &mut self,
        test: &MarchTest,
        geometry: &MemGeometry,
        options: &ExpandOptions,
    ) {
        let mut steps = self.trace.take().map(|t| t.steps).unwrap_or_default();
        expand_into(test, geometry, options, &mut steps);
        self.trace = Some(CompiledTrace::from_steps_owned(*geometry, steps));
        self.retire_checkpoints(0);
        self.prev_valid = false;
    }

    /// Hot path: replay only the elements past the shared prefix.
    fn compile_elements(
        &mut self,
        test: &MarchTest,
        geometry: &MemGeometry,
        options: &ExpandOptions,
    ) {
        let words = usize::try_from(geometry.words()).expect("words fit usize");
        let ports = usize::from(geometry.ports());
        let port = options.ports[0];
        let bg = options.backgrounds[0];
        assert_eq!(bg.width(), geometry.width(), "background width mismatch");
        assert!(port.0 < geometry.ports(), "port {port} out of range");

        let config_matches =
            self.prev_config.as_ref().is_some_and(|(g, o)| g == geometry && o == options);
        if !config_matches {
            self.prev_config = Some((*geometry, options.clone()));
        }
        let items = test.items();
        let shared = if self.prev_valid && config_matches && self.trace.is_some() {
            items
                .iter()
                .zip(&self.prev_elements)
                .take_while(|(item, prev)| item.as_element() == Some(prev))
                .count()
        } else {
            self.reset_skeleton(geometry, words);
            0
        };

        // Roll the live state back to the last shared element boundary.
        self.retire_checkpoints(shared);
        let (steps_keep, misc_keep) = match self.checkpoints.last() {
            Some(ck) => {
                self.now_ns = ck.now_ns;
                self.values.clone_from(&ck.values);
                self.last_read.clone_from(&ck.last_read);
                self.word_hash.clone_from(&ck.word_hash);
                (ck.steps as usize, ck.miscompares as usize)
            }
            None => {
                self.now_ns = 0.0;
                self.values.clear();
                self.values.resize(words, 0);
                self.last_read.clear();
                self.last_read.resize(ports, None);
                self.word_hash.clear();
                self.word_hash.resize(words, Fnv1a::OFFSET);
                (0, 0)
            }
        };
        {
            let trace = self.trace.as_mut().expect("skeleton exists");
            trace.steps.truncate(steps_keep);
            trace.golden_miscompares.truncate(misc_keep);
            let cut = u32::try_from(steps_keep).expect("step count fits u32");
            for ops in &mut trace.per_word {
                ops.truncate(ops.partition_point(|op| op.step < cut));
            }
        }

        // Replay the unshared tail, mirroring `expand_one_pass` +
        // `from_steps_owned` exactly: cycle time advances before the access
        // is recorded, reads observe the stored fault-free word.
        let n = geometry.words();
        let p = usize::from(port.0);
        let skip_steps = self.skip_steps;
        // Moved out for the loop (`push_checkpoint` reborrows `self`) and
        // restored right after it.
        let support_owned = self.word_support.take();
        let support = support_owned.as_deref();
        let mut step_no = u32::try_from(steps_keep).expect("step count fits u32");
        for item in &items[shared..] {
            let e = item.as_element().expect("fast path is element-only");
            let up = matches!(e.order().direction(), mbist_rtl::Direction::Up);
            self.decoded.clear();
            self.decoded.extend(e.ops().iter().map(|op| {
                let word = if op.data() { !bg } else { bg };
                (op.is_write(), word, word.value())
            }));
            let trace = self.trace.as_mut().expect("skeleton exists");
            for i in 0..n {
                let addr = if up { i } else { n - 1 - i };
                let w = usize::try_from(addr).expect("addr fits usize");
                // Untracked words keep exact golden state (values, timing,
                // miscompares, sense history) but skip the op-list record.
                let tracked = support.is_none_or(|s| s[w]);
                for &(is_write, word, value) in &self.decoded {
                    self.now_ns += DEFAULT_CYCLE_NS;
                    if is_write {
                        if !skip_steps {
                            trace
                                .steps
                                .push(TestStep::Bus(BusCycle::write(port, addr, word)));
                        }
                        self.values[w] = value;
                        if tracked {
                            let kind = TraceOpKind::Write(value);
                            mix_op_content(&mut self.word_hash[w], &kind);
                            trace.per_word[w].push(TraceOp {
                                step: step_no,
                                port,
                                now_ns: self.now_ns,
                                kind,
                            });
                        }
                    } else {
                        if !skip_steps {
                            trace
                                .steps
                                .push(TestStep::Bus(BusCycle::read(port, addr, word)));
                        }
                        let observed = self.values[w];
                        if value != observed {
                            trace.golden_miscompares.push((step_no, addr));
                        }
                        if tracked {
                            let kind = TraceOpKind::Read {
                                expected: Some(value),
                                golden: observed,
                                prev_read: self.last_read[p],
                            };
                            mix_op_content(&mut self.word_hash[w], &kind);
                            trace.per_word[w].push(TraceOp {
                                step: step_no,
                                port,
                                now_ns: self.now_ns,
                                kind,
                            });
                        }
                        self.last_read[p] =
                            Some(PrevRead { step: step_no, golden: observed });
                    }
                    step_no += 1;
                }
            }
            let misc_len = u32::try_from(trace.golden_miscompares.len())
                .expect("miscompare count fits u32");
            self.push_checkpoint(step_no, misc_len);
        }
        let sparse = support_owned.is_some();
        self.word_support = support_owned;

        // The fast path constructs the stream itself, so both certificates
        // are known without a pass over it: every element visits every
        // word exactly once in monotone order with a uniform op count
        // (address-uniform by construction, with direction-reversal
        // boundary visits exactly the shape the parser's `carry` admits),
        // and every write puts the same value at every address, so `values`
        // stays address-uniform and all words carry the identical content
        // projection — one class. The debug assertions re-derive both
        // through the reference certifiers.
        let trace = self.trace.as_mut().expect("skeleton exists");
        trace.word_class.clear();
        trace.word_class.resize(words, 0);
        trace.uniform_interleave = geometry.words() >= 3;
        debug_assert!(
            sparse
                || trace.word_class
                    == intern_word_classes(&trace.per_word, &self.word_hash),
            "fast-path streams must be monoclass by construction"
        );
        debug_assert!(
            skip_steps
                || certify_uniform_interleave_with(
                    geometry.words(),
                    &trace.steps,
                    &mut self.visits,
                ) == trace.uniform_interleave,
            "fast-path streams must be address-uniform exactly when words >= 3"
        );

        self.prev_elements.clear();
        self.prev_elements.extend(
            items
                .iter()
                .map(|i| i.as_element().expect("fast path is element-only").clone()),
        );
        self.prev_valid = true;
    }

    /// Resets the trace slot to an empty skeleton for `geometry`, keeping
    /// whatever buffer capacity the previous trace had.
    fn reset_skeleton(&mut self, geometry: &MemGeometry, words: usize) {
        let trace = match self.trace.take() {
            Some(mut t) => {
                t.geometry = *geometry;
                t.steps.clear();
                if t.per_word.len() == words {
                    for ops in &mut t.per_word {
                        ops.clear();
                    }
                } else {
                    t.per_word.clear();
                    t.per_word.resize_with(words, Vec::new);
                }
                t.golden_miscompares.clear();
                t.word_class.clear();
                t.uniform_interleave = false;
                t
            }
            None => CompiledTrace {
                geometry: *geometry,
                steps: Vec::new(),
                per_word: vec![Vec::new(); words],
                golden_miscompares: Vec::new(),
                word_class: Vec::new(),
                uniform_interleave: false,
            },
        };
        self.trace = Some(trace);
    }

    /// Moves checkpoints past `keep` into the spare pool (their buffers
    /// are recycled by the next [`Self::push_checkpoint`]).
    fn retire_checkpoints(&mut self, keep: usize) {
        while self.checkpoints.len() > keep {
            self.spare.push(self.checkpoints.pop().expect("len checked"));
        }
    }

    /// Snapshots the live replay state as the checkpoint after the element
    /// just compiled.
    fn push_checkpoint(&mut self, steps: u32, miscompares: u32) {
        let mut ck = self.spare.pop().unwrap_or_default();
        ck.steps = steps;
        ck.now_ns = self.now_ns;
        ck.miscompares = miscompares;
        ck.values.clone_from(&self.values);
        ck.last_read.clone_from(&self.last_read);
        ck.word_hash.clone_from(&self.word_hash);
        self.checkpoints.push(ck);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::expand;
    use crate::library;
    use mbist_mem::{BusCycle, CellId, DEFAULT_CYCLE_NS};
    use mbist_rtl::Bits;

    #[test]
    fn trace_records_every_bus_cycle_once() {
        let g = MemGeometry::bit_oriented(8);
        let steps = expand(&library::march_c(), &g);
        let trace = CompiledTrace::from_steps(g, &steps);
        let bus: usize = steps.iter().filter(|s| matches!(s, TestStep::Bus(_))).count();
        let recorded: usize = (0..8).map(|w| trace.ops_for_word(w).len()).sum();
        assert_eq!(bus, recorded);
        assert!(trace.golden_miscompares().is_empty(), "expanded streams are clean");
    }

    #[test]
    fn march_expansions_certify_uniform_interleave() {
        // Every library march is address-uniform once expanded — including
        // march-c, whose ⇑→⇓ element boundary shares a visit to the top
        // address (the carry-splitting case in the certificate parse).
        let g = MemGeometry::bit_oriented(8);
        for test in [library::mats(), library::march_c(), library::march_b()] {
            let trace = CompiledTrace::from_steps(g, &expand(&test, &g));
            assert!(trace.uniform_interleave(), "{} should certify", test.name());
            assert!(
                (0..8).all(|w| trace.word_class(w) == trace.word_class(0)),
                "{}: uniform data pattern means one content class",
                test.name()
            );
        }
    }

    #[test]
    fn irregular_streams_decline_the_certificate() {
        let g = MemGeometry::bit_oriented(4);
        let w = |addr| {
            TestStep::Bus(BusCycle {
                port: PortId(0),
                addr,
                op: Operation::Write(Bits::bit1(true)),
                expected: None,
            })
        };
        // Not address-monotone (0, 2, 1, 3): exact per-pair programs still
        // work, but O(1) routing must not engage.
        let trace = CompiledTrace::from_steps(g, &[w(0), w(2), w(1), w(3)]);
        assert!(!trace.uniform_interleave());
        // A word visited twice in one sweep breaks visit uniformity too.
        let trace = CompiledTrace::from_steps(g, &[w(0), w(1), w(1), w(2), w(3)]);
        assert!(!trace.uniform_interleave());
        // A word with a different data pattern gets its own content class.
        let wv = |addr, bit| {
            TestStep::Bus(BusCycle {
                port: PortId(0),
                addr,
                op: Operation::Write(Bits::bit1(bit)),
                expected: None,
            })
        };
        let trace = CompiledTrace::from_steps(
            g,
            &[wv(0, true), wv(1, false), wv(2, true), wv(3, true)],
        );
        assert!(trace.uniform_interleave(), "order is uniform even if data is not");
        assert_ne!(trace.word_class(0), trace.word_class(1));
        assert_eq!(trace.word_class(0), trace.word_class(2));
    }

    #[test]
    fn timestamps_account_for_pauses() {
        let g = MemGeometry::bit_oriented(2);
        let w = |addr| {
            TestStep::Bus(BusCycle {
                port: PortId(0),
                addr,
                op: Operation::Write(Bits::bit1(true)),
                expected: None,
            })
        };
        let steps = [w(0), TestStep::Pause { ns: 1_000.0 }, w(1), w(0)];
        let trace = CompiledTrace::from_steps(g, &steps);
        let ops0 = trace.ops_for_word(0);
        assert_eq!(ops0.len(), 2);
        assert_eq!(ops0[0].now_ns, DEFAULT_CYCLE_NS);
        assert_eq!(ops0[1].now_ns, 1_000.0 + 3.0 * DEFAULT_CYCLE_NS);
    }

    #[test]
    fn golden_miscompares_capture_dirty_streams() {
        let g = MemGeometry::bit_oriented(2);
        let steps = [TestStep::Bus(BusCycle {
            port: PortId(0),
            addr: 1,
            op: Operation::Read,
            expected: Some(Bits::bit1(true)), // memory powers up 0
        })];
        let trace = CompiledTrace::from_steps(g, &steps);
        assert_eq!(trace.golden_miscompares(), &[(0, 1)]);
        // A dirty stream "detects" everything, sliced or full.
        let f = FaultKind::StuckAt { cell: CellId::bit_oriented(0), value: false };
        assert!(trace.detect(f));
        assert_eq!(trace.detect_sliced(f), Some(true));
    }

    #[test]
    fn detect_full_reuses_scratch_without_state_leak() {
        let g = MemGeometry::bit_oriented(8);
        let trace = CompiledTrace::from_steps(g, &expand(&library::march_c_plus(), &g));
        let mut scratch = MemoryArray::new(g);
        let drf = FaultKind::Retention {
            cell: CellId::bit_oriented(3),
            decays_to: true,
            retention_ns: 50_000.0,
        };
        let saf = FaultKind::StuckAt { cell: CellId::bit_oriented(1), value: true };
        // Interleave faults so stale now_ns / sense state would be caught.
        let a = trace.detect_full(drf, &mut scratch);
        let b = trace.detect_full(saf, &mut scratch);
        let c = trace.detect_full(drf, &mut scratch);
        assert_eq!(a, c);
        assert!(a && b);
    }

    #[test]
    fn canonical_key_is_stable_and_input_sensitive() {
        let g = MemGeometry::word_oriented(64, 8);
        let steps = expand(&library::march_c(), &g);
        let k = canonical_trace_key("march-c", &g, &steps);
        assert_eq!(k, canonical_trace_key("march-c", &g, &steps), "deterministic");
        assert_ne!(k, canonical_trace_key("march-a", &g, &steps), "name feeds the key");
        let g2 = MemGeometry::new(64, 8, 2);
        assert_ne!(k, canonical_trace_key("march-c", &g2, &steps), "geometry feeds it");
        let mut shorter = steps.clone();
        shorter.pop();
        assert_ne!(k, canonical_trace_key("march-c", &g, &shorter), "stream feeds it");
    }

    #[test]
    fn canonical_keys_never_collide_across_library_and_geometries() {
        // Pairwise-distinct keys over the whole algorithm library × several
        // geometries: two different geometries must never collide.
        let mut seen = std::collections::HashMap::new();
        for g in [
            MemGeometry::bit_oriented(16),
            MemGeometry::bit_oriented(64),
            MemGeometry::word_oriented(16, 8),
            MemGeometry::new(16, 8, 2),
        ] {
            for t in library::all() {
                let steps = expand(&t, &g);
                let key = canonical_trace_key(t.name(), &g, &steps);
                if let Some(prev) = seen.insert(key, (t.name().to_string(), g)) {
                    panic!("key collision: {prev:?} vs ({}, {g})", t.name());
                }
            }
        }
    }

    #[test]
    fn approx_bytes_grows_with_the_stream() {
        let g = MemGeometry::bit_oriented(16);
        let small = CompiledTrace::from_steps(g, &expand(&library::mats(), &g));
        let big = CompiledTrace::from_steps(g, &expand(&library::march_c_plus_plus(), &g));
        assert!(small.approx_bytes() > 0);
        assert!(big.approx_bytes() > small.approx_bytes());
    }

    #[test]
    #[should_panic(expected = "does not fit trace geometry")]
    fn out_of_range_fault_panics() {
        let g = MemGeometry::bit_oriented(4);
        let trace = CompiledTrace::from_steps(g, &expand(&library::mats(), &g));
        let _ =
            trace.detect(FaultKind::StuckAt { cell: CellId::bit_oriented(9), value: true });
    }

    /// Field-by-field equality of two compiled traces, including the op
    /// projections the engines consume (`Debug` renders `f64` timestamps
    /// with round-trip precision, so this is bit-exact).
    fn assert_trace_eq(a: &CompiledTrace, b: &CompiledTrace, what: &str) {
        assert_eq!(a.geometry, b.geometry, "{what}: geometry");
        assert_eq!(a.steps, b.steps, "{what}: steps");
        assert_eq!(
            format!("{:?}", a.per_word),
            format!("{:?}", b.per_word),
            "{what}: per-word ops"
        );
        assert_eq!(a.golden_miscompares, b.golden_miscompares, "{what}: miscompares");
        assert_eq!(a.word_class, b.word_class, "{what}: word classes");
        assert_eq!(a.uniform_interleave, b.uniform_interleave, "{what}: certificate");
    }

    #[test]
    fn arena_matches_reference_compile_across_shapes() {
        // One arena compiles a mixed stream of tests — single-pass
        // (fast path), pause-carrying and multi-background/multi-port
        // (slow path) — and every result must be bit-identical to a cold
        // reference compile. Interleaving shapes also proves fast→slow→fast
        // transitions never leak state.
        let bit = MemGeometry::bit_oriented(8);
        let word = MemGeometry::word_oriented(8, 4);
        let multi = MemGeometry::new(8, 1, 2);
        let cases: Vec<(MarchTest, MemGeometry)> = vec![
            (library::mats(), bit),
            (library::march_c(), bit),
            (library::march_c_plus(), bit), // pauses: slow path
            (library::march_c(), word),     // 3 backgrounds: slow path
            (library::march_b(), bit),
            (library::mats_plus(), multi), // 2 ports: slow path
            (library::march_c(), bit),     // back to the fast path
        ];
        let mut arena = TraceArena::new();
        for (test, g) in &cases {
            let opts = ExpandOptions::for_geometry(g);
            let got = arena.compile(test, g, &opts);
            let want = CompiledTrace::compile(test, g, &opts);
            assert_trace_eq(got, &want, test.name());
        }
    }

    #[test]
    fn arena_prefix_reuse_is_exact() {
        // Candidate-style recompiles that exercise every prefix-sharing
        // case: tail mutation, mid-element removal (shrink), pure prefix
        // (tail removal), growth, and a full rewrite.
        use crate::element::AddressOrder;
        use crate::op::MarchOp;
        let g = MemGeometry::bit_oriented(8);
        let opts = ExpandOptions::minimal(&g);
        let e = |order, ops: &[MarchOp]| MarchElement::new(order, ops.to_vec());
        let w0 = MarchOp::Write(false);
        let w1 = MarchOp::Write(true);
        let r0 = MarchOp::Read(false);
        let r1 = MarchOp::Read(true);
        let base = vec![
            e(AddressOrder::Any, &[w0]),
            e(AddressOrder::Up, &[r0, w1]),
            e(AddressOrder::Up, &[r1, w0]),
            e(AddressOrder::Down, &[r0, w1]),
            e(AddressOrder::Down, &[r1, w0]),
            e(AddressOrder::Any, &[r0]),
        ];
        let variants: Vec<Vec<MarchElement>> = vec![
            base.clone(),
            // tail mutation
            {
                let mut v = base.clone();
                v[5] = e(AddressOrder::Down, &[r0]);
                v
            },
            // shrink: drop a middle element
            {
                let mut v = base.clone();
                v.remove(3);
                v
            },
            // pure prefix of the previous candidate
            base[..4].to_vec(),
            // growth past the previous length
            {
                let mut v = base.clone();
                v.push(e(AddressOrder::Up, &[r0, w1, r1]));
                v
            },
            // full rewrite: nothing shared
            vec![e(AddressOrder::Down, &[w1]), e(AddressOrder::Up, &[r1])],
            // identical recompile
            vec![e(AddressOrder::Down, &[w1]), e(AddressOrder::Up, &[r1])],
        ];
        let mut arena = TraceArena::new();
        for (i, elements) in variants.iter().enumerate() {
            let test = MarchTest::new(
                format!("cand-{i}"),
                elements.clone().into_iter().map(MarchItem::Element).collect(),
            );
            let got = arena.compile(&test, &g, &opts);
            let want = CompiledTrace::compile(&test, &g, &opts);
            assert_trace_eq(got, &want, test.name());
        }
    }

    #[test]
    fn arena_survives_geometry_and_option_switches() {
        let mut arena = TraceArena::new();
        for g in [MemGeometry::bit_oriented(4), MemGeometry::bit_oriented(16)] {
            for opts in [ExpandOptions::minimal(&g), ExpandOptions::for_geometry(&g)] {
                let got = arena.compile(&library::march_c(), &g, &opts);
                let want = CompiledTrace::compile(&library::march_c(), &g, &opts);
                assert_trace_eq(got, &want, "geometry/options switch");
            }
        }
    }

    #[test]
    fn count_detected_matches_flags_and_caps_exactly() {
        use mbist_mem::{subset_universe, FaultClass, UniverseSpec};
        let g = MemGeometry::bit_oriented(16);
        let trace = CompiledTrace::from_steps(g, &expand(&library::march_c(), &g));
        let classes =
            [FaultClass::StuckAt, FaultClass::Transition, FaultClass::CouplingIdempotent];
        let universe = subset_universe(&g, &classes, &UniverseSpec::default(), 64);
        let flags = trace.detect_universe(&universe, Some(1), SimEngine::Packed);
        let total = flags.iter().filter(|&&f| f).count();
        assert!(total > 2, "universe too easy to exercise caps");
        for engine in [SimEngine::Full, SimEngine::Sliced, SimEngine::Packed] {
            assert_eq!(trace.count_detected(&universe, engine, None), total);
            assert_eq!(trace.count_detected(&universe, engine, Some(usize::MAX)), total);
            // A reached cap returns exactly the cap, chunking-independent.
            assert_eq!(trace.count_detected(&universe, engine, Some(1)), 1);
            assert_eq!(trace.count_detected(&universe, engine, Some(total - 1)), total - 1);
            assert_eq!(trace.count_detected(&universe, engine, Some(total)), total);
            assert_eq!(trace.count_detected(&universe, engine, Some(0)), 0);
        }
    }
}
