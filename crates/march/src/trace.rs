//! Compiled step traces for sliced differential fault simulation.
//!
//! [`CompiledTrace`] compiles an expanded step stream once per
//! `(test, geometry)`: one fault-free golden replay produces per-address op
//! lists with precomputed access timestamps (pause-adjusted simulated time)
//! and golden read values. A single address-local fault is then simulated
//! by replaying only the ops that touch its support set
//! ([`FaultKind::support`]) against O(|support|) sparse state — see
//! [`crate::sliced`] — instead of paying an O(words) array allocation and
//! an O(stream) replay per fault.
//!
//! The differential argument: a single fault with support set S can only
//! make the cells in S deviate from the golden trace (every fault effect
//! reads and writes cells of S only), so every access outside S behaves
//! exactly as the golden replay, and detection is decided by the golden
//! miscompares (outside S) plus a sparse replay of the accesses to S.
//! Address-decoder faults, whose support is the two remapped words rather
//! than a cell neighborhood, replay those two words' merged op streams
//! ([`FaultKind::decoder_words`]); only faults with neither a support set
//! nor a decoder word pair fall back to the full replay, which stays
//! available as the differential-testing oracle.

use std::collections::HashMap;

use mbist_mem::{FaultKind, MemGeometry, MemoryArray, Operation, PortId, TestStep};

use crate::expand::{expand_with, ExpandOptions};
use crate::runner::run_steps_detect;
use crate::sliced;
use crate::test::MarchTest;

/// Which fault-simulation engine a detection loop uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimEngine {
    /// Full replay: one (scratch) array per fault, whole stream, early exit
    /// at the first miscompare.
    Full,
    /// Sliced differential replay over the shared compiled trace, falling
    /// back to full replay for faults without an address-local support set.
    /// Bit-for-bit equivalent to [`SimEngine::Full`].
    #[default]
    Sliced,
    /// Lane-packed bit-parallel replay: up to 256 congruent address-local
    /// faults are batched into the bit lanes of `[u64; 4]` state vectors and
    /// the trace is replayed **once per batch** with branch-free lane
    /// updates (see [`crate::packed`]). Every address-local class is
    /// vectorized — including stuck-open sense latches, retention decay
    /// (precomputed deadlines) and fixed-shape NPSF — and congruent faults
    /// are batched across data backgrounds and ports; only decoder faults
    /// fall back per fault to the sliced/full paths. Bit-for-bit equivalent
    /// to [`SimEngine::Full`].
    Packed,
}

/// Stable canonical hash of a `(test name, expanded step stream, geometry)`
/// triple — the cache identity of a [`CompiledTrace`].
///
/// The hash is FNV-1a over a canonical byte serialization, so it is stable
/// across processes and runs (unlike [`std::hash::RandomState`]): two
/// invocations that expand to the same stream on the same geometry always
/// collide onto the same key, however their flags were spelled or ordered,
/// while any difference in geometry, name or stream content feeds different
/// bytes.
///
/// # Examples
///
/// ```
/// use mbist_march::{canonical_trace_key, expand, library};
/// use mbist_mem::MemGeometry;
///
/// let g = MemGeometry::word_oriented(64, 8);
/// let steps = expand(&library::march_c(), &g);
/// let k1 = canonical_trace_key("march-c", &g, &steps);
/// let k2 = canonical_trace_key("march-c", &g, &steps);
/// assert_eq!(k1, k2);
/// ```
#[must_use]
pub fn canonical_trace_key(
    test_name: &str,
    geometry: &MemGeometry,
    steps: &[TestStep],
) -> u64 {
    let mut h = Fnv1a::new();
    h.bytes(test_name.as_bytes());
    h.byte(0xff); // unambiguous name terminator (0xff never appears in UTF-8)
    h.u64(geometry.words());
    h.byte(geometry.width());
    h.byte(geometry.ports());
    for step in steps {
        match step {
            TestStep::Pause { ns } => {
                h.byte(0x01);
                h.u64(ns.to_bits());
            }
            TestStep::Bus(cycle) => {
                h.byte(0x02);
                h.byte(cycle.port.0);
                h.u64(cycle.addr);
                match cycle.op {
                    Operation::Write(data) => {
                        h.byte(0x03);
                        h.byte(data.width());
                        h.u64(data.value());
                    }
                    Operation::Read => h.byte(0x04),
                }
                match cycle.expected {
                    None => h.byte(0x05),
                    Some(e) => {
                        h.byte(0x06);
                        h.byte(e.width());
                        h.u64(e.value());
                    }
                }
            }
        }
    }
    h.finish()
}

/// [`canonical_trace_key`] for a `(test, geometry)` pair in one call: the
/// test is expanded with the geometry's default [`ExpandOptions`] and the
/// resulting stream is hashed. This is the routing identity a sharded
/// service front end uses to place a request on the shard that owns (or
/// will own) the compiled trace, without compiling the trace itself.
#[must_use]
pub fn canonical_request_key(test: &MarchTest, geometry: &MemGeometry) -> u64 {
    let steps = expand_with(test, geometry, &ExpandOptions::for_geometry(geometry));
    canonical_trace_key(test.name(), geometry, &steps)
}

/// 64-bit FNV-1a over a caller-framed byte stream.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// [`Fnv1a`] behind the std `Hasher`/`BuildHasher` traits, for the packed
/// engine's hot routing maps where SipHash's per-lookup cost would eat the
/// batching win. Hash quality only affects speed, never results —
/// congruence always comes from full key equality.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FnvBuild;

#[derive(Debug)]
pub(crate) struct FnvHasher(u64);

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(Fnv1a::OFFSET)
    }
}

impl FnvHasher {
    fn mix(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(Fnv1a::PRIME);
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }

    // Whole-value mixing: one multiply per integer write instead of one
    // per byte (the keys these maps see are a handful of small integers).
    fn write_u8(&mut self, i: u8) {
        self.mix(u64::from(i));
    }

    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// Interns each word's op-list content — the `(kind, data, expected,
/// golden)` sequence, exactly the projection `packed::build_program`
/// reads — into a dense class id. Two words with the same id provably
/// yield identical packed access programs for any bit position.
fn intern_word_classes(per_word: &[Vec<TraceOp>]) -> Vec<u32> {
    let mut intern: HashMap<Vec<(u8, u64, u64)>, u32, FnvBuild> =
        HashMap::with_hasher(FnvBuild);
    per_word
        .iter()
        .map(|ops| {
            let key: Vec<(u8, u64, u64)> = ops
                .iter()
                .map(|op| match op.kind {
                    TraceOpKind::Write(data) => (0u8, data, 0),
                    TraceOpKind::Read { expected: None, golden, .. } => (1u8, 0, golden),
                    TraceOpKind::Read { expected: Some(e), golden, .. } => (2u8, e, golden),
                })
                .collect();
            let next = u32::try_from(intern.len()).expect("class count fits u32");
            *intern.entry(key).or_insert(next)
        })
        .collect()
}

/// Checks the address-uniform-march shape (see the
/// [`CompiledTrace::uniform_interleave`] field doc): the op stream parses
/// into segments that each visit every word exactly once in strictly
/// monotone address order with one uniform op count. A visit shared
/// between a segment's last word and the next segment's first word (a ⇑
/// element followed by a ⇓ element both touching the top address) is
/// split by op count, which the parse threads through as `carry`.
///
/// Returns `false` for any stream that doesn't parse — the packed engine
/// then builds inter-word programs per pair instead of routing by address
/// order, which is always exact, just slower. Geometries under three
/// words also decline: they hold at most one inter-word pair, so per-pair
/// memoization already covers them (and the two-word parse would need
/// lookahead to split shared boundary visits).
fn certify_uniform_interleave(words: u64, steps: &[TestStep]) -> bool {
    let n = usize::try_from(words).expect("words fit usize");
    if n < 3 {
        return false;
    }
    // Collapse the op stream to word visits: consecutive ops on one
    // address (pauses don't access, so they split nothing).
    let mut visits: Vec<(u64, u32)> = Vec::new();
    for step in steps {
        if let TestStep::Bus(cycle) = step {
            match visits.last_mut() {
                Some((addr, count)) if *addr == cycle.addr => *count += 1,
                _ => visits.push((cycle.addr, 1)),
            }
        }
    }
    let mut i = 0;
    let mut carry = 0u32;
    while i < visits.len() {
        if i + n > visits.len() {
            return false;
        }
        // The second visit is interior to the segment (n ≥ 3), so its
        // count is the segment's uniform op count.
        let k = visits[i + 1].1;
        if k == 0 || visits[i].1 - carry != k {
            return false;
        }
        let ascending = visits[i].0 < visits[i + 1].0;
        let start = if ascending { 0 } else { words - 1 };
        for (j, &(addr, count)) in visits[i..i + n].iter().enumerate() {
            let j = u64::try_from(j).expect("segment index fits u64");
            let expect = if ascending { start + j } else { start - j };
            if addr != expect {
                return false;
            }
            // Interior visits must carry exactly k ops; the boundary
            // visits are checked against `carry` outside this loop.
            if j != 0 && j != words - 1 && count != k {
                return false;
            }
        }
        let last = visits[i + n - 1].1;
        if last == k {
            carry = 0;
            i += n;
        } else if last > k {
            // The tail of this visit opens the next segment at the same
            // address.
            carry = k;
            i += n - 1;
        } else {
            return false;
        }
    }
    carry == 0
}

/// The golden value the port's sense amplifier held before a read — the
/// previous read on the same port, at any address.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrevRead {
    /// Step index of that previous read.
    pub(crate) step: u32,
    /// Its golden (fault-free) observed value.
    pub(crate) golden: u64,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum TraceOpKind {
    Write(u64),
    Read {
        /// Expected value of a checked read (`None` = unchecked).
        expected: Option<u64>,
        /// The golden (fault-free) observed value — what the packed engine
        /// diffs lane states against on checked reads.
        golden: u64,
        /// The previous read on the same port (`None` = sense latch still
        /// invalid), resolving stuck-open observations.
        prev_read: Option<PrevRead>,
    },
}

/// One bus access to a given word, with everything a sparse replay needs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TraceOp {
    /// Index into the step stream (global replay order).
    pub(crate) step: u32,
    pub(crate) port: PortId,
    /// Simulated time *after* the access, exactly as
    /// [`MemoryArray::now_ns`] would report it (cycle time per access plus
    /// all preceding pauses).
    pub(crate) now_ns: f64,
    pub(crate) kind: TraceOpKind,
}

/// An expanded step stream compiled for cheap per-fault replay.
///
/// Immutable after construction, so one trace can be shared by reference
/// across fan-out worker threads; compiling costs one fault-free replay of
/// the stream and is amortized over every fault simulated against it.
///
/// # Examples
///
/// ```
/// use mbist_march::{expand, library, CompiledTrace};
/// use mbist_mem::{CellId, FaultKind, MemGeometry};
///
/// let g = MemGeometry::bit_oriented(16);
/// let trace = CompiledTrace::from_steps(g, &expand(&library::march_c(), &g));
/// let tf = FaultKind::Transition { cell: CellId::bit_oriented(7), rising: true };
/// assert!(trace.detect(tf));
/// ```
#[derive(Debug, Clone)]
pub struct CompiledTrace {
    geometry: MemGeometry,
    steps: Vec<TestStep>,
    per_word: Vec<Vec<TraceOp>>,
    /// Checked reads that fail even fault-free, as `(step, addr)`. Usually
    /// empty; a fault-free-dirty stream detects every fault trivially.
    golden_miscompares: Vec<(u32, u64)>,
    /// Interned content class per word: two words share an id iff their op
    /// lists carry identical `(kind, data, expected, golden)` sequences, so
    /// faults on same-class words provably share a packed access program
    /// (see [`crate::packed`]). Computed once at compile time — the packed
    /// engine's batch routing stays O(1) per fault.
    word_class: Vec<u32>,
    /// Certificate that the stream is an address-uniform march: every
    /// segment visits every word exactly once, in strictly monotone address
    /// order, with one op count per segment. Under this shape the merged
    /// op order of any word pair depends only on which address is smaller,
    /// which lets the packed engine route inter-word coupling faults
    /// without rebuilding their merged program.
    uniform_interleave: bool,
}

impl CompiledTrace {
    /// Compiles a step stream by running it once against a fault-free
    /// array, recording per-word op lists, access timestamps and golden
    /// read values.
    ///
    /// # Panics
    ///
    /// Panics if the stream is invalid for the geometry (out-of-range
    /// address/port, data or expectation width mismatch) — the same
    /// conditions a direct [`MemoryArray`] replay would reject.
    #[must_use]
    pub fn from_steps(geometry: MemGeometry, steps: &[TestStep]) -> Self {
        Self::from_steps_owned(geometry, steps.to_vec())
    }

    /// [`Self::from_steps`] taking ownership of the stream — spares the
    /// defensive copy when the caller's expansion is already a `Vec` it no
    /// longer needs (the hot path for whole-run coverage evaluation).
    #[must_use]
    pub fn from_steps_owned(geometry: MemGeometry, steps: Vec<TestStep>) -> Self {
        let words = usize::try_from(geometry.words()).expect("words fit usize");
        // Pre-size each word's op list: one counting pass over the stream
        // beats re-allocating a thousand small vectors mid-replay.
        let mut counts = vec![0usize; words];
        for step in &steps {
            if let TestStep::Bus(cycle) = step {
                counts[usize::try_from(cycle.addr).expect("addr fits usize")] += 1;
            }
        }
        let mut per_word: Vec<Vec<TraceOp>> =
            counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        let mut golden_miscompares = Vec::new();
        let mut mem = MemoryArray::new(geometry);
        let mut last_read: Vec<Option<PrevRead>> =
            vec![None; usize::from(geometry.ports())];
        for (i, step) in steps.iter().enumerate() {
            let step_no = u32::try_from(i).expect("step count fits u32");
            match step {
                TestStep::Pause { ns } => mem.pause(*ns),
                TestStep::Bus(cycle) => match cycle.op {
                    Operation::Write(data) => {
                        mem.write(cycle.port, cycle.addr, data);
                        per_word[usize::try_from(cycle.addr).expect("addr fits usize")]
                            .push(TraceOp {
                                step: step_no,
                                port: cycle.port,
                                now_ns: mem.now_ns(),
                                kind: TraceOpKind::Write(data.value()),
                            });
                    }
                    Operation::Read => {
                        let observed = mem.read(cycle.port, cycle.addr);
                        let expected = cycle.expected.map(|e| {
                            assert_eq!(
                                e.width(),
                                geometry.width(),
                                "checked-read expectation width mismatch"
                            );
                            e.value()
                        });
                        if cycle.expected.is_some_and(|e| e != observed) {
                            golden_miscompares.push((step_no, cycle.addr));
                        }
                        let port = usize::from(cycle.port.0);
                        per_word[usize::try_from(cycle.addr).expect("addr fits usize")]
                            .push(TraceOp {
                                step: step_no,
                                port: cycle.port,
                                now_ns: mem.now_ns(),
                                kind: TraceOpKind::Read {
                                    expected,
                                    golden: observed.value(),
                                    prev_read: last_read[port],
                                },
                            });
                        last_read[port] =
                            Some(PrevRead { step: step_no, golden: observed.value() });
                    }
                },
            }
        }
        let word_class = intern_word_classes(&per_word);
        let uniform_interleave = certify_uniform_interleave(geometry.words(), &steps);
        Self {
            geometry,
            steps,
            per_word,
            golden_miscompares,
            word_class,
            uniform_interleave,
        }
    }

    /// Compiles the expanded stream of `test` on `geometry` — the common
    /// entry point for coverage and synthesis loops.
    #[must_use]
    pub fn compile(
        test: &MarchTest,
        geometry: &MemGeometry,
        options: &ExpandOptions,
    ) -> Self {
        Self::from_steps_owned(*geometry, expand_with(test, geometry, options))
    }

    /// The geometry the trace was compiled for.
    #[must_use]
    pub fn geometry(&self) -> MemGeometry {
        self.geometry
    }

    /// The step stream the trace was compiled from (the full-replay
    /// fallback input).
    #[must_use]
    pub fn steps(&self) -> &[TestStep] {
        &self.steps
    }

    /// Whether the stream detects `fault`: sliced replay when the fault is
    /// address-local, full replay on a fresh array otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the fault does not fit the trace geometry.
    #[must_use]
    pub fn detect(&self, fault: FaultKind) -> bool {
        match self.detect_sliced(fault) {
            Some(flag) => flag,
            None => {
                let mut scratch = MemoryArray::new(self.geometry);
                self.detect_full(fault, &mut scratch)
            }
        }
    }

    /// Sliced differential detection, or `None` when the fault has no
    /// address-local support set and only a full replay is sound.
    ///
    /// # Panics
    ///
    /// Panics if the fault does not fit the trace geometry.
    #[must_use]
    pub fn detect_sliced(&self, fault: FaultKind) -> Option<bool> {
        assert!(
            fault.is_valid_for(&self.geometry),
            "fault {fault} does not fit trace geometry {}",
            self.geometry
        );
        sliced::detect_sliced(self, fault)
    }

    /// Simulates every fault in `universe` against this trace through the
    /// selected engine, fanning out across `jobs` workers, and returns one
    /// detection flag per fault in universe order.
    ///
    /// Worker count and engine only change wall-clock time, never the
    /// flags — [`SimEngine::Packed`] batches compatible faults into `u64`
    /// lanes and replays the trace once per batch, while non-vectorizable
    /// faults transparently take the sliced/full paths.
    ///
    /// # Panics
    ///
    /// Panics if a fault in `universe` does not fit the trace geometry.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbist_march::{expand, library, CompiledTrace, SimEngine};
    /// use mbist_mem::{class_universe, FaultClass, MemGeometry, UniverseSpec};
    ///
    /// let g = MemGeometry::bit_oriented(16);
    /// let trace = CompiledTrace::from_steps(g, &expand(&library::march_c(), &g));
    /// let universe = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
    /// let flags = trace.detect_universe(&universe, Some(1), SimEngine::Packed);
    /// assert!(flags.iter().all(|&d| d), "March C detects every SAF");
    /// ```
    #[must_use]
    pub fn detect_universe(
        &self,
        universe: &[FaultKind],
        jobs: Option<usize>,
        engine: SimEngine,
    ) -> Vec<bool> {
        for fault in universe {
            assert!(
                fault.is_valid_for(&self.geometry),
                "fault {fault} does not fit trace geometry {}",
                self.geometry
            );
        }
        crate::fanout::detect_universe_trace(
            self,
            universe,
            jobs,
            engine,
            &crate::cancel::CancelToken::none(),
        )
    }

    /// Full-replay detection on a caller-provided scratch array (reset,
    /// re-injected, replayed with early exit) — the fallback oracle the
    /// sliced engine is verified against.
    ///
    /// # Panics
    ///
    /// Panics if the scratch geometry differs from the trace geometry, or
    /// the fault does not fit it.
    #[must_use]
    pub fn detect_full(&self, fault: FaultKind, scratch: &mut MemoryArray) -> bool {
        assert_eq!(scratch.geometry(), self.geometry, "scratch geometry mismatch");
        scratch.reset();
        scratch.inject(fault).expect("fault must fit the trace geometry");
        run_steps_detect(scratch, &self.steps)
    }

    /// Approximate resident size of the trace in bytes — steps, per-word op
    /// lists and golden-miscompare records — used by byte-capped caches to
    /// account for what they hold. An estimate (allocator slack and `Vec`
    /// growth headroom are not visible), but proportional to the real
    /// footprint and monotone in stream length.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let ops: usize = self.per_word.iter().map(Vec::len).sum();
        std::mem::size_of::<Self>()
            + self.steps.len() * std::mem::size_of::<TestStep>()
            + self.per_word.len() * std::mem::size_of::<Vec<TraceOp>>()
            + ops * std::mem::size_of::<TraceOp>()
            + self.golden_miscompares.len() * std::mem::size_of::<(u32, u64)>()
            + self.word_class.len() * std::mem::size_of::<u32>()
    }

    /// Every access to `word`, in stream order.
    pub(crate) fn ops_for_word(&self, word: u64) -> &[TraceOp] {
        &self.per_word[usize::try_from(word).expect("addr fits usize")]
    }

    /// The interned content class of `word` (see the field doc).
    pub(crate) fn word_class(&self, word: u64) -> u32 {
        self.word_class[usize::try_from(word).expect("addr fits usize")]
    }

    /// Whether the address-uniform-march certificate holds (see the field
    /// doc).
    pub(crate) fn uniform_interleave(&self) -> bool {
        self.uniform_interleave
    }

    pub(crate) fn golden_miscompares(&self) -> &[(u32, u64)] {
        &self.golden_miscompares
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::expand;
    use crate::library;
    use mbist_mem::{BusCycle, CellId, DEFAULT_CYCLE_NS};
    use mbist_rtl::Bits;

    #[test]
    fn trace_records_every_bus_cycle_once() {
        let g = MemGeometry::bit_oriented(8);
        let steps = expand(&library::march_c(), &g);
        let trace = CompiledTrace::from_steps(g, &steps);
        let bus: usize = steps.iter().filter(|s| matches!(s, TestStep::Bus(_))).count();
        let recorded: usize = (0..8).map(|w| trace.ops_for_word(w).len()).sum();
        assert_eq!(bus, recorded);
        assert!(trace.golden_miscompares().is_empty(), "expanded streams are clean");
    }

    #[test]
    fn march_expansions_certify_uniform_interleave() {
        // Every library march is address-uniform once expanded — including
        // march-c, whose ⇑→⇓ element boundary shares a visit to the top
        // address (the carry-splitting case in the certificate parse).
        let g = MemGeometry::bit_oriented(8);
        for test in [library::mats(), library::march_c(), library::march_b()] {
            let trace = CompiledTrace::from_steps(g, &expand(&test, &g));
            assert!(trace.uniform_interleave(), "{} should certify", test.name());
            assert!(
                (0..8).all(|w| trace.word_class(w) == trace.word_class(0)),
                "{}: uniform data pattern means one content class",
                test.name()
            );
        }
    }

    #[test]
    fn irregular_streams_decline_the_certificate() {
        let g = MemGeometry::bit_oriented(4);
        let w = |addr| {
            TestStep::Bus(BusCycle {
                port: PortId(0),
                addr,
                op: Operation::Write(Bits::bit1(true)),
                expected: None,
            })
        };
        // Not address-monotone (0, 2, 1, 3): exact per-pair programs still
        // work, but O(1) routing must not engage.
        let trace = CompiledTrace::from_steps(g, &[w(0), w(2), w(1), w(3)]);
        assert!(!trace.uniform_interleave());
        // A word visited twice in one sweep breaks visit uniformity too.
        let trace = CompiledTrace::from_steps(g, &[w(0), w(1), w(1), w(2), w(3)]);
        assert!(!trace.uniform_interleave());
        // A word with a different data pattern gets its own content class.
        let wv = |addr, bit| {
            TestStep::Bus(BusCycle {
                port: PortId(0),
                addr,
                op: Operation::Write(Bits::bit1(bit)),
                expected: None,
            })
        };
        let trace = CompiledTrace::from_steps(
            g,
            &[wv(0, true), wv(1, false), wv(2, true), wv(3, true)],
        );
        assert!(trace.uniform_interleave(), "order is uniform even if data is not");
        assert_ne!(trace.word_class(0), trace.word_class(1));
        assert_eq!(trace.word_class(0), trace.word_class(2));
    }

    #[test]
    fn timestamps_account_for_pauses() {
        let g = MemGeometry::bit_oriented(2);
        let w = |addr| {
            TestStep::Bus(BusCycle {
                port: PortId(0),
                addr,
                op: Operation::Write(Bits::bit1(true)),
                expected: None,
            })
        };
        let steps = [w(0), TestStep::Pause { ns: 1_000.0 }, w(1), w(0)];
        let trace = CompiledTrace::from_steps(g, &steps);
        let ops0 = trace.ops_for_word(0);
        assert_eq!(ops0.len(), 2);
        assert_eq!(ops0[0].now_ns, DEFAULT_CYCLE_NS);
        assert_eq!(ops0[1].now_ns, 1_000.0 + 3.0 * DEFAULT_CYCLE_NS);
    }

    #[test]
    fn golden_miscompares_capture_dirty_streams() {
        let g = MemGeometry::bit_oriented(2);
        let steps = [TestStep::Bus(BusCycle {
            port: PortId(0),
            addr: 1,
            op: Operation::Read,
            expected: Some(Bits::bit1(true)), // memory powers up 0
        })];
        let trace = CompiledTrace::from_steps(g, &steps);
        assert_eq!(trace.golden_miscompares(), &[(0, 1)]);
        // A dirty stream "detects" everything, sliced or full.
        let f = FaultKind::StuckAt { cell: CellId::bit_oriented(0), value: false };
        assert!(trace.detect(f));
        assert_eq!(trace.detect_sliced(f), Some(true));
    }

    #[test]
    fn detect_full_reuses_scratch_without_state_leak() {
        let g = MemGeometry::bit_oriented(8);
        let trace = CompiledTrace::from_steps(g, &expand(&library::march_c_plus(), &g));
        let mut scratch = MemoryArray::new(g);
        let drf = FaultKind::Retention {
            cell: CellId::bit_oriented(3),
            decays_to: true,
            retention_ns: 50_000.0,
        };
        let saf = FaultKind::StuckAt { cell: CellId::bit_oriented(1), value: true };
        // Interleave faults so stale now_ns / sense state would be caught.
        let a = trace.detect_full(drf, &mut scratch);
        let b = trace.detect_full(saf, &mut scratch);
        let c = trace.detect_full(drf, &mut scratch);
        assert_eq!(a, c);
        assert!(a && b);
    }

    #[test]
    fn canonical_key_is_stable_and_input_sensitive() {
        let g = MemGeometry::word_oriented(64, 8);
        let steps = expand(&library::march_c(), &g);
        let k = canonical_trace_key("march-c", &g, &steps);
        assert_eq!(k, canonical_trace_key("march-c", &g, &steps), "deterministic");
        assert_ne!(k, canonical_trace_key("march-a", &g, &steps), "name feeds the key");
        let g2 = MemGeometry::new(64, 8, 2);
        assert_ne!(k, canonical_trace_key("march-c", &g2, &steps), "geometry feeds it");
        let mut shorter = steps.clone();
        shorter.pop();
        assert_ne!(k, canonical_trace_key("march-c", &g, &shorter), "stream feeds it");
    }

    #[test]
    fn canonical_keys_never_collide_across_library_and_geometries() {
        // Pairwise-distinct keys over the whole algorithm library × several
        // geometries: two different geometries must never collide.
        let mut seen = std::collections::HashMap::new();
        for g in [
            MemGeometry::bit_oriented(16),
            MemGeometry::bit_oriented(64),
            MemGeometry::word_oriented(16, 8),
            MemGeometry::new(16, 8, 2),
        ] {
            for t in library::all() {
                let steps = expand(&t, &g);
                let key = canonical_trace_key(t.name(), &g, &steps);
                if let Some(prev) = seen.insert(key, (t.name().to_string(), g)) {
                    panic!("key collision: {prev:?} vs ({}, {g})", t.name());
                }
            }
        }
    }

    #[test]
    fn approx_bytes_grows_with_the_stream() {
        let g = MemGeometry::bit_oriented(16);
        let small = CompiledTrace::from_steps(g, &expand(&library::mats(), &g));
        let big = CompiledTrace::from_steps(g, &expand(&library::march_c_plus_plus(), &g));
        assert!(small.approx_bytes() > 0);
        assert!(big.approx_bytes() > small.approx_bytes());
    }

    #[test]
    #[should_panic(expected = "does not fit trace geometry")]
    fn out_of_range_fault_panics() {
        let g = MemGeometry::bit_oriented(4);
        let trace = CompiledTrace::from_steps(g, &expand(&library::mats(), &g));
        let _ =
            trace.detect(FaultKind::StuckAt { cell: CellId::bit_oriented(9), value: true });
    }
}
