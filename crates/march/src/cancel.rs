//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is threaded into the engine inner loops
//! ([`evaluate_coverage`](crate::evaluate_coverage),
//! [`synthesize_march`](crate::synthesize_march) and the fan-out behind
//! them) and checked **per fault chunk, not per fault**, so an expired
//! deadline stops a multi-second run within milliseconds while costing the
//! hot loops nothing measurable. The default token is a `None` — every
//! check is a single branch on an empty `Option`, which is why the engines
//! can take the token unconditionally instead of behind a feature gate.
//!
//! Cancellation is cooperative and lossy by design: a cancelled run
//! returns early with whatever partial flags it accumulated, and the
//! *caller* must check [`CancelToken::is_cancelled`] and discard the
//! result. Nothing partial is ever reported as complete by the library
//! itself — [`CoverageReport`](crate::CoverageReport) values produced
//! under a tripped token are unspecified.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many faults a simulation loop processes between token checks. The
/// check is an atomic load (plus one `Instant::now` until a deadline
/// latches), so the stride only needs to be large enough to keep it out of
/// the per-fault path.
pub const CANCEL_CHECK_STRIDE: usize = 64;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// Remaining [`CancelToken::is_cancelled`] calls before the token
    /// self-trips (see [`CancelToken::after_checks`]).
    check_budget: Option<AtomicU64>,
}

/// A cloneable cooperative cancellation handle.
///
/// The default token never cancels and costs one branch per check. A
/// deadline token trips itself when the wall clock passes the deadline; a
/// manual token trips when any clone calls [`CancelToken::cancel`]. Once
/// tripped, a token stays tripped (the deadline result is latched into the
/// flag so later checks skip the clock read).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Option<Arc<Inner>>);

impl CancelToken {
    /// The never-cancelled token — what every options struct defaults to.
    #[must_use]
    pub const fn none() -> Self {
        Self(None)
    }

    /// A token that can only be tripped explicitly via
    /// [`CancelToken::cancel`].
    #[must_use]
    pub fn manual() -> Self {
        Self(Some(Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            deadline: None,
            check_budget: None,
        })))
    }

    /// A token that trips once the wall clock reaches `deadline` (and can
    /// still be tripped earlier via [`CancelToken::cancel`]).
    #[must_use]
    pub fn at(deadline: Instant) -> Self {
        Self(Some(Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            deadline: Some(deadline),
            check_budget: None,
        })))
    }

    /// A token whose first `checks` polls of [`CancelToken::is_cancelled`]
    /// return `false`, after which it stays tripped.
    ///
    /// Unlike a deadline this is wall-clock independent, so a test can
    /// land cancellation at an exact point of a deterministic cooperative
    /// loop (e.g. mid-way through a shrinking pass) and get the same
    /// trajectory on every run. Polls from any clone share one budget.
    #[must_use]
    pub fn after_checks(checks: u64) -> Self {
        Self(Some(Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            deadline: None,
            check_budget: Some(AtomicU64::new(checks)),
        })))
    }

    /// A token that trips `budget` from now.
    #[must_use]
    pub fn with_budget(budget: Duration) -> Self {
        Self::at(Instant::now() + budget)
    }

    /// Trips the token (idempotent; a no-op on the default token).
    pub fn cancel(&self) {
        if let Some(inner) = &self.0 {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether cancellation was requested or the deadline has passed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        let Some(inner) = &self.0 else { return false };
        if inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(budget) = &inner.check_budget {
            let decremented = budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                .is_ok();
            if !decremented {
                // Budget exhausted: latch like an expired deadline.
                inner.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        match inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                // Latch so subsequent checks are a plain atomic load.
                inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

impl PartialEq for CancelToken {
    /// Tokens compare by identity (clones of one token are equal), so
    /// options structs carrying a token can keep deriving `PartialEq`.
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_cancels() {
        let t = CancelToken::none();
        assert!(!t.is_cancelled());
        t.cancel(); // no-op, must not panic
        assert!(!t.is_cancelled());
    }

    #[test]
    fn manual_token_trips_across_clones() {
        let t = CancelToken::manual();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled(), "cancel must be visible through clones");
        assert!(t.is_cancelled(), "and stay tripped");
    }

    #[test]
    fn deadline_token_trips_after_the_budget() {
        let t = CancelToken::with_budget(Duration::from_millis(0));
        assert!(t.is_cancelled(), "zero budget is already expired");
        let later = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(!later.is_cancelled(), "distant deadline is live");
        later.cancel();
        assert!(later.is_cancelled(), "manual cancel beats the deadline");
    }

    #[test]
    fn check_budget_token_trips_at_the_exact_poll() {
        let t = CancelToken::after_checks(3);
        let clone = t.clone();
        assert!(!t.is_cancelled());
        assert!(!clone.is_cancelled(), "clones share the budget");
        assert!(!t.is_cancelled());
        assert!(t.is_cancelled(), "fourth poll exhausts a budget of 3");
        assert!(clone.is_cancelled(), "and the trip is latched");
        assert!(CancelToken::after_checks(0).is_cancelled(), "zero budget trips at once");
        let live = CancelToken::after_checks(u64::MAX);
        assert!(!live.is_cancelled());
        live.cancel();
        assert!(live.is_cancelled(), "manual cancel beats the budget");
    }

    #[test]
    fn tokens_compare_by_identity() {
        let a = CancelToken::manual();
        let b = CancelToken::manual();
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
        assert_eq!(CancelToken::none(), CancelToken::default());
        assert_ne!(a, CancelToken::none());
    }
}
