//! Fault-coverage evaluation by serial fault simulation.

use std::fmt;

use mbist_mem::{
    class_universe, class_universe_sampled, FaultClass, FaultKind, MemGeometry,
    UniverseSpec,
};

use crate::cancel::CancelToken;
use crate::expand::ExpandOptions;
use crate::fanout::detect_universe_trace;
use crate::test::MarchTest;
use crate::trace::{CompiledTrace, SimEngine};

/// Coverage of one fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassCoverage {
    /// The fault class.
    pub class: FaultClass,
    /// Faults detected.
    pub detected: usize,
    /// Faults simulated.
    pub total: usize,
}

impl ClassCoverage {
    /// Detection ratio in `0.0..=1.0` (1.0 for an empty universe).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }

    /// Whether every simulated fault was detected.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.detected == self.total
    }
}

/// Options for coverage evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageOptions {
    /// Fault classes to simulate.
    pub classes: Vec<FaultClass>,
    /// Universe-generation parameters.
    pub spec: UniverseSpec,
    /// Deterministic subsampling cap per class (stride sampling), to keep
    /// quadratic universes tractable on large memories.
    pub max_faults_per_class: Option<usize>,
    /// Expansion options (backgrounds, ports).
    pub expand: Option<ExpandOptions>,
    /// Worker threads for the fault fan-out: `Some(n)` forces `n` workers
    /// (1 = serial), `None` uses the host's available parallelism. The
    /// report is bit-for-bit identical for every setting.
    pub jobs: Option<usize>,
    /// Fault-simulation engine ([`SimEngine::Sliced`] by default). The
    /// report is bit-for-bit identical for every engine.
    pub engine: SimEngine,
    /// Cooperative cancellation handle, checked between classes and once
    /// per fault chunk inside the fan-out. A tripped token makes
    /// [`evaluate_coverage`] return early with a **partial, unspecified**
    /// report — the caller must check [`CancelToken::is_cancelled`] and
    /// discard it. The default token never cancels and costs one branch
    /// per check.
    pub cancel: CancelToken,
}

impl Default for CoverageOptions {
    fn default() -> Self {
        Self {
            classes: FaultClass::ALL.to_vec(),
            spec: UniverseSpec::default(),
            max_faults_per_class: Some(512),
            expand: None,
            jobs: None,
            engine: SimEngine::default(),
            cancel: CancelToken::none(),
        }
    }
}

/// A per-class coverage report for one test and geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Name of the evaluated march test.
    pub test: String,
    /// Geometry evaluated on.
    pub geometry: MemGeometry,
    /// Per-class rows, in [`FaultClass::ALL`] order restricted to the
    /// requested classes.
    pub rows: Vec<ClassCoverage>,
}

impl CoverageReport {
    /// The row for a class, if it was evaluated.
    #[must_use]
    pub fn row(&self, class: FaultClass) -> Option<&ClassCoverage> {
        self.rows.iter().find(|r| r.class == class)
    }

    /// Overall detection ratio across all simulated faults.
    #[must_use]
    pub fn overall_ratio(&self) -> f64 {
        let total: usize = self.rows.iter().map(|r| r.total).sum();
        let detected: usize = self.rows.iter().map(|r| r.detected).sum();
        if total == 0 {
            1.0
        } else {
            detected as f64 / total as f64
        }
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} on {}:", self.test, self.geometry)?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<5} {:>5}/{:<5} ({:>5.1}%)",
                r.class.label(),
                r.detected,
                r.total,
                r.ratio() * 100.0
            )?;
        }
        Ok(())
    }
}

/// Evaluates the fault coverage of `test` on `geometry` by serial fault
/// simulation: detected iff any checked read miscompares.
///
/// The step stream is expanded and compiled into a [`CompiledTrace`] once
/// for all classes; each fault then replays only the accesses touching its
/// support set ([`SimEngine::Sliced`], the default) or the whole stream on
/// a per-worker scratch array ([`SimEngine::Full`]). The per-class
/// universes fan out across worker threads ([`CoverageOptions::jobs`])
/// with a deterministic in-order reduction, so the report depends on
/// neither the worker count nor the engine.
///
/// # Examples
///
/// ```
/// use mbist_march::{evaluate_coverage, library, CoverageOptions};
/// use mbist_mem::{FaultClass, MemGeometry};
///
/// let report = evaluate_coverage(
///     &library::march_c(),
///     &MemGeometry::bit_oriented(16),
///     &CoverageOptions {
///         classes: vec![FaultClass::StuckAt, FaultClass::Transition],
///         ..CoverageOptions::default()
///     },
/// );
/// assert!(report.row(FaultClass::StuckAt).unwrap().is_complete());
/// assert!(report.row(FaultClass::Transition).unwrap().is_complete());
/// ```
#[must_use]
pub fn evaluate_coverage(
    test: &MarchTest,
    geometry: &MemGeometry,
    options: &CoverageOptions,
) -> CoverageReport {
    let expand_opts =
        options.expand.clone().unwrap_or_else(|| ExpandOptions::for_geometry(geometry));
    let trace = CompiledTrace::compile(test, geometry, &expand_opts);
    evaluate_coverage_trace(&trace, test.name(), options)
}

/// [`evaluate_coverage`] over a caller-supplied [`CompiledTrace`] — the
/// trace-sharing entry point for resident services that amortize one
/// compile across many queries. The report is identical to what
/// [`evaluate_coverage`] produces for the `(test, geometry, expand)` the
/// trace was compiled from; `options.expand` is ignored (the trace already
/// embeds its expansion).
#[must_use]
pub fn evaluate_coverage_trace(
    trace: &CompiledTrace,
    test_name: &str,
    options: &CoverageOptions,
) -> CoverageReport {
    let geometry = trace.geometry();
    let mut rows = Vec::new();
    for &class in &options.classes {
        if options.cancel.is_cancelled() {
            break;
        }
        // Sampled generation materializes only the stride-kept faults —
        // identical to `stride_sample(class_universe(..), max)`, but the
        // NPSF/decoder universes on kiloword geometries would otherwise
        // cost more to enumerate than to simulate.
        let universe = match options.max_faults_per_class {
            Some(max) => class_universe_sampled(&geometry, class, &options.spec, max),
            None => class_universe(&geometry, class, &options.spec),
        };
        let total = universe.len();
        let flags = detect_universe_trace(
            trace,
            &universe,
            options.jobs,
            options.engine,
            &options.cancel,
        );
        let detected = flags.iter().filter(|&&d| d).count();
        rows.push(ClassCoverage { class, detected, total });
    }
    CoverageReport { test: test_name.to_string(), geometry, rows }
}

/// Which simulation path one fault takes under a given engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultRoute {
    /// Lane-packed bit-parallel batch (shared canonical program).
    Packed,
    /// Sliced differential replay over the fault's support words (or the
    /// two-word decoder replay for address-decoder faults).
    Sliced,
    /// Full stream replay on a scratch array.
    Full,
}

/// The engine path [`detect_universe_trace`] takes for `fault` when run
/// with `engine` — the observable routing decision behind the packed
/// engine's whole-run/subset throughput gap.
#[must_use]
pub fn fault_route(engine: SimEngine, fault: FaultKind) -> FaultRoute {
    let sliceable = fault.decoder_words().is_some() || fault.support().is_some();
    match engine {
        SimEngine::Full => FaultRoute::Full,
        SimEngine::Sliced => {
            if sliceable {
                FaultRoute::Sliced
            } else {
                FaultRoute::Full
            }
        }
        SimEngine::Packed => {
            if crate::packed::batchable(fault) {
                FaultRoute::Packed
            } else if sliceable {
                FaultRoute::Sliced
            } else {
                FaultRoute::Full
            }
        }
    }
}

/// Per-class routing counts for one evaluated universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingRow {
    /// The fault class.
    pub class: FaultClass,
    /// Faults taking the lane-packed batch path.
    pub packed: usize,
    /// Faults taking the sliced replay path.
    pub sliced: usize,
    /// Faults taking the full-replay fallback.
    pub full: usize,
}

impl RoutingRow {
    /// Faults counted in this row.
    #[must_use]
    pub fn total(&self) -> usize {
        self.packed + self.sliced + self.full
    }
}

/// A `{class → packed|sliced|full}` routing breakdown for one coverage
/// run — makes the whole-run/subset gap observable instead of inferred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingBreakdown {
    /// Engine the breakdown was computed for.
    pub engine: SimEngine,
    /// One row per evaluated class, in evaluation order.
    pub rows: Vec<RoutingRow>,
}

impl RoutingBreakdown {
    /// Total faults across all rows.
    #[must_use]
    pub fn total(&self) -> usize {
        self.rows.iter().map(RoutingRow::total).sum()
    }

    /// Faults routed to the lane-packed path.
    #[must_use]
    pub fn batchable(&self) -> usize {
        self.rows.iter().map(|r| r.packed).sum()
    }

    /// Fraction of faults routed to the lane-packed path, or `None` for an
    /// empty universe — an unknown ratio is reported as absent, never
    /// fabricated.
    #[must_use]
    pub fn batchable_ratio(&self) -> Option<f64> {
        let total = self.total();
        (total > 0).then(|| self.batchable() as f64 / total as f64)
    }

    /// The row for a class, if it was evaluated.
    #[must_use]
    pub fn row(&self, class: FaultClass) -> Option<&RoutingRow> {
        self.rows.iter().find(|r| r.class == class)
    }
}

impl fmt::Display for RoutingBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "routing ({:?}):", self.engine)?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<5} {:>6} packed {:>6} sliced {:>6} full",
                r.class.label(),
                r.packed,
                r.sliced,
                r.full
            )?;
        }
        Ok(())
    }
}

/// Computes the routing breakdown for the exact universes
/// [`evaluate_coverage`] would simulate with `options` — same classes,
/// same spec, same stride cap.
#[must_use]
pub fn routing_breakdown(
    geometry: &MemGeometry,
    options: &CoverageOptions,
) -> RoutingBreakdown {
    let mut rows = Vec::new();
    for &class in &options.classes {
        let universe = match options.max_faults_per_class {
            Some(max) => class_universe_sampled(geometry, class, &options.spec, max),
            None => class_universe(geometry, class, &options.spec),
        };
        let mut row = RoutingRow { class, packed: 0, sliced: 0, full: 0 };
        for &fault in &universe {
            match fault_route(options.engine, fault) {
                FaultRoute::Packed => row.packed += 1,
                FaultRoute::Sliced => row.sliced += 1,
                FaultRoute::Full => row.full += 1,
            }
        }
        rows.push(row);
    }
    RoutingBreakdown { engine: options.engine, rows }
}

/// Deterministic stride subsampling: keeps the last element of each of
/// `max` equal buckets — indices `ceil(k·len/max) − 1` for `k = 1..=max` —
/// preserving order and always including the final element. Returns the
/// input unchanged when it already fits (or when `max == 0`, meaning
/// "no cap"); otherwise the output length is exactly `max`.
pub(crate) fn stride_sample<T>(items: Vec<T>, max: usize) -> Vec<T> {
    let len = items.len();
    if max == 0 || len <= max {
        return items;
    }
    let mut keep = (1..=max).map(|k| (k * len).div_ceil(max) - 1);
    let mut next = keep.next();
    let mut out = Vec::with_capacity(max);
    for (i, item) in items.into_iter().enumerate() {
        if next == Some(i) {
            out.push(item);
            next = keep.next();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    /// The bucket-boundary condition the sampler historically used; kept as
    /// an oracle so the closed-form rewrite provably selects the same
    /// indices.
    fn stride_sample_oracle<T>(items: Vec<T>, max: usize) -> Vec<T> {
        if items.len() <= max || max == 0 {
            return items;
        }
        let len = items.len();
        let mut out = Vec::with_capacity(max);
        for (i, item) in items.into_iter().enumerate() {
            if (i * max / len != (i + 1) * max / len || i == len - 1 && out.len() < max)
                && out.len() < max
            {
                out.push(item);
            }
        }
        out
    }

    #[test]
    fn routing_breakdown_counts_every_sampled_fault() {
        let g = MemGeometry::bit_oriented(64);
        for engine in [SimEngine::Full, SimEngine::Sliced, SimEngine::Packed] {
            let options = CoverageOptions { engine, ..CoverageOptions::default() };
            let b = routing_breakdown(&g, &options);
            let mut total = 0;
            for &class in &options.classes {
                let u = class_universe_sampled(&g, class, &options.spec, 512);
                let row = b.row(class).expect("every class gets a row");
                assert_eq!(row.total(), u.len(), "{engine:?}/{class:?}");
                total += u.len();
            }
            assert_eq!(b.total(), total, "rows cover the whole sample");
            match engine {
                SimEngine::Full => {
                    assert_eq!(b.batchable(), 0);
                    assert!(b.rows.iter().all(|r| r.packed == 0 && r.sliced == 0));
                }
                SimEngine::Sliced => {
                    assert_eq!(b.batchable(), 0);
                    assert_eq!(b.rows.iter().map(|r| r.full).sum::<usize>(), 0);
                }
                SimEngine::Packed => {
                    // Every address-local class vectorizes now; only the
                    // decoder classes ride the sliced two-word replay.
                    let decoder = b.row(FaultClass::AddressDecoder).unwrap();
                    assert_eq!(decoder.packed, 0);
                    assert_eq!(decoder.sliced, decoder.total());
                    for r in &b.rows {
                        if r.class != FaultClass::AddressDecoder {
                            assert_eq!(r.packed, r.total(), "{:?}", r.class);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_routing_breakdown_reports_no_ratio() {
        let g = MemGeometry::bit_oriented(8);
        let options = CoverageOptions { classes: vec![], ..CoverageOptions::default() };
        let b = routing_breakdown(&g, &options);
        assert_eq!(b.total(), 0);
        assert_eq!(b.batchable_ratio(), None, "unknown ratios are absent, not 0/0");
    }

    #[test]
    fn stride_sampling_bounds_and_determinism() {
        let items: Vec<u32> = (0..100).collect();
        let s = stride_sample(items.clone(), 10);
        assert_eq!(s.len(), 10);
        let s2 = stride_sample(items.clone(), 10);
        assert_eq!(s, s2);
        let all = stride_sample(items.clone(), 200);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn stride_sampling_length_order_and_endpoint() {
        for len in 0usize..40 {
            let items: Vec<usize> = (0..len).collect();
            for max in 0usize..45 {
                let s = stride_sample(items.clone(), max);
                if max == 0 {
                    assert_eq!(s, items, "max=0 means no cap");
                    continue;
                }
                assert_eq!(s.len(), len.min(max), "len={len} max={max}");
                assert!(s.windows(2).all(|w| w[0] < w[1]), "order preserved");
                if len > 0 {
                    assert_eq!(*s.last().unwrap(), len - 1, "last element kept");
                }
            }
        }
    }

    #[test]
    fn stride_sampling_matches_historical_oracle() {
        for len in 0usize..40 {
            let items: Vec<usize> = (0..len).collect();
            for max in 0usize..45 {
                assert_eq!(
                    stride_sample(items.clone(), max),
                    stride_sample_oracle(items.clone(), max),
                    "len={len} max={max}"
                );
            }
        }
    }

    #[test]
    fn march_c_covers_the_classic_classes() {
        let g = MemGeometry::bit_oriented(16);
        let report = evaluate_coverage(
            &library::march_c(),
            &g,
            &CoverageOptions {
                classes: vec![
                    FaultClass::StuckAt,
                    FaultClass::Transition,
                    FaultClass::AddressDecoder,
                    FaultClass::CouplingInversion,
                    FaultClass::CouplingIdempotent,
                ],
                max_faults_per_class: None,
                ..CoverageOptions::default()
            },
        );
        for row in &report.rows {
            assert!(
                row.is_complete(),
                "march C should fully cover {}: {}/{}",
                row.class,
                row.detected,
                row.total
            );
        }
    }

    #[test]
    fn mats_plus_misses_coupling() {
        let g = MemGeometry::bit_oriented(16);
        let report = evaluate_coverage(
            &library::mats_plus(),
            &g,
            &CoverageOptions {
                classes: vec![FaultClass::CouplingIdempotent],
                max_faults_per_class: None,
                ..CoverageOptions::default()
            },
        );
        let row = report.row(FaultClass::CouplingIdempotent).unwrap();
        assert!(!row.is_complete(), "MATS+ must miss some CFid");
        assert!(row.detected > 0, "but not all of them");
    }

    #[test]
    fn retention_column_separates_plus_variants() {
        let g = MemGeometry::bit_oriented(8);
        let opts = CoverageOptions {
            classes: vec![FaultClass::Retention],
            max_faults_per_class: None,
            ..CoverageOptions::default()
        };
        let c = evaluate_coverage(&library::march_c(), &g, &opts);
        let cp = evaluate_coverage(&library::march_c_plus(), &g, &opts);
        assert_eq!(c.row(FaultClass::Retention).unwrap().detected, 0);
        assert!(cp.row(FaultClass::Retention).unwrap().is_complete());
    }

    #[test]
    fn engines_produce_identical_reports() {
        let g = MemGeometry::bit_oriented(16);
        for test in [library::march_c(), library::march_c_plus_plus()] {
            let full = evaluate_coverage(
                &test,
                &g,
                &CoverageOptions { engine: SimEngine::Full, ..CoverageOptions::default() },
            );
            for engine in [SimEngine::Sliced, SimEngine::Packed] {
                let other = evaluate_coverage(
                    &test,
                    &g,
                    &CoverageOptions { engine, ..CoverageOptions::default() },
                );
                assert_eq!(
                    full,
                    other,
                    "{} report must not depend on engine ({engine:?})",
                    test.name()
                );
            }
        }
    }

    #[test]
    fn report_display_lists_rows() {
        let g = MemGeometry::bit_oriented(4);
        let r = evaluate_coverage(
            &library::mats(),
            &g,
            &CoverageOptions {
                classes: vec![FaultClass::StuckAt],
                ..CoverageOptions::default()
            },
        );
        let s = r.to_string();
        assert!(s.contains("SAF"));
        assert!(s.contains("mats"));
    }

    #[test]
    fn overall_ratio_aggregates() {
        let r = CoverageReport {
            test: "t".into(),
            geometry: MemGeometry::bit_oriented(4),
            rows: vec![
                ClassCoverage { class: FaultClass::StuckAt, detected: 8, total: 8 },
                ClassCoverage { class: FaultClass::Retention, detected: 0, total: 8 },
            ],
        };
        assert_eq!(r.overall_ratio(), 0.5);
    }
}
