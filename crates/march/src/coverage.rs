//! Fault-coverage evaluation by serial fault simulation.

use std::fmt;

use mbist_mem::{class_universe, FaultClass, MemGeometry, MemoryArray, UniverseSpec};

use crate::expand::{expand_with, ExpandOptions};
use crate::runner::run_steps;
use crate::test::MarchTest;

/// Coverage of one fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassCoverage {
    /// The fault class.
    pub class: FaultClass,
    /// Faults detected.
    pub detected: usize,
    /// Faults simulated.
    pub total: usize,
}

impl ClassCoverage {
    /// Detection ratio in `0.0..=1.0` (1.0 for an empty universe).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }

    /// Whether every simulated fault was detected.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.detected == self.total
    }
}

/// Options for coverage evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageOptions {
    /// Fault classes to simulate.
    pub classes: Vec<FaultClass>,
    /// Universe-generation parameters.
    pub spec: UniverseSpec,
    /// Deterministic subsampling cap per class (stride sampling), to keep
    /// quadratic universes tractable on large memories.
    pub max_faults_per_class: Option<usize>,
    /// Expansion options (backgrounds, ports).
    pub expand: Option<ExpandOptions>,
}

impl Default for CoverageOptions {
    fn default() -> Self {
        Self {
            classes: FaultClass::ALL.to_vec(),
            spec: UniverseSpec::default(),
            max_faults_per_class: Some(512),
            expand: None,
        }
    }
}

/// A per-class coverage report for one test and geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Name of the evaluated march test.
    pub test: String,
    /// Geometry evaluated on.
    pub geometry: MemGeometry,
    /// Per-class rows, in [`FaultClass::ALL`] order restricted to the
    /// requested classes.
    pub rows: Vec<ClassCoverage>,
}

impl CoverageReport {
    /// The row for a class, if it was evaluated.
    #[must_use]
    pub fn row(&self, class: FaultClass) -> Option<&ClassCoverage> {
        self.rows.iter().find(|r| r.class == class)
    }

    /// Overall detection ratio across all simulated faults.
    #[must_use]
    pub fn overall_ratio(&self) -> f64 {
        let total: usize = self.rows.iter().map(|r| r.total).sum();
        let detected: usize = self.rows.iter().map(|r| r.detected).sum();
        if total == 0 {
            1.0
        } else {
            detected as f64 / total as f64
        }
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} on {}:", self.test, self.geometry)?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<5} {:>5}/{:<5} ({:>5.1}%)",
                r.class.label(),
                r.detected,
                r.total,
                r.ratio() * 100.0
            )?;
        }
        Ok(())
    }
}

/// Evaluates the fault coverage of `test` on `geometry` by serial fault
/// simulation: one fresh array per fault, detected iff any checked read
/// miscompares.
///
/// # Examples
///
/// ```
/// use mbist_march::{evaluate_coverage, library, CoverageOptions};
/// use mbist_mem::{FaultClass, MemGeometry};
///
/// let report = evaluate_coverage(
///     &library::march_c(),
///     &MemGeometry::bit_oriented(16),
///     &CoverageOptions {
///         classes: vec![FaultClass::StuckAt, FaultClass::Transition],
///         ..CoverageOptions::default()
///     },
/// );
/// assert!(report.row(FaultClass::StuckAt).unwrap().is_complete());
/// assert!(report.row(FaultClass::Transition).unwrap().is_complete());
/// ```
#[must_use]
pub fn evaluate_coverage(
    test: &MarchTest,
    geometry: &MemGeometry,
    options: &CoverageOptions,
) -> CoverageReport {
    let expand_opts = options
        .expand
        .clone()
        .unwrap_or_else(|| ExpandOptions::for_geometry(geometry));
    let steps = expand_with(test, geometry, &expand_opts);

    let mut rows = Vec::new();
    for &class in &options.classes {
        let mut universe = class_universe(geometry, class, &options.spec);
        if let Some(max) = options.max_faults_per_class {
            universe = stride_sample(universe, max);
        }
        let total = universe.len();
        let mut detected = 0;
        for fault in universe {
            let mut mem = MemoryArray::with_fault(*geometry, fault)
                .expect("generated universes fit the geometry");
            if !run_steps(&mut mem, &steps).passed() {
                detected += 1;
            }
        }
        rows.push(ClassCoverage { class, detected, total });
    }
    CoverageReport { test: test.name().to_string(), geometry: *geometry, rows }
}

/// Deterministic stride subsampling preserving order and endpoints.
fn stride_sample<T>(items: Vec<T>, max: usize) -> Vec<T> {
    if items.len() <= max || max == 0 {
        return items;
    }
    let len = items.len();
    let mut out = Vec::with_capacity(max);
    for (i, item) in items.into_iter().enumerate() {
        // keep item i iff it starts a new bucket of size len/max
        if (i * max / len != (i + 1) * max / len || i == len - 1 && out.len() < max)
            && out.len() < max {
                out.push(item);
            }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn stride_sampling_bounds_and_determinism() {
        let items: Vec<u32> = (0..100).collect();
        let s = stride_sample(items.clone(), 10);
        assert_eq!(s.len(), 10);
        let s2 = stride_sample(items.clone(), 10);
        assert_eq!(s, s2);
        let all = stride_sample(items.clone(), 200);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn march_c_covers_the_classic_classes() {
        let g = MemGeometry::bit_oriented(16);
        let report = evaluate_coverage(
            &library::march_c(),
            &g,
            &CoverageOptions {
                classes: vec![
                    FaultClass::StuckAt,
                    FaultClass::Transition,
                    FaultClass::AddressDecoder,
                    FaultClass::CouplingInversion,
                    FaultClass::CouplingIdempotent,
                ],
                max_faults_per_class: None,
                ..CoverageOptions::default()
            },
        );
        for row in &report.rows {
            assert!(
                row.is_complete(),
                "march C should fully cover {}: {}/{}",
                row.class,
                row.detected,
                row.total
            );
        }
    }

    #[test]
    fn mats_plus_misses_coupling() {
        let g = MemGeometry::bit_oriented(16);
        let report = evaluate_coverage(
            &library::mats_plus(),
            &g,
            &CoverageOptions {
                classes: vec![FaultClass::CouplingIdempotent],
                max_faults_per_class: None,
                ..CoverageOptions::default()
            },
        );
        let row = report.row(FaultClass::CouplingIdempotent).unwrap();
        assert!(!row.is_complete(), "MATS+ must miss some CFid");
        assert!(row.detected > 0, "but not all of them");
    }

    #[test]
    fn retention_column_separates_plus_variants() {
        let g = MemGeometry::bit_oriented(8);
        let opts = CoverageOptions {
            classes: vec![FaultClass::Retention],
            max_faults_per_class: None,
            ..CoverageOptions::default()
        };
        let c = evaluate_coverage(&library::march_c(), &g, &opts);
        let cp = evaluate_coverage(&library::march_c_plus(), &g, &opts);
        assert_eq!(c.row(FaultClass::Retention).unwrap().detected, 0);
        assert!(cp.row(FaultClass::Retention).unwrap().is_complete());
    }

    #[test]
    fn report_display_lists_rows() {
        let g = MemGeometry::bit_oriented(4);
        let r = evaluate_coverage(
            &library::mats(),
            &g,
            &CoverageOptions {
                classes: vec![FaultClass::StuckAt],
                ..CoverageOptions::default()
            },
        );
        let s = r.to_string();
        assert!(s.contains("SAF"));
        assert!(s.contains("mats"));
    }

    #[test]
    fn overall_ratio_aggregates() {
        let r = CoverageReport {
            test: "t".into(),
            geometry: MemGeometry::bit_oriented(4),
            rows: vec![
                ClassCoverage { class: FaultClass::StuckAt, detected: 8, total: 8 },
                ClassCoverage { class: FaultClass::Retention, detected: 0, total: 8 },
            ],
        };
        assert_eq!(r.overall_ratio(), 0.5);
    }
}
