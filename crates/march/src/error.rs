//! Error types for the march crate.

use std::error::Error;
use std::fmt;

/// Errors produced by march-test parsing and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MarchError {
    /// March notation could not be parsed.
    Parse {
        /// Human-readable description of the offending token.
        message: String,
    },
}

impl fmt::Display for MarchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarchError::Parse { message } => write!(f, "invalid march notation: {message}"),
        }
    }
}

impl Error for MarchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<MarchError>();
    }

    #[test]
    fn display_includes_message() {
        let e = MarchError::Parse { message: "bad token `x`".into() };
        assert!(e.to_string().contains("bad token `x`"));
    }
}
