//! Executing expanded test streams against a memory array.

use mbist_mem::{MemGeometry, MemoryArray, Miscompare, Operation, TestStep};

use crate::expand::{expand_with, ExpandOptions};
use crate::test::MarchTest;

/// The outcome of running a test stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Every failing checked read, in occurrence order.
    pub miscompares: Vec<Miscompare>,
    /// Bus cycles executed.
    pub bus_cycles: u64,
    /// Reads executed.
    pub reads: u64,
    /// Writes executed.
    pub writes: u64,
    /// Total pause time in nanoseconds.
    pub pause_ns: f64,
}

impl RunReport {
    /// Whether the memory passed (no miscompares).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.miscompares.is_empty()
    }
}

/// Drives `steps` into `mem`, checking every read that carries an
/// expectation.
///
/// # Examples
///
/// ```
/// use mbist_march::{expand, library, run_steps};
/// use mbist_mem::{CellId, FaultKind, MemGeometry, MemoryArray};
///
/// let g = MemGeometry::bit_oriented(8);
/// let mut mem = MemoryArray::with_fault(
///     g,
///     FaultKind::StuckAt { cell: CellId::bit_oriented(2), value: true },
/// )?;
/// let report = run_steps(&mut mem, &expand(&library::march_c(), &g));
/// assert!(!report.passed());
/// assert!(report.miscompares.iter().all(|m| m.addr == 2));
/// # Ok::<(), mbist_mem::MemError>(())
/// ```
#[must_use]
pub fn run_steps(mem: &mut MemoryArray, steps: &[TestStep]) -> RunReport {
    let mut report = RunReport::default();
    for step in steps {
        match step {
            TestStep::Pause { ns } => {
                mem.pause(*ns);
                report.pause_ns += ns;
            }
            TestStep::Bus(cycle) => {
                report.bus_cycles += 1;
                match cycle.op {
                    Operation::Write(data) => {
                        report.writes += 1;
                        mem.write(cycle.port, cycle.addr, data);
                    }
                    Operation::Read => {
                        report.reads += 1;
                        let observed = mem.read(cycle.port, cycle.addr);
                        if let Some(expected) = cycle.expected {
                            if observed != expected {
                                report.miscompares.push(Miscompare {
                                    port: cycle.port,
                                    addr: cycle.addr,
                                    expected,
                                    observed,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    report
}

/// Drives `steps` into `mem`, returning `true` at the *first* failing
/// checked read — the early-exit core of serial fault simulation, where
/// the full [`RunReport`] (and the rest of the replay) is wasted work once
/// a fault has been caught.
///
/// Agrees with `!run_steps(mem, steps).passed()` on a fresh array: both
/// replay the identical step stream, this one just stops early.
///
/// # Examples
///
/// ```
/// use mbist_march::{expand, library, run_steps_detect};
/// use mbist_mem::{CellId, FaultKind, MemGeometry, MemoryArray};
///
/// let g = MemGeometry::bit_oriented(8);
/// let mut mem = MemoryArray::with_fault(
///     g,
///     FaultKind::StuckAt { cell: CellId::bit_oriented(2), value: true },
/// )?;
/// assert!(run_steps_detect(&mut mem, &expand(&library::march_c(), &g)));
/// # Ok::<(), mbist_mem::MemError>(())
/// ```
#[must_use]
pub fn run_steps_detect(mem: &mut MemoryArray, steps: &[TestStep]) -> bool {
    for step in steps {
        match step {
            TestStep::Pause { ns } => mem.pause(*ns),
            TestStep::Bus(cycle) => match cycle.op {
                Operation::Write(data) => mem.write(cycle.port, cycle.addr, data),
                Operation::Read => {
                    let observed = mem.read(cycle.port, cycle.addr);
                    if let Some(expected) = cycle.expected {
                        if observed != expected {
                            return true;
                        }
                    }
                }
            },
        }
    }
    false
}

/// Whether `test` detects `fault` on a memory of the given geometry
/// (serial fault simulation of a single fault).
///
/// Routes through a [`CompiledTrace`](crate::trace::CompiledTrace): sliced
/// differential replay for address-local faults, full replay otherwise —
/// same flags as a direct [`run_steps_detect`] on a fresh single-fault
/// array. Simulating many faults against one `(test, geometry)` pair is
/// cheaper via an explicitly shared [`CompiledTrace`](crate::CompiledTrace)
/// or [`evaluate_coverage`](crate::evaluate_coverage).
///
/// # Errors
///
/// Returns the underlying error if the fault does not fit the geometry.
pub fn detects(
    test: &MarchTest,
    geometry: &MemGeometry,
    fault: mbist_mem::FaultKind,
) -> Result<bool, mbist_mem::MemError> {
    if !fault.is_valid_for(geometry) {
        // Same error an injection into an array of this geometry reports.
        return MemoryArray::with_fault(*geometry, fault).map(|_| false);
    }
    let trace = crate::trace::CompiledTrace::compile(
        test,
        geometry,
        &ExpandOptions::for_geometry(geometry),
    );
    Ok(trace.detect(fault))
}

/// Whether `test` is clean on a fault-free memory (no false alarms),
/// regardless of initial memory contents.
#[must_use]
pub fn fault_free_clean(test: &MarchTest, geometry: &MemGeometry) -> bool {
    let steps = expand_with(test, geometry, &ExpandOptions::for_geometry(geometry));
    for seed in [0u64, 1, 0xDEAD_BEEF] {
        let mut mem = MemoryArray::new(*geometry);
        mem.randomize(seed);
        if !run_steps(&mut mem, &steps).passed() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use mbist_mem::{CellId, FaultKind};

    #[test]
    fn fault_free_runs_pass_for_all_library_tests() {
        let g = MemGeometry::bit_oriented(16);
        for t in library::all() {
            assert!(fault_free_clean(&t, &g), "{} false-alarmed", t.name());
        }
    }

    #[test]
    fn report_counts_reads_and_writes() {
        let g = MemGeometry::bit_oriented(4);
        let mut mem = MemoryArray::new(g);
        let steps = crate::expand::expand(&library::march_c(), &g);
        let r = run_steps(&mut mem, &steps);
        assert_eq!(r.bus_cycles, 40);
        assert_eq!(r.reads, 20);
        assert_eq!(r.writes, 20);
        assert!(r.passed());
    }

    #[test]
    fn march_c_detects_saf_and_reports_address() {
        let g = MemGeometry::bit_oriented(8);
        for value in [false, true] {
            let detected = detects(
                &library::march_c(),
                &g,
                FaultKind::StuckAt { cell: CellId::bit_oriented(5), value },
            )
            .unwrap();
            assert!(detected);
        }
    }

    #[test]
    fn mats_misses_transition_fault_but_march_c_catches_it() {
        let g = MemGeometry::bit_oriented(8);
        let fault = FaultKind::Transition { cell: CellId::bit_oriented(3), rising: false };
        assert!(detects(&library::march_c(), &g, fault).unwrap());
        // MATS reads each state only immediately after writing the other,
        // so the 1→0 TF is caught… but plain MATS with ⇕ orders misses some
        // faults; the canonical miss: MATS misses TF↓? MATS: w0;(r0,w1);(r1).
        // 1→0 never exercised → must be missed.
        assert!(!detects(&library::mats(), &g, fault).unwrap());
    }

    #[test]
    fn retention_fault_needs_pause_variant() {
        let g = MemGeometry::bit_oriented(8);
        let fault = FaultKind::Retention {
            cell: CellId::bit_oriented(1),
            decays_to: true,
            retention_ns: 50_000.0,
        };
        assert!(!detects(&library::march_c(), &g, fault).unwrap());
        assert!(detects(&library::march_c_plus(), &g, fault).unwrap());
    }

    #[test]
    fn pull_open_fault_needs_triple_read_variant() {
        let g = MemGeometry::bit_oriented(8);
        let fault = FaultKind::PullOpen {
            cell: CellId::bit_oriented(6),
            good_reads: 2,
            decays_to: false,
        };
        assert!(!detects(&library::march_c_plus(), &g, fault).unwrap());
        assert!(detects(&library::march_c_plus_plus(), &g, fault).unwrap());
    }

    #[test]
    fn detect_agrees_with_full_replay() {
        let g = MemGeometry::bit_oriented(8);
        let steps = crate::expand::expand(&library::march_c(), &g);
        for value in [false, true] {
            for w in 0..8 {
                let fault = FaultKind::StuckAt { cell: CellId::bit_oriented(w), value };
                let mut a = MemoryArray::with_fault(g, fault).unwrap();
                let mut b = MemoryArray::with_fault(g, fault).unwrap();
                assert_eq!(
                    run_steps_detect(&mut a, &steps),
                    !run_steps(&mut b, &steps).passed()
                );
            }
        }
        let mut clean = MemoryArray::new(g);
        assert!(!run_steps_detect(&mut clean, &steps));
    }

    #[test]
    fn pause_time_is_accumulated() {
        let g = MemGeometry::bit_oriented(2);
        let mut mem = MemoryArray::new(g);
        let steps = crate::expand::expand(&library::march_c_plus(), &g);
        let r = run_steps(&mut mem, &steps);
        assert_eq!(r.pause_ns, 2.0 * library::DEFAULT_RETENTION_PAUSE_NS);
    }
}
