//! Population-batched candidate scoring for march-test synthesis.
//!
//! A synthesis search scores thousands of *candidate tests* against one
//! fixed fault universe — the transpose of the coverage workload
//! ([`crate::fanout`]), which scores one test against many faults. This
//! module owns the per-candidate hot path and fans *candidates* across
//! workers:
//!
//! - each worker keeps a [`TraceArena`] (allocation-free recompilation
//!   with element-prefix reuse) and a simulation scratch;
//! - the packed engine scores through a [`UniversePlan`]
//!   (`crate::packed`): the universe's batch grouping is precomputed once
//!   and replayed per candidate, so per-candidate routing work vanishes;
//! - scoring stops early once `stop_after` detections are decided (the
//!   lexicographic fitness only compares `min(detected, target)`).
//!
//! Results are joined **in candidate order** — never first-finished-wins —
//! so a search trajectory is byte-identical across worker counts: worker
//! `i` scores the `i`-th contiguous chunk of the batch, each candidate's
//! score is a pure function of `(candidate, universe, engine)`, and the
//! output slot is fixed by the candidate's index.

use std::time::Instant;

use mbist_mem::{FaultKind, MemGeometry};

use crate::cancel::CancelToken;
use crate::expand::ExpandOptions;
use crate::fanout::{resolve_jobs, WorkerScratch, MIN_CANDIDATES_PER_WORKER};
use crate::packed::UniversePlan;
use crate::test::MarchTest;
use crate::trace::{SimEngine, TraceArena};

/// Per-worker scoring state: the reusable compile arena, the simulation
/// scratch, and the worker's share of the compile/simulate time split.
#[derive(Default)]
struct EvalWorker {
    arena: TraceArena,
    scratch: WorkerScratch,
    compile_ns: u64,
    simulate_ns: u64,
}

/// Scores batches of candidate march tests against one fixed universe.
///
/// Construction precomputes everything reusable across candidates (the
/// packed engine's [`UniversePlan`]); scoring reuses per-worker arenas, so
/// steady-state evaluation allocates nothing. One scorer serves one
/// `(geometry, expand options, universe, engine)` configuration.
///
/// # Examples
///
/// ```
/// use mbist_march::{library, CandidateBatchScorer, CancelToken, ExpandOptions, SimEngine};
/// use mbist_mem::{class_universe, FaultClass, MemGeometry, UniverseSpec};
///
/// let g = MemGeometry::bit_oriented(16);
/// let universe = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
/// let mut scorer = CandidateBatchScorer::new(
///     g,
///     ExpandOptions::minimal(&g),
///     universe,
///     SimEngine::Packed,
/// );
/// let batch = [library::mats(), library::march_c()];
/// let scores = scorer.score_batch(&batch, Some(1), None, &CancelToken::none());
/// assert_eq!(scores.len(), 2);
/// assert!(scores[1].unwrap() >= scores[0].unwrap(), "march-c dominates mats");
/// ```
pub struct CandidateBatchScorer {
    geometry: MemGeometry,
    expand: ExpandOptions,
    universe: Vec<FaultKind>,
    engine: SimEngine,
    /// Precomputed packed batching (`None` for the sliced/full engines —
    /// per-trace eligibility is still re-checked per candidate).
    plan: Option<UniversePlan>,
    /// Whether worker arenas may skip the flat step stream: only the
    /// packed engine with a fully lane-packable universe never replays it.
    steps_free: bool,
    /// Words whose per-word op lists the plan actually reads
    /// ([`UniversePlan::support_mask`]); worker arenas compile only these
    /// when the plan path is taken, and densely recompile for the rare
    /// candidate the plan declines.
    support: Option<Vec<bool>>,
    workers: Vec<EvalWorker>,
}

impl CandidateBatchScorer {
    /// Builds a scorer for one search configuration.
    #[must_use]
    pub fn new(
        geometry: MemGeometry,
        expand: ExpandOptions,
        universe: Vec<FaultKind>,
        engine: SimEngine,
    ) -> Self {
        let plan = match engine {
            SimEngine::Packed => Some(UniversePlan::new(geometry, &universe)),
            _ => None,
        };
        let steps_free = engine == SimEngine::Packed
            && universe.iter().all(|&f| crate::packed::lane_packable(f));
        let support = match (&plan, steps_free) {
            (Some(plan), true) => Some(plan.support_mask()),
            _ => None,
        };
        Self {
            geometry,
            expand,
            universe,
            engine,
            plan,
            steps_free,
            support,
            workers: Vec::new(),
        }
    }

    /// The fault universe candidates are scored against.
    #[must_use]
    pub fn universe(&self) -> &[FaultKind] {
        &self.universe
    }

    /// The memory geometry candidates are expanded on.
    #[must_use]
    pub fn geometry(&self) -> MemGeometry {
        self.geometry
    }

    /// The expansion options candidates are expanded with.
    #[must_use]
    pub fn expand_options(&self) -> &ExpandOptions {
        &self.expand
    }

    /// The simulation engine scores are computed with.
    #[must_use]
    pub fn engine(&self) -> SimEngine {
        self.engine
    }

    /// Accumulated `(compile_ns, simulate_ns)` across all workers and
    /// calls — the bench's compile-vs-simulate time split.
    #[must_use]
    pub fn timing(&self) -> (u64, u64) {
        self.workers.iter().fold((0, 0), |(c, s), w| (c + w.compile_ns, s + w.simulate_ns))
    }

    /// Scores one candidate inline (worker 0): the number of universe
    /// faults it detects, capped at `stop_after` (see
    /// [`CompiledTrace::count_detected`] for the cap rule).
    pub fn score_one(&mut self, test: &MarchTest, stop_after: Option<usize>) -> usize {
        self.ensure_workers(1);
        score_candidate(
            test,
            &self.geometry,
            &self.expand,
            &self.universe,
            self.engine,
            self.plan.as_ref(),
            self.support.as_deref(),
            stop_after,
            &mut self.workers[0],
        )
    }

    /// Scores a whole batch, fanning candidates across `jobs` workers, and
    /// returns one slot per candidate **in batch order**.
    ///
    /// Internally candidates are processed in a sorted order that puts
    /// structurally similar candidates next to each other, so sibling
    /// mutations of one parent recompile only their differing suffix in
    /// the worker's arena. The processing order is invisible in the
    /// results: each candidate's score is a pure function of
    /// `(candidate, universe, engine)` — independent of the worker that
    /// computed it and of its neighbors — and lands in the slot fixed by
    /// its batch index, which is what keeps `--jobs 1` and `--jobs N`
    /// trajectories byte-identical.
    ///
    /// `None` slots are candidates left unscored by cancellation: each
    /// worker checks `cancel` before every candidate and stops its chunk
    /// when tripped.
    pub fn score_batch(
        &mut self,
        tests: &[MarchTest],
        jobs: Option<usize>,
        stop_after: Option<usize>,
        cancel: &CancelToken,
    ) -> Vec<Option<usize>> {
        let mut results: Vec<Option<usize>> = vec![None; tests.len()];
        if tests.is_empty() {
            return results;
        }
        // Prefix-sharing order: lexicographic on item structure, so
        // candidates with equal leading elements become neighbors and the
        // arena's element checkpoints carry across them.
        let mut order: Vec<usize> = (0..tests.len()).collect();
        order.sort_by_cached_key(|&i| structural_key(&tests[i]));
        let workers =
            resolve_jobs(jobs).min(tests.len() / MIN_CANDIDATES_PER_WORKER).max(1);
        self.ensure_workers(workers);
        let Self {
            geometry, expand, universe, engine, plan, support, workers: pool, ..
        } = self;
        let (geometry, expand, universe) = (&*geometry, &*expand, &universe[..]);
        let (engine, plan, support) = (*engine, plan.as_ref(), support.as_deref());
        if workers == 1 {
            let worker = &mut pool[0];
            for &idx in &order {
                if cancel.is_cancelled() {
                    break;
                }
                results[idx] = Some(score_candidate(
                    &tests[idx],
                    geometry,
                    expand,
                    universe,
                    engine,
                    plan,
                    support,
                    stop_after,
                    worker,
                ));
            }
            return results;
        }
        let chunk = tests.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = order
                .chunks(chunk)
                .zip(pool.iter_mut())
                .map(|(indices, worker)| {
                    let handle = scope.spawn(move || {
                        let mut scored: Vec<Option<usize>> = vec![None; indices.len()];
                        for (&idx, slot) in indices.iter().zip(&mut scored) {
                            if cancel.is_cancelled() {
                                break;
                            }
                            *slot = Some(score_candidate(
                                &tests[idx],
                                geometry,
                                expand,
                                universe,
                                engine,
                                plan,
                                support,
                                stop_after,
                                worker,
                            ));
                        }
                        scored
                    });
                    (indices, handle)
                })
                .collect();
            for (indices, handle) in handles {
                let scored = handle.join().expect("scoring worker panicked");
                for (&idx, score) in indices.iter().zip(scored) {
                    results[idx] = score;
                }
            }
        });
        results
    }

    fn ensure_workers(&mut self, n: usize) {
        while self.workers.len() < n {
            let mut worker = EvalWorker::default();
            worker.arena.set_skip_steps(self.steps_free);
            worker.arena.set_word_support(self.support.clone());
            self.workers.push(worker);
        }
    }
}

/// A lexicographic byte key over a candidate's item structure, used only
/// to sort a batch so candidates sharing leading elements are processed
/// consecutively (maximizing arena prefix reuse). Keys need not be
/// injective — an imperfect sort costs speed, never correctness.
fn structural_key(test: &MarchTest) -> Vec<u8> {
    use crate::element::{AddressOrder, MarchItem};
    use crate::op::MarchOp;
    let mut key = Vec::with_capacity(test.ops_per_cell() + 2 * test.items().len());
    for item in test.items() {
        match item {
            MarchItem::Pause { ns } => {
                key.push(3);
                key.extend_from_slice(&ns.to_bits().to_be_bytes());
            }
            MarchItem::Element(e) => {
                key.push(match e.order() {
                    AddressOrder::Up => 0,
                    AddressOrder::Down => 1,
                    AddressOrder::Any => 2,
                });
                for op in e.ops() {
                    key.push(match op {
                        MarchOp::Write(false) => 0x10,
                        MarchOp::Write(true) => 0x11,
                        MarchOp::Read(false) => 0x12,
                        MarchOp::Read(true) => 0x13,
                    });
                }
                key.push(0xff);
            }
        }
    }
    key
}

/// The per-candidate hot path: arena recompile, then a capped count
/// through the planned packed path when its signature holds, the general
/// engine path otherwise.
#[allow(clippy::too_many_arguments)]
fn score_candidate(
    test: &MarchTest,
    geometry: &MemGeometry,
    expand: &ExpandOptions,
    universe: &[FaultKind],
    engine: SimEngine,
    plan: Option<&UniversePlan>,
    support: Option<&[bool]>,
    stop_after: Option<usize>,
    worker: &mut EvalWorker,
) -> usize {
    let t0 = Instant::now();
    let trace = worker.arena.compile(test, geometry, expand);
    let t1 = Instant::now();
    let detected = match plan {
        Some(plan) if plan.applies(trace) => {
            plan.count_detected(trace, stop_after, &mut worker.scratch)
        }
        _ if support.is_some() => {
            // The arena compiled a support-restricted trace, but this
            // candidate declined the plan (golden miscompares, or a
            // geometry too small for the uniform certificate): the general
            // engine reads arbitrary words, so recompile complete. The
            // search never produces such candidates (canonical tests
            // replay clean), so the double compile stays off the hot path.
            worker.arena.set_word_support(None);
            let dense = worker.arena.compile(test, geometry, expand);
            let detected = dense.count_detected_with(
                universe,
                engine,
                stop_after,
                &mut worker.scratch,
            );
            worker.arena.set_word_support(support.map(<[bool]>::to_vec));
            detected
        }
        _ => trace.count_detected_with(universe, engine, stop_after, &mut worker.scratch),
    };
    worker.compile_ns += u64::try_from((t1 - t0).as_nanos()).unwrap_or(u64::MAX);
    worker.simulate_ns += u64::try_from(t1.elapsed().as_nanos()).unwrap_or(u64::MAX);
    detected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::trace::CompiledTrace;
    use mbist_mem::{subset_universe, FaultClass, UniverseSpec};

    fn scorer(engine: SimEngine, words: u64) -> CandidateBatchScorer {
        let g = MemGeometry::bit_oriented(words);
        let universe = subset_universe(&g, &FaultClass::ALL, &UniverseSpec::default(), 48);
        CandidateBatchScorer::new(g, ExpandOptions::minimal(&g), universe, engine)
    }

    #[test]
    fn batch_scores_equal_serial_reference_for_every_engine() {
        let batch: Vec<MarchTest> = library::all();
        for engine in [SimEngine::Full, SimEngine::Sliced, SimEngine::Packed] {
            let mut s = scorer(engine, 16);
            let reference: Vec<usize> = batch
                .iter()
                .map(|t| {
                    let trace =
                        CompiledTrace::compile(t, &s.geometry(), s.expand_options());
                    trace.count_detected(s.universe(), engine, None)
                })
                .collect();
            for jobs in [Some(1), Some(3), Some(16)] {
                let got = s.score_batch(&batch, jobs, None, &CancelToken::none());
                let got: Vec<usize> = got.into_iter().map(|s| s.unwrap()).collect();
                assert_eq!(got, reference, "{engine:?} jobs {jobs:?}");
            }
        }
    }

    #[test]
    fn score_one_and_batch_agree_with_caps() {
        let mut s = scorer(SimEngine::Packed, 16);
        let test = library::march_c();
        let full = s.score_one(&test, None);
        assert!(full > 4);
        for cap in [0, 1, full - 1, full, full + 7] {
            assert_eq!(s.score_one(&test, Some(cap)), full.min(cap));
            let batch = s.score_batch(
                std::slice::from_ref(&test),
                Some(2),
                Some(cap),
                &CancelToken::none(),
            );
            assert_eq!(batch[0], Some(full.min(cap)));
        }
    }

    #[test]
    fn sparse_compile_falls_back_densely_when_the_plan_declines() {
        use crate::element::{AddressOrder, MarchElement, MarchItem};
        use crate::op::MarchOp;
        // A read expecting `1` against a zeroed array replays with golden
        // miscompares, so the packed plan declines the candidate and the
        // scorer must recompile reference-complete for the general engine
        // — interleaved with clean candidates to exercise the support
        // restore in between.
        let dirty = MarchTest::new(
            "dirty",
            vec![MarchItem::Element(MarchElement::new(
                AddressOrder::Up,
                vec![MarchOp::Read(true), MarchOp::Write(true)],
            ))],
        );
        for words in [2, 16] {
            let mut s = scorer(SimEngine::Packed, words);
            let batch =
                vec![library::march_c(), dirty.clone(), library::mats(), dirty.clone()];
            let reference: Vec<usize> = batch
                .iter()
                .map(|t| {
                    let trace =
                        CompiledTrace::compile(t, &s.geometry(), s.expand_options());
                    trace.count_detected(s.universe(), SimEngine::Packed, None)
                })
                .collect();
            let got = s.score_batch(&batch, Some(1), None, &CancelToken::none());
            let got: Vec<usize> = got.into_iter().map(|s| s.unwrap()).collect();
            assert_eq!(got, reference, "{words} words");
        }
    }

    #[test]
    fn cancellation_leaves_unscored_slots_none() {
        let mut s = scorer(SimEngine::Packed, 16);
        let batch: Vec<MarchTest> = library::all();
        let cancel = CancelToken::manual();
        cancel.cancel();
        let got = s.score_batch(&batch, Some(2), None, &cancel);
        assert_eq!(got.len(), batch.len());
        assert!(got.iter().all(Option::is_none), "pre-cancelled batch scores nothing");
    }

    #[test]
    fn timing_split_accumulates() {
        let mut s = scorer(SimEngine::Packed, 32);
        let batch: Vec<MarchTest> = library::all();
        let _ = s.score_batch(&batch, Some(1), None, &CancelToken::none());
        let (compile, simulate) = s.timing();
        assert!(compile > 0, "compile time must be attributed");
        assert!(simulate > 0, "simulate time must be attributed");
    }
}
