//! Parallel fan-out of serial fault simulation over a fault universe.
//!
//! Serial fault simulation is embarrassingly parallel: each fault replays
//! the same pre-compiled trace with no shared mutable state. This module
//! chunks a universe across scoped worker threads (`std::thread::scope`,
//! no external dependencies) sharing one immutable [`CompiledTrace`] by
//! reference, and reduces the per-chunk verdicts back **in universe
//! order**, so the result is bit-for-bit identical regardless of worker
//! count or engine ([`SimEngine`]).
//!
//! Each worker owns one [`WorkerScratch`]: faults taking the full-replay
//! path (the [`SimEngine::Full`] engine, or a sliced-engine fallback for
//! address-decoder faults) reuse its scratch [`MemoryArray`], reset
//! between faults, and sliced replays reuse its sense-latch buffer — an
//! allocation-free steady state instead of per-fault allocations. Under
//! [`SimEngine::Packed`] the chunk itself is the work unit: the worker
//! batches its faults into `u64` lanes and replays the trace once per
//! batch (see [`crate::packed`]).
//!
//! Workers are panic-isolated: a chunk whose worker dies (however it dies)
//! is transparently re-simulated serially on the reducing thread, so one
//! poisoned fault degrades throughput, never the report.
//!
//! Every entry point carries a [`CancelToken`], checked once per
//! [`CANCEL_CHECK_STRIDE`](crate::CANCEL_CHECK_STRIDE) faults (and per
//! packed batch): a tripped token makes workers return early with partial
//! flags, which callers must discard after checking the token.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use mbist_mem::{FaultKind, MemGeometry, MemoryArray, TestStep};

use crate::cancel::{CancelToken, CANCEL_CHECK_STRIDE};
use crate::packed;
use crate::sliced::SlicedScratch;
use crate::trace::{CompiledTrace, SimEngine};

/// Reusable per-worker simulation scratch: the lazily-created full-replay
/// array plus the sliced engine's sense-latch buffer.
#[derive(Default)]
pub(crate) struct WorkerScratch {
    mem: Option<MemoryArray>,
    sliced: SlicedScratch,
}

/// Below this many faults per worker, thread spawn overhead outweighs the
/// simulation work — small whole-universe runs were measurably *slower*
/// parallel than serial — so the chunking rounds the worker count down
/// until every worker holds at least a floor's worth of faults.
const MIN_FAULTS_PER_WORKER: usize = 256;

/// The packed engine amortizes one trace walk over a 256-lane batch, so a
/// worker needs proportionally more faults before fan-out pays for itself
/// (splitting also fragments batches: two half-full batches walk the trace
/// twice).
const MIN_FAULTS_PER_PACKED_WORKER: usize = 1024;

/// Candidate-batch analogue of the fault floors ([`crate::score`]): one
/// candidate is a whole compile+simulate unit (tens of microseconds), so
/// the break-even batch size per worker is far smaller than for faults.
pub(crate) const MIN_CANDIDATES_PER_WORKER: usize = 4;

/// The engine-aware fan-out floor. Worker count is clamped to
/// `universe.len() / floor`, so every spawned worker simulates at least a
/// floor's worth — jobs=1 and jobs=N stay bit-identical either way; the
/// floor only moves the parallelism break-even point.
fn min_faults_per_worker(engine: SimEngine) -> usize {
    match engine {
        SimEngine::Packed => MIN_FAULTS_PER_PACKED_WORKER,
        _ => MIN_FAULTS_PER_WORKER,
    }
}

/// Resolves a `jobs` request to a concrete worker count.
///
/// `None` asks the host ([`std::thread::available_parallelism`], falling
/// back to 1); `Some(n)` forces `n` (clamped to at least 1).
pub(crate) fn resolve_jobs(jobs: Option<usize>) -> usize {
    match jobs {
        Some(n) => n.max(1),
        None => thread::available_parallelism().map_or(1, NonZeroUsize::get),
    }
}

/// Compiles `steps` once and simulates every fault in `universe` against
/// the trace, returning one detection flag per fault, in universe order.
pub(crate) fn detect_universe(
    geometry: &MemGeometry,
    steps: &[TestStep],
    universe: &[FaultKind],
    jobs: Option<usize>,
    engine: SimEngine,
    cancel: &CancelToken,
) -> Vec<bool> {
    let trace = CompiledTrace::from_steps(*geometry, steps);
    detect_universe_trace(&trace, universe, jobs, engine, cancel)
}

/// Simulates every fault in `universe` against a pre-compiled trace
/// (shared by reference across the workers), returning one detection flag
/// per fault, in universe order.
///
/// Parallelism and engine only change wall-clock time, never the flags.
///
/// # Panics
///
/// Panics if a fault in `universe` does not fit the trace geometry
/// (generated universes always fit).
pub(crate) fn detect_universe_trace(
    trace: &CompiledTrace,
    universe: &[FaultKind],
    jobs: Option<usize>,
    engine: SimEngine,
    cancel: &CancelToken,
) -> Vec<bool> {
    detect_universe_resilient(trace, universe, jobs, engine, cancel, None)
}

/// [`detect_universe_trace`] with a test-only poison hook: while the
/// counter is positive, each worker-side fault simulation decrements it and
/// panics — modeling a worker thread dying mid-chunk. The hook is scoped
/// (no global state), so concurrently running tests cannot poison each
/// other.
fn detect_universe_resilient(
    trace: &CompiledTrace,
    universe: &[FaultKind],
    jobs: Option<usize>,
    engine: SimEngine,
    cancel: &CancelToken,
    poison: Option<&AtomicUsize>,
) -> Vec<bool> {
    let workers =
        resolve_jobs(jobs).min(universe.len() / min_faults_per_worker(engine)).max(1);
    if workers <= 1 {
        return run_chunk(
            trace,
            universe,
            engine,
            &mut WorkerScratch::default(),
            cancel,
            None,
        );
    }
    let chunk = universe.len().div_ceil(workers);
    thread::scope(|scope| {
        let handles: Vec<_> = universe
            .chunks(chunk)
            .map(|faults| {
                let handle = scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        let mut scratch = WorkerScratch::default();
                        run_chunk(trace, faults, engine, &mut scratch, cancel, poison)
                    }))
                    .ok()
                });
                (faults, handle)
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|(faults, handle)| match handle.join() {
                Ok(Some(flags)) => flags,
                // The worker died (caught panic, or one that escaped the
                // isolation): degrade to a serial per-fault re-run of its
                // chunk so the report stays complete and bit-identical
                // (the packed engine's per-fault route is the sliced one).
                Ok(None) | Err(_) => {
                    let fallback = match engine {
                        SimEngine::Packed => SimEngine::Sliced,
                        other => other,
                    };
                    let mut scratch = WorkerScratch::default();
                    faults
                        .iter()
                        .take_while(|_| !cancel.is_cancelled())
                        .map(|&f| detect_one(trace, f, fallback, &mut scratch))
                        .collect()
                }
            })
            .collect()
    })
}

/// Simulates one chunk through the selected engine: per fault for the
/// full/sliced engines, batched lane-parallel for the packed engine. The
/// poison hook charges once per fault regardless of engine, so the
/// worker-death resilience tests behave uniformly.
fn run_chunk(
    trace: &CompiledTrace,
    faults: &[FaultKind],
    engine: SimEngine,
    scratch: &mut WorkerScratch,
    cancel: &CancelToken,
    poison: Option<&AtomicUsize>,
) -> Vec<bool> {
    match engine {
        SimEngine::Packed => {
            faults.iter().for_each(|_| maybe_trip(poison));
            packed::detect_chunk(trace, faults, scratch, cancel)
        }
        _ => {
            let mut flags = Vec::with_capacity(faults.len());
            for batch in faults.chunks(CANCEL_CHECK_STRIDE) {
                if cancel.is_cancelled() {
                    break;
                }
                flags.extend(batch.iter().map(|&f| {
                    maybe_trip(poison);
                    detect_one(trace, f, engine, scratch)
                }));
            }
            flags
        }
    }
}

/// Decrements the poison counter and panics while it is positive.
fn maybe_trip(poison: Option<&AtomicUsize>) {
    if let Some(counter) = poison {
        let armed = counter
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok();
        if armed {
            panic!("injected fault-simulation worker poison");
        }
    }
}

/// One fault through the selected per-fault engine route (the packed
/// engine routes its non-batchable faults here with `Sliced`); the
/// lazily-created scratch array is reused (reset between faults) whenever
/// a full replay is needed, and sliced replays reuse the scratch's
/// sense-latch buffer.
pub(crate) fn detect_one(
    trace: &CompiledTrace,
    fault: FaultKind,
    engine: SimEngine,
    scratch: &mut WorkerScratch,
) -> bool {
    if engine != SimEngine::Full {
        if let Some(flag) =
            crate::sliced::detect_sliced_with(trace, fault, &mut scratch.sliced)
        {
            return flag;
        }
    }
    let mem = scratch.mem.get_or_insert_with(|| MemoryArray::new(trace.geometry()));
    trace.detect_full(fault, mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::expand;
    use crate::library;
    use mbist_mem::{class_universe, FaultClass, UniverseSpec};

    #[test]
    fn resolve_jobs_clamps_and_defaults() {
        assert_eq!(resolve_jobs(Some(4)), 4);
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn worker_count_and_engine_do_not_change_flags() {
        let g = MemGeometry::bit_oriented(16);
        let steps = expand(&library::march_c(), &g);
        let spec = UniverseSpec::default();
        for class in [FaultClass::StuckAt, FaultClass::CouplingIdempotent] {
            let universe = class_universe(&g, class, &spec);
            let serial = detect_universe(
                &g,
                &steps,
                &universe,
                Some(1),
                SimEngine::Full,
                &CancelToken::none(),
            );
            for engine in [SimEngine::Full, SimEngine::Sliced, SimEngine::Packed] {
                for jobs in [Some(1), Some(2), Some(5), None] {
                    assert_eq!(
                        detect_universe(
                            &g,
                            &steps,
                            &universe,
                            jobs,
                            engine,
                            &CancelToken::none()
                        ),
                        serial,
                        "jobs={jobs:?} engine={engine:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn mixed_universe_falls_back_per_fault() {
        // Address-decoder faults interleaved with sliceable ones: the
        // sliced engine must route each fault to the right path.
        let g = MemGeometry::bit_oriented(16);
        let steps = expand(&library::march_c(), &g);
        let spec = UniverseSpec::default();
        let mut universe = class_universe(&g, FaultClass::AddressDecoder, &spec);
        universe.extend(class_universe(&g, FaultClass::StuckOpen, &spec));
        let full = detect_universe(
            &g,
            &steps,
            &universe,
            Some(1),
            SimEngine::Full,
            &CancelToken::none(),
        );
        let sliced = detect_universe(
            &g,
            &steps,
            &universe,
            Some(1),
            SimEngine::Sliced,
            &CancelToken::none(),
        );
        assert_eq!(full, sliced);
        let packed = detect_universe(
            &g,
            &steps,
            &universe,
            Some(1),
            SimEngine::Packed,
            &CancelToken::none(),
        );
        assert_eq!(full, packed);
    }

    #[test]
    fn packed_chunking_is_invariant_under_worker_count() {
        // Worker count changes batch composition (each worker batches only
        // its own chunk), which must never change a verdict. The universe
        // must clear the packed fan-out floor or no threads spawn at all.
        let g = MemGeometry::bit_oriented(128);
        let steps = expand(&library::march_c(), &g);
        let spec = UniverseSpec::default();
        let mut universe = Vec::new();
        for class in FaultClass::ALL {
            universe.extend(class_universe(&g, class, &spec));
        }
        assert!(
            universe.len() >= 2 * MIN_FAULTS_PER_PACKED_WORKER,
            "universe too small to exercise packed fan-out"
        );
        let serial = detect_universe(
            &g,
            &steps,
            &universe,
            Some(1),
            SimEngine::Packed,
            &CancelToken::none(),
        );
        assert_eq!(
            serial,
            detect_universe(
                &g,
                &steps,
                &universe,
                Some(1),
                SimEngine::Full,
                &CancelToken::none()
            ),
            "packed serial must match the full oracle"
        );
        for jobs in [Some(2), Some(7), None] {
            assert_eq!(
                detect_universe(
                    &g,
                    &steps,
                    &universe,
                    jobs,
                    SimEngine::Packed,
                    &CancelToken::none()
                ),
                serial,
                "jobs={jobs:?}"
            );
        }
    }

    #[test]
    fn poisoned_packed_chunk_degrades_to_serial_rerun() {
        // Large enough that Some(4) still fans out past the packed floor —
        // the single-worker path runs inline and would propagate the panic.
        let g = MemGeometry::bit_oriented(1024);
        let steps = expand(&library::march_c(), &g);
        let universe = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
        assert!(universe.len() >= 2 * MIN_FAULTS_PER_PACKED_WORKER);
        let reference = detect_universe(
            &g,
            &steps,
            &universe,
            Some(1),
            SimEngine::Packed,
            &CancelToken::none(),
        );
        let trace = CompiledTrace::from_steps(g, &steps);
        let poison = AtomicUsize::new(1);
        let flags = detect_universe_resilient(
            &trace,
            &universe,
            Some(4),
            SimEngine::Packed,
            &CancelToken::none(),
            Some(&poison),
        );
        assert_eq!(flags, reference, "degraded packed run must be bit-identical");
        assert_eq!(poison.load(Ordering::SeqCst), 0, "poison actually fired");
    }

    #[test]
    fn tripped_token_stops_the_fanout_early() {
        let g = MemGeometry::bit_oriented(256);
        let steps = expand(&library::march_c(), &g);
        let universe = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
        assert!(universe.len() > CANCEL_CHECK_STRIDE);
        for engine in [SimEngine::Full, SimEngine::Sliced, SimEngine::Packed] {
            let cancel = CancelToken::manual();
            cancel.cancel();
            let flags = detect_universe(&g, &steps, &universe, Some(1), engine, &cancel);
            assert!(
                flags.len() < universe.len(),
                "pre-tripped token must cut the {engine:?} run short"
            );
        }
    }

    #[test]
    fn live_token_changes_nothing() {
        let g = MemGeometry::bit_oriented(64);
        let steps = expand(&library::march_c(), &g);
        let universe = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
        let baseline = detect_universe(
            &g,
            &steps,
            &universe,
            Some(1),
            SimEngine::Sliced,
            &CancelToken::none(),
        );
        let live = CancelToken::manual();
        assert_eq!(
            detect_universe(&g, &steps, &universe, Some(2), SimEngine::Sliced, &live),
            baseline,
            "an untripped token must not perturb the flags"
        );
    }

    #[test]
    fn empty_universe_is_fine() {
        let g = MemGeometry::bit_oriented(4);
        let steps = expand(&library::mats(), &g);
        assert!(detect_universe(
            &g,
            &steps,
            &[],
            Some(8),
            SimEngine::Sliced,
            &CancelToken::none()
        )
        .is_empty());
    }

    #[test]
    fn poisoned_chunk_degrades_to_serial_rerun_with_identical_report() {
        // Past the sliced fan-out floor for Some(4) to spawn ≥ 2 workers
        // (the single-worker path runs inline, no panic isolation).
        let g = MemGeometry::bit_oriented(256);
        let steps = expand(&library::march_c(), &g);
        let universe = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
        assert!(universe.len() >= 2 * MIN_FAULTS_PER_WORKER);
        let reference = detect_universe(
            &g,
            &steps,
            &universe,
            Some(1),
            SimEngine::Sliced,
            &CancelToken::none(),
        );
        let trace = CompiledTrace::from_steps(g, &steps);

        // One transient worker death: the first simulated fault panics.
        let poison = AtomicUsize::new(1);
        let flags = detect_universe_resilient(
            &trace,
            &universe,
            Some(4),
            SimEngine::Sliced,
            &CancelToken::none(),
            Some(&poison),
        );
        assert_eq!(flags, reference, "degraded run must be bit-identical");
        assert_eq!(poison.load(Ordering::SeqCst), 0, "poison actually fired");
    }

    #[test]
    fn multiple_poisoned_chunks_all_recover() {
        let g = MemGeometry::bit_oriented(256);
        let steps = expand(&library::march_c(), &g);
        let universe = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
        assert!(universe.len() >= 2 * MIN_FAULTS_PER_WORKER);
        let reference = detect_universe(
            &g,
            &steps,
            &universe,
            Some(1),
            SimEngine::Sliced,
            &CancelToken::none(),
        );
        let trace = CompiledTrace::from_steps(g, &steps);

        // Kill the first fault of (up to) every chunk: several workers die,
        // every chunk is re-run serially, the report is still complete.
        let poison = AtomicUsize::new(universe.len());
        let flags = detect_universe_resilient(
            &trace,
            &universe,
            Some(4),
            SimEngine::Full,
            &CancelToken::none(),
            Some(&poison),
        );
        assert_eq!(flags, reference);
    }
}
