//! Parallel fan-out of serial fault simulation over a fault universe.
//!
//! Serial fault simulation is embarrassingly parallel: each fault gets a
//! fresh array and replays the same pre-expanded step stream, with no
//! shared mutable state. This module chunks a universe across scoped
//! worker threads (`std::thread::scope`, no external dependencies) and
//! reduces the per-chunk verdicts back **in universe order**, so the result
//! is bit-for-bit identical regardless of worker count.

use std::num::NonZeroUsize;
use std::thread;

use mbist_mem::{FaultKind, MemGeometry, MemoryArray, TestStep};

use crate::runner::run_steps_detect;

/// Below this many faults per worker, thread spawn overhead outweighs the
/// simulation work; the chunking rounds worker count down accordingly.
const MIN_FAULTS_PER_WORKER: usize = 8;

/// Resolves a `jobs` request to a concrete worker count.
///
/// `None` asks the host ([`std::thread::available_parallelism`], falling
/// back to 1); `Some(n)` forces `n` (clamped to at least 1).
pub(crate) fn resolve_jobs(jobs: Option<usize>) -> usize {
    match jobs {
        Some(n) => n.max(1),
        None => thread::available_parallelism().map_or(1, NonZeroUsize::get),
    }
}

/// Simulates every fault in `universe` against `steps`, returning one
/// detection flag per fault, in universe order.
///
/// Each fault is simulated on a fresh single-fault [`MemoryArray`] with the
/// early-exit replay ([`run_steps_detect`]), exactly as the serial loop
/// would — parallelism only changes wall-clock time, never the flags.
///
/// # Panics
///
/// Panics if a fault in `universe` does not fit `geometry` (generated
/// universes always fit).
pub(crate) fn detect_universe(
    geometry: &MemGeometry,
    steps: &[TestStep],
    universe: &[FaultKind],
    jobs: Option<usize>,
) -> Vec<bool> {
    let workers = resolve_jobs(jobs)
        .min(universe.len().div_ceil(MIN_FAULTS_PER_WORKER))
        .max(1);
    if workers <= 1 {
        return universe.iter().map(|&f| detect_one(geometry, steps, f)).collect();
    }
    let chunk = universe.len().div_ceil(workers);
    thread::scope(|scope| {
        let handles: Vec<_> = universe
            .chunks(chunk)
            .map(|faults| {
                scope.spawn(move || {
                    faults
                        .iter()
                        .map(|&f| detect_one(geometry, steps, f))
                        .collect::<Vec<bool>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("fault-simulation worker panicked"))
            .collect()
    })
}

fn detect_one(geometry: &MemGeometry, steps: &[TestStep], fault: FaultKind) -> bool {
    let mut mem = MemoryArray::with_fault(*geometry, fault)
        .expect("generated universes fit the geometry");
    run_steps_detect(&mut mem, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::expand;
    use crate::library;
    use mbist_mem::{class_universe, FaultClass, UniverseSpec};

    #[test]
    fn resolve_jobs_clamps_and_defaults() {
        assert_eq!(resolve_jobs(Some(4)), 4);
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn worker_count_does_not_change_flags() {
        let g = MemGeometry::bit_oriented(16);
        let steps = expand(&library::march_c(), &g);
        let spec = UniverseSpec::default();
        for class in [FaultClass::StuckAt, FaultClass::CouplingIdempotent] {
            let universe = class_universe(&g, class, &spec);
            let serial = detect_universe(&g, &steps, &universe, Some(1));
            for jobs in [Some(2), Some(5), None] {
                assert_eq!(detect_universe(&g, &steps, &universe, jobs), serial);
            }
        }
    }

    #[test]
    fn empty_universe_is_fine() {
        let g = MemGeometry::bit_oriented(4);
        let steps = expand(&library::mats(), &g);
        assert!(detect_universe(&g, &steps, &[], Some(8)).is_empty());
    }
}
