//! Classical non-march test procedures: Walking 1/0 and GALPAT.
//!
//! These O(n²) procedures address a *base* cell and its complement set
//! individually — a structure no march test (and therefore no march-based
//! BIST controller, including the paper's microcode architecture) can
//! express. They exist here for two reasons: they quantify what the
//! march-structured architectures give up (the NPSF/AF coverage gap), and
//! they exercise the memory simulator with realistic ping-pong access
//! patterns.

use mbist_mem::{BusCycle, MemGeometry, MemoryArray, PortId, TestStep};
use mbist_rtl::Bits;

use crate::coverage::{ClassCoverage, CoverageOptions, CoverageReport};
use crate::runner::run_steps;

fn w(g: &MemGeometry, addr: u64, value: bool) -> TestStep {
    TestStep::Bus(BusCycle::write(PortId(0), addr, Bits::splat(g.width(), value)))
}

fn r(g: &MemGeometry, addr: u64, value: bool) -> TestStep {
    TestStep::Bus(BusCycle::read(PortId(0), addr, Bits::splat(g.width(), value)))
}

/// Walking 1 (or walking 0 with `value = false`): initialize to the
/// complement, then for each base cell write the value, read every other
/// cell, read the base, and restore. Complexity `n² + 3n`.
#[must_use]
pub fn walking(geometry: &MemGeometry, value: bool) -> Vec<TestStep> {
    let n = geometry.words();
    let mut steps = Vec::new();
    for a in 0..n {
        steps.push(w(geometry, a, !value));
    }
    for base in 0..n {
        steps.push(w(geometry, base, value));
        for other in 0..n {
            if other != base {
                steps.push(r(geometry, other, !value));
            }
        }
        steps.push(r(geometry, base, value));
        steps.push(w(geometry, base, !value));
    }
    steps
}

/// GALPAT (galloping pattern): like walking, but every read of another
/// cell ping-pongs back to the base cell. Complexity `2n² + 2n`.
#[must_use]
pub fn galpat(geometry: &MemGeometry, value: bool) -> Vec<TestStep> {
    let n = geometry.words();
    let mut steps = Vec::new();
    for a in 0..n {
        steps.push(w(geometry, a, !value));
    }
    for base in 0..n {
        steps.push(w(geometry, base, value));
        for other in 0..n {
            if other != base {
                steps.push(r(geometry, other, !value));
                steps.push(r(geometry, base, value));
            }
        }
        steps.push(w(geometry, base, !value));
    }
    steps
}

/// Evaluates the fault coverage of an arbitrary test stream by serial
/// fault simulation (the stream analogue of
/// [`evaluate_coverage`](crate::evaluate_coverage)).
#[must_use]
pub fn evaluate_stream_coverage(
    name: &str,
    steps: &[TestStep],
    geometry: &MemGeometry,
    options: &CoverageOptions,
) -> CoverageReport {
    let mut rows = Vec::new();
    for &class in &options.classes {
        let mut universe = mbist_mem::class_universe(geometry, class, &options.spec);
        if let Some(max) = options.max_faults_per_class {
            if universe.len() > max {
                let len = universe.len();
                universe = universe
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| i * max / len != (i + 1) * max / len)
                    .map(|(_, f)| f)
                    .take(max)
                    .collect();
            }
        }
        let total = universe.len();
        let mut detected = 0;
        for fault in universe {
            let mut mem = MemoryArray::with_fault(*geometry, fault)
                .expect("generated universes fit the geometry");
            if !run_steps(&mut mem, steps).passed() {
                detected += 1;
            }
        }
        rows.push(ClassCoverage { class, detected, total });
    }
    CoverageReport { test: name.to_string(), geometry: *geometry, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use mbist_mem::{CellId, FaultClass, FaultKind};

    #[test]
    fn stream_lengths_match_the_literature() {
        let g = MemGeometry::bit_oriented(8);
        // per base: set + (n-1) reads + base read + restore
        assert_eq!(walking(&g, true).len(), 8 + 8 * (1 + 7 + 1 + 1));
        // per base: set + 2(n-1) ping-pong reads + restore
        assert_eq!(galpat(&g, true).len(), 8 + 8 * (1 + 2 * 7 + 1));
    }

    #[test]
    fn fault_free_memory_passes_both() {
        let g = MemGeometry::bit_oriented(16);
        for steps in [walking(&g, true), walking(&g, false), galpat(&g, true)] {
            let mut mem = MemoryArray::new(g);
            assert!(run_steps(&mut mem, &steps).passed());
        }
    }

    #[test]
    fn galpat_detects_classic_faults() {
        let g = MemGeometry::bit_oriented(16);
        let faults = [
            FaultKind::StuckAt { cell: CellId::bit_oriented(5), value: false },
            FaultKind::Transition { cell: CellId::bit_oriented(9), rising: true },
            FaultKind::AddressMap { from: 3, to: 12 },
            FaultKind::CouplingInversion {
                aggressor: CellId::bit_oriented(2),
                victim: CellId::bit_oriented(11),
                rising: true,
            },
        ];
        let steps = galpat(&g, true);
        for fault in faults {
            let mut mem = MemoryArray::with_fault(g, fault).unwrap();
            assert!(!run_steps(&mut mem, &steps).passed(), "{fault} missed");
        }
    }

    #[test]
    fn galpat_beats_march_c_on_npsf() {
        let g = MemGeometry::bit_oriented(64);
        let options = CoverageOptions {
            classes: vec![FaultClass::NpsfActive],
            max_faults_per_class: Some(96),
            ..CoverageOptions::default()
        };
        let march = crate::coverage::evaluate_coverage(&library::march_c(), &g, &options);
        let combined: Vec<TestStep> =
            galpat(&g, true).into_iter().chain(galpat(&g, false)).collect();
        let gal = evaluate_stream_coverage("galpat", &combined, &g, &options);
        let m = march.rows[0].detected;
        let gp = gal.rows[0].detected;
        assert!(
            gp > m,
            "GALPAT should beat march C on active NPSF: {gp} vs {m} of {}",
            march.rows[0].total
        );
    }

    #[test]
    fn walking_detects_stuck_open_fully() {
        // Every base read follows a read of a different value — exactly the
        // consecutive-read structure SOF needs.
        let g = MemGeometry::bit_oriented(16);
        let steps = walking(&g, true);
        for word in 0..16 {
            let mut mem = MemoryArray::with_fault(
                g,
                FaultKind::StuckOpen { cell: CellId::bit_oriented(word) },
            )
            .unwrap();
            assert!(!run_steps(&mut mem, &steps).passed(), "SOF at {word} missed");
        }
    }
}
