//! Lane-packed bit-parallel fault simulation over a [`CompiledTrace`].
//!
//! The sliced engine ([`crate::sliced`]) already reduced per-fault work to
//! the accesses touching the fault's support set, but it still replays
//! those accesses once *per fault*. This module goes one step further for
//! the dominant, purely combinational fault classes — SAF, TF, CFin, CFid,
//! CFst — by packing up to 64 faults into the bit lanes of `u64` state
//! vectors and replaying a shared access program **once per batch** with
//! branch-free bitwise lane updates (the classic bit-parallel single-fault
//! propagation trick, applied across faults instead of across patterns).
//!
//! # Lane encoding
//!
//! Lane `i` of a batch holds fault `i`'s scalar state: bit `i` of `vic` is
//! the victim cell's stored value, bit `i` of `agg` the aggressor cell's
//! (coupling faults only), and bit `i` of `detected` latches sticky
//! detection. Per-fault constants (stuck value, triggering direction,
//! forced value, activating state) become per-lane constant masks, so
//! `sa0`/`sa1` — and rising/falling or forced-0/forced-1 variants of the
//! coupling classes — share batches.
//!
//! # Batch compatibility
//!
//! Two faults share a batch iff they have the same class **and** the same
//! *access program*: the stream of victim-word writes, aggressor-word
//! writes and checked victim-word reads projected onto the fault's support
//! bits (a [`Vec<SigOp>`] — simultaneously the exact congruence key and the
//! program the batch executes). Unchecked reads are dropped (no state or
//! detection effect for these classes), and aggressor-word checked reads
//! are dropped because the aggressor cell of CFin/CFid/CFst never deviates
//! from the golden trace — only the victim does. Programs are content-
//! deduplicated, so faults at *different* addresses batch together whenever
//! the expanded march touches their words identically (the common case:
//! march expansions are address-uniform, so a 1024-word SAF universe
//! compiles to a single program).
//!
//! Classes with timing state (Retention, PullOpen), sense-latch state
//! (StuckOpen), neighborhood activation (NPSF) or non-local addressing
//! (decoder faults) do not vectorize into independent `u64` lanes; they
//! fall back per fault to the sliced/full paths, so reports stay
//! bit-identical to [`SimEngine::Full`](crate::SimEngine::Full) — the
//! equivalence the three-way `sliced_equivalence` proptest suite pins.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use mbist_mem::{CellId, FaultKind};

use crate::fanout::{detect_one, WorkerScratch};
use crate::trace::{CompiledTrace, FnvBuild, SimEngine, TraceOpKind};

/// Lanes per batch: one fault per bit of the `u64` state vectors.
const LANES: usize = 64;

/// One access-program instruction: the trace projected onto a fault's
/// support bits. Derives `Eq + Hash` so a whole program doubles as the
/// batch-congruence key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SigOp {
    /// Write to the victim word; `d` is the data bit at the victim's bit
    /// position.
    WVic { d: bool },
    /// Write to the aggressor word (inter-word pairs only); `d` is the data
    /// bit at the aggressor's bit position.
    WAgg { d: bool },
    /// Write to the shared word of an intra-word pair: both projected bits
    /// commit in the same cycle, which is what the two-phase
    /// `victim_sensitized` rule keys on.
    WBoth { d_vic: bool, d_agg: bool },
    /// Checked read of the victim word. `expected` is the expectation bit
    /// at the victim position; `base_mismatch` records that the expectation
    /// already disagrees with the golden value on some *other* bit — a bit
    /// the fault cannot touch, so every live lane detects here.
    RVic { expected: bool, base_mismatch: bool },
}

/// Which branch-free update rules a batch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LaneClass {
    StuckAt,
    Transition,
    CouplingInversion,
    CouplingIdempotent,
    CouplingState,
}

/// One fault lowered to lane form: support cells plus the per-lane
/// constants that parameterize the class's update rule.
struct LaneSpec {
    class: LaneClass,
    vic: CellId,
    agg: Option<CellId>,
    /// SAF stuck value.
    stuck: bool,
    /// TF / CFin / CFid triggering direction.
    rising: bool,
    /// CFid / CFst forced value.
    forced: bool,
    /// CFst activating aggressor state.
    when: bool,
}

/// Lowers a fault to lane form, or `None` when its class does not
/// vectorize and it must take the sliced/full fallback.
fn lane_spec(fault: FaultKind) -> Option<LaneSpec> {
    let blank = |class, vic, agg| LaneSpec {
        class,
        vic,
        agg,
        stuck: false,
        rising: false,
        forced: false,
        when: false,
    };
    match fault {
        FaultKind::StuckAt { cell, value } => {
            Some(LaneSpec { stuck: value, ..blank(LaneClass::StuckAt, cell, None) })
        }
        FaultKind::Transition { cell, rising } => {
            Some(LaneSpec { rising, ..blank(LaneClass::Transition, cell, None) })
        }
        FaultKind::CouplingInversion { aggressor, victim, rising } => Some(LaneSpec {
            rising,
            ..blank(LaneClass::CouplingInversion, victim, Some(aggressor))
        }),
        FaultKind::CouplingIdempotent { aggressor, victim, rising, forced } => {
            Some(LaneSpec {
                rising,
                forced,
                ..blank(LaneClass::CouplingIdempotent, victim, Some(aggressor))
            })
        }
        FaultKind::CouplingState { aggressor, victim, when, forced } => Some(LaneSpec {
            when,
            forced,
            ..blank(LaneClass::CouplingState, victim, Some(aggressor))
        }),
        _ => None,
    }
}

/// An open batch: up to [`LANES`] same-class faults sharing one program.
struct Batch {
    class: LaneClass,
    program: usize,
    /// Index into the caller's fault slice, per lane.
    faults: Vec<usize>,
    /// Per-lane constant masks (bit `i` = lane `i`'s constant).
    stuck: u64,
    rising: u64,
    forced: u64,
    when: u64,
    /// Lanes detected before the walk starts (a golden miscompare at any
    /// word other than the lane's victim word replays identically under the
    /// fault, deciding detection on its own).
    pre_detected: u64,
}

impl Batch {
    fn new(class: LaneClass, program: usize) -> Self {
        Self {
            class,
            program,
            faults: Vec::with_capacity(LANES),
            stuck: 0,
            rising: 0,
            forced: 0,
            when: 0,
            pre_detected: 0,
        }
    }

    fn push(&mut self, index: usize, spec: &LaneSpec, pre_detected: bool) {
        let lane = 1u64 << self.faults.len();
        self.faults.push(index);
        if spec.stuck {
            self.stuck |= lane;
        }
        if spec.rising {
            self.rising |= lane;
        }
        if spec.forced {
            self.forced |= lane;
        }
        if spec.when {
            self.when |= lane;
        }
        if pre_detected {
            self.pre_detected |= lane;
        }
    }
}

/// Builds the access program for a `(victim, aggressor)` support shape:
/// the step-ordered merge of the victim- and aggressor-word op lists,
/// projected onto the two support bits (see [`SigOp`]).
fn build_program(trace: &CompiledTrace, vic: CellId, agg: Option<CellId>) -> Vec<SigOp> {
    let vic_bit = 1u64 << vic.bit;
    let rvic = |expected: Option<u64>, golden: u64| {
        expected.map(|e| SigOp::RVic {
            expected: e & vic_bit != 0,
            base_mismatch: (e ^ golden) & !vic_bit != 0,
        })
    };
    let mut program = Vec::new();
    match agg {
        // Single-cell fault: one op list, one projected bit.
        None => {
            for op in trace.ops_for_word(vic.word) {
                match op.kind {
                    TraceOpKind::Write(data) => {
                        program.push(SigOp::WVic { d: data & vic_bit != 0 });
                    }
                    TraceOpKind::Read { expected, golden, .. } => {
                        program.extend(rvic(expected, golden));
                    }
                }
            }
        }
        // Intra-word pair: one op list, writes carry both projected bits.
        Some(a) if a.word == vic.word => {
            let agg_bit = 1u64 << a.bit;
            for op in trace.ops_for_word(vic.word) {
                match op.kind {
                    TraceOpKind::Write(data) => program.push(SigOp::WBoth {
                        d_vic: data & vic_bit != 0,
                        d_agg: data & agg_bit != 0,
                    }),
                    TraceOpKind::Read { expected, golden, .. } => {
                        program.extend(rvic(expected, golden));
                    }
                }
            }
        }
        // Inter-word pair: two-way merge back into stream order. Reads of
        // the aggressor word are dropped — the aggressor cell never
        // deviates from golden, so they can neither miscompare nor change
        // state.
        Some(a) => {
            let agg_bit = 1u64 << a.bit;
            let (vs, ags) = (trace.ops_for_word(vic.word), trace.ops_for_word(a.word));
            let (mut i, mut j) = (0, 0);
            while i < vs.len() || j < ags.len() {
                let take_vic = j >= ags.len() || (i < vs.len() && vs[i].step < ags[j].step);
                if take_vic {
                    match vs[i].kind {
                        TraceOpKind::Write(data) => {
                            program.push(SigOp::WVic { d: data & vic_bit != 0 });
                        }
                        TraceOpKind::Read { expected, golden, .. } => {
                            program.extend(rvic(expected, golden));
                        }
                    }
                    i += 1;
                } else {
                    if let TraceOpKind::Write(data) = ags[j].kind {
                        program.push(SigOp::WAgg { d: data & agg_bit != 0 });
                    }
                    j += 1;
                }
            }
        }
    }
    program
}

/// Executes one batch: a single replay of the shared program with
/// branch-free per-lane updates, returning the sticky 64-bit detected
/// mask. Each lane update is the exact projection of the corresponding
/// single-fault path in `mbist_mem::array` (and [`crate::sliced`]) onto
/// the fault's support bits.
fn run_batch(program: &[SigOp], batch: &Batch) -> u64 {
    let live = if batch.faults.len() == LANES {
        u64::MAX
    } else {
        (1u64 << batch.faults.len()) - 1
    };
    let bcast = |b: bool| if b { u64::MAX } else { 0 };
    // SAF injection clamps the stored value immediately; everything else
    // powers up 0 like the array.
    let mut vic: u64 = if batch.class == LaneClass::StuckAt { batch.stuck } else { 0 };
    let mut agg: u64 = 0;
    let mut detected = batch.pre_detected & live;
    if detected == live {
        return detected;
    }
    for &op in program {
        match op {
            SigOp::WVic { d } => {
                let dm = bcast(d);
                match batch.class {
                    LaneClass::StuckAt => vic = batch.stuck,
                    LaneClass::Transition => {
                        // A broken 0→1 (rising lanes) leaves the cell 0; a
                        // broken 1→0 leaves it 1.
                        let block_up = batch.rising & !vic & dm;
                        let block_down = !batch.rising & vic & !dm;
                        vic = (dm & !block_up) | block_down;
                    }
                    // Coupling classes: a plain commit — their write-phase
                    // effects key on the *aggressor* word.
                    _ => vic = dm,
                }
            }
            SigOp::WAgg { d } => {
                let dm = bcast(d);
                let changed = agg ^ dm;
                // Fired: the aggressor actually transitioned and its new
                // value matches the lane's triggering direction. Inter-word
                // victims are always sensitized.
                let fired = changed & !(dm ^ batch.rising);
                match batch.class {
                    LaneClass::CouplingInversion => vic ^= fired,
                    LaneClass::CouplingIdempotent => {
                        vic = (vic & !fired) | (batch.forced & fired);
                    }
                    // CFst has no write-phase effect; StuckAt/Transition
                    // programs never contain WAgg.
                    _ => {}
                }
                agg = dm;
            }
            SigOp::WBoth { d_vic, d_agg } => {
                let (dv, da) = (bcast(d_vic), bcast(d_agg));
                // Intra-word sensitization: the coupling only lands if the
                // same write did not *also* change the victim bit.
                let fired = (agg ^ da) & !(da ^ batch.rising) & !(vic ^ dv);
                match batch.class {
                    LaneClass::CouplingInversion => vic = dv ^ fired,
                    LaneClass::CouplingIdempotent => {
                        vic = (dv & !fired) | (batch.forced & fired);
                    }
                    _ => vic = dv,
                }
                agg = da;
            }
            SigOp::RVic { expected, base_mismatch } => {
                let obs = match batch.class {
                    // The read path clamps too (storage already is).
                    LaneClass::StuckAt => batch.stuck,
                    // State coupling masks the observation, not the store.
                    LaneClass::CouplingState => {
                        let active = !(agg ^ batch.when);
                        (active & batch.forced) | (!active & vic)
                    }
                    _ => vic,
                };
                let miss = if base_mismatch { live } else { obs ^ bcast(expected) };
                detected |= miss & live;
                if detected == live {
                    return detected;
                }
            }
        }
    }
    detected
}

/// Program store with two-level memoization: per support shape
/// (`(victim, aggressor)` — programs are class-independent, so SAF and TF
/// at the same cell, or all three coupling classes on the same pair, share
/// one build) and per content (faults at different addresses whose words
/// see identical access sequences share one batch).
#[derive(Default)]
struct Programs {
    store: Vec<Vec<SigOp>>,
    by_cells: HashMap<(CellId, Option<CellId>), usize, FnvBuild>,
    by_content: HashMap<Vec<SigOp>, usize, FnvBuild>,
}

impl Programs {
    /// Program id for a support shape the route key could not classify
    /// (inter-word pairs on a non-uniform trace): memoized per cell pair,
    /// then per content.
    fn id_for(&mut self, trace: &CompiledTrace, vic: CellId, agg: Option<CellId>) -> usize {
        if let Some(&id) = self.by_cells.get(&(vic, agg)) {
            return id;
        }
        let id = self.id_for_content(trace, vic, agg);
        self.by_cells.insert((vic, agg), id);
        id
    }

    /// Builds (or content-dedups) the program for one representative
    /// support shape — the route-key paths call this once per key.
    fn id_for_content(
        &mut self,
        trace: &CompiledTrace,
        vic: CellId,
        agg: Option<CellId>,
    ) -> usize {
        let program = build_program(trace, vic, agg);
        match self.by_content.get(&program) {
            Some(&id) => id,
            None => {
                let id = self.store.len();
                self.store.push(program.clone());
                self.by_content.insert(program, id);
                id
            }
        }
    }
}

/// O(1) batch route for a fault, derived from the trace's compile-time
/// word-content classes: faults with equal keys provably share an access
/// program, so the per-fault cost of batching is one small hash lookup
/// instead of rebuilding and hashing the fault's whole projected program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RouteKey {
    class: LaneClass,
    /// 0 = single cell, 1 = intra-word pair, 2 = inter-word pair with
    /// victim at the lower address, 3 = with aggressor at the lower
    /// address (2/3 only issued when the trace certifies address-uniform
    /// interleave).
    shape: u8,
    vic_class: u32,
    vic_bit: u8,
    agg_class: u32,
    agg_bit: u8,
}

/// Simulates a chunk of faults: batchable classes are grouped into lanes
/// and replayed once per batch; the rest route per fault through the same
/// sliced/full paths as [`SimEngine::Sliced`]. Returns one flag per fault,
/// in chunk order — batching never reorders or changes a verdict, only the
/// wall-clock cost.
pub(crate) fn detect_chunk(
    trace: &CompiledTrace,
    faults: &[FaultKind],
    scratch: &mut WorkerScratch,
) -> Vec<bool> {
    let mut flags = vec![false; faults.len()];
    let mut programs = Programs::default();
    let mut batches: Vec<Batch> = Vec::new();
    // Open (possibly full) batch per route key (the fast path) and per
    // exactly-built program (the fallback for inter-word pairs on
    // non-uniform traces). A full batch is replaced by a fresh one for the
    // same program on the next hit.
    let mut routed: HashMap<RouteKey, usize, FnvBuild> = HashMap::with_hasher(FnvBuild);
    let mut open: HashMap<(LaneClass, usize), usize, FnvBuild> =
        HashMap::with_hasher(FnvBuild);
    let uniform = trace.uniform_interleave();
    let miscompares = trace.golden_miscompares();
    for (index, &fault) in faults.iter().enumerate() {
        let Some(spec) = lane_spec(fault) else {
            flags[index] = detect_one(trace, fault, SimEngine::Sliced, scratch);
            continue;
        };
        let key = match spec.agg {
            None => Some(RouteKey {
                class: spec.class,
                shape: 0,
                vic_class: trace.word_class(spec.vic.word),
                vic_bit: spec.vic.bit,
                agg_class: 0,
                agg_bit: 0,
            }),
            Some(a) if a.word == spec.vic.word => Some(RouteKey {
                class: spec.class,
                shape: 1,
                vic_class: trace.word_class(spec.vic.word),
                vic_bit: spec.vic.bit,
                agg_class: 0,
                agg_bit: a.bit,
            }),
            Some(a) if uniform => Some(RouteKey {
                class: spec.class,
                shape: if spec.vic.word < a.word { 2 } else { 3 },
                vic_class: trace.word_class(spec.vic.word),
                vic_bit: spec.vic.bit,
                agg_class: trace.word_class(a.word),
                agg_bit: a.bit,
            }),
            Some(_) => None,
        };
        let slot = match key {
            Some(key) => match routed.entry(key) {
                Entry::Occupied(mut e) => refill(&mut batches, e.get_mut(), spec.class),
                Entry::Vacant(e) => {
                    let program = programs.id_for_content(trace, spec.vic, spec.agg);
                    batches.push(Batch::new(spec.class, program));
                    *e.insert(batches.len() - 1)
                }
            },
            None => {
                let program = programs.id_for(trace, spec.vic, spec.agg);
                match open.entry((spec.class, program)) {
                    Entry::Occupied(mut e) => refill(&mut batches, e.get_mut(), spec.class),
                    Entry::Vacant(e) => {
                        batches.push(Batch::new(spec.class, program));
                        *e.insert(batches.len() - 1)
                    }
                }
            }
        };
        let pre_detected = !miscompares.is_empty()
            && miscompares.iter().any(|&(_, addr)| addr != spec.vic.word);
        batches[slot].push(index, &spec, pre_detected);
    }
    for batch in &batches {
        let detected = run_batch(&programs.store[batch.program], batch);
        for (lane, &index) in batch.faults.iter().enumerate() {
            flags[index] = detected >> lane & 1 == 1;
        }
    }
    flags
}

/// Returns the slot an open batch lives in, replacing a full batch with a
/// fresh one for the same program (updating the routing slot in place).
fn refill(batches: &mut Vec<Batch>, slot: &mut usize, class: LaneClass) -> usize {
    if batches[*slot].faults.len() == LANES {
        let program = batches[*slot].program;
        batches.push(Batch::new(class, program));
        *slot = batches.len() - 1;
    }
    *slot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{expand_with, ExpandOptions};
    use crate::library;
    use mbist_mem::{class_universe, FaultClass, MemGeometry, MemoryArray, UniverseSpec};

    /// The batchable classes the packed engine vectorizes.
    const BATCHABLE: [FaultClass; 5] = [
        FaultClass::StuckAt,
        FaultClass::Transition,
        FaultClass::CouplingInversion,
        FaultClass::CouplingIdempotent,
        FaultClass::CouplingState,
    ];

    fn assert_packed_equivalence(g: MemGeometry, test: &crate::MarchTest) {
        let steps = expand_with(test, &g, &ExpandOptions::for_geometry(&g));
        let trace = CompiledTrace::from_steps(g, &steps);
        let spec = UniverseSpec::default();
        let mut scratch = MemoryArray::new(g);
        for class in FaultClass::ALL {
            let universe = class_universe(&g, class, &spec);
            let packed = detect_chunk(&trace, &universe, &mut WorkerScratch::default());
            for (fault, packed_flag) in universe.iter().zip(packed) {
                assert_eq!(
                    packed_flag,
                    trace.detect_full(*fault, &mut scratch),
                    "{}: packed disagrees with full replay on {fault} ({g})",
                    test.name()
                );
            }
        }
    }

    #[test]
    fn packed_matches_full_replay_across_library_and_geometries() {
        for g in [
            MemGeometry::bit_oriented(16),
            MemGeometry::bit_oriented(24),
            MemGeometry::word_oriented(8, 4),
            MemGeometry::new(12, 1, 2),
        ] {
            for test in [library::mats(), library::march_c(), library::march_b()] {
                assert_packed_equivalence(g, &test);
            }
        }
    }

    #[test]
    fn packed_matches_on_timing_sensitive_tests() {
        // Pauses and triple reads must not perturb the batchable classes
        // (their programs drop both), while DRF/PUF lanes fall back.
        let g = MemGeometry::bit_oriented(16);
        for test in [library::march_c_plus(), library::march_c_plus_plus()] {
            assert_packed_equivalence(g, &test);
        }
    }

    #[test]
    fn march_expansions_collapse_to_few_programs() {
        // Address-uniform march streams must dedupe aggressively: the whole
        // SAF universe of a 64-word memory shares one program, so the trace
        // is walked once for every 64 faults, not once per fault.
        let g = MemGeometry::bit_oriented(64);
        let steps = expand_with(&library::march_c(), &g, &ExpandOptions::for_geometry(&g));
        let trace = CompiledTrace::from_steps(g, &steps);
        let mut programs = Programs::default();
        let universe = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
        for fault in &universe {
            let spec = lane_spec(*fault).unwrap();
            programs.id_for(&trace, spec.vic, spec.agg);
        }
        assert_eq!(programs.store.len(), 1, "uniform stream must share one program");
        assert_eq!(programs.by_cells.len(), 64, "one memo entry per cell");
    }

    #[test]
    fn batches_fill_lanes_across_fault_polarity() {
        // sa0 and sa1 differ only in the per-lane stuck mask, so they pack
        // into the same batches: 128 SAFs on 64 words = exactly 2 batches.
        let g = MemGeometry::bit_oriented(64);
        let steps = expand_with(&library::mats(), &g, &ExpandOptions::for_geometry(&g));
        let trace = CompiledTrace::from_steps(g, &steps);
        let universe = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
        assert_eq!(universe.len(), 128);
        // Count batches by replicating the scheduler's grouping.
        let mut programs = Programs::default();
        let mut lanes_per_key: HashMap<(LaneClass, usize), usize> = HashMap::new();
        for fault in &universe {
            let spec = lane_spec(*fault).unwrap();
            let id = programs.id_for(&trace, spec.vic, spec.agg);
            *lanes_per_key.entry((spec.class, id)).or_default() += 1;
        }
        let batch_count: usize = lanes_per_key.values().map(|n| n.div_ceil(LANES)).sum();
        assert_eq!(batch_count, 2, "128 lanes must fill exactly 2 batches");
    }

    #[test]
    fn dirty_streams_pre_detect_or_walk_exactly() {
        use mbist_mem::{BusCycle, Operation, PortId, TestStep};
        use mbist_rtl::Bits;
        // A golden miscompare at word 1: faults on other words pre-detect,
        // faults on word 1 are decided by the walk — exactly like full.
        let g = MemGeometry::bit_oriented(4);
        let steps = [TestStep::Bus(BusCycle {
            port: PortId(0),
            addr: 1,
            op: Operation::Read,
            expected: Some(Bits::bit1(true)), // powers up 0 → dirty
        })];
        let trace = CompiledTrace::from_steps(g, &steps);
        let spec = UniverseSpec::default();
        let mut scratch = MemoryArray::new(g);
        for class in BATCHABLE {
            let universe = class_universe(&g, class, &spec);
            let packed = detect_chunk(&trace, &universe, &mut WorkerScratch::default());
            for (fault, flag) in universe.iter().zip(packed) {
                assert_eq!(flag, trace.detect_full(*fault, &mut scratch), "{fault}");
            }
        }
    }

    #[test]
    fn non_batchable_classes_take_the_fallback() {
        for class in FaultClass::ALL {
            let g = MemGeometry::bit_oriented(8);
            let universe = class_universe(&g, class, &UniverseSpec::default());
            let batchable = BATCHABLE.contains(&class);
            for fault in universe {
                assert_eq!(
                    lane_spec(fault).is_some(),
                    batchable,
                    "{fault} routed to the wrong engine"
                );
            }
        }
    }
}
