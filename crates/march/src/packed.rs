//! Lane-packed bit-parallel fault simulation over a [`CompiledTrace`].
//!
//! The sliced engine ([`crate::sliced`]) already reduced per-fault work to
//! the accesses touching the fault's support set, but it still replays
//! those accesses once *per fault*. This module goes one step further by
//! packing up to [`LANES`] faults into the bit lanes of `[u64; 4]` state
//! vectors and replaying a shared access program **once per batch** with
//! branch-free bitwise lane updates (the classic bit-parallel single-fault
//! propagation trick, applied across faults instead of across patterns).
//!
//! Every address-local class vectorizes: the combinational classes (SAF,
//! TF, CFin, CFid, CFst), stuck-open faults (the per-port sense-amp latch
//! becomes a previous-read-latch formula resolved per op at build time),
//! retention and pull-open decay (decay deadlines are precomputed from the
//! trace's pause-adjusted timestamps into per-op `decayed` flags), and
//! fixed-shape five-cell NPSF neighborhoods (neighborhood activation is
//! reconstructed from the golden neighbor values at build time, so the
//! lane update is a compile-time branch). Only decoder faults stay
//! per fault — they take the sliced two-word decoder replay.
//!
//! # Lane encoding
//!
//! Lane `i` of a batch holds fault `i`'s scalar state: bit `i` of `vic` is
//! the victim cell's stored value, bit `i` of `agg` the aggressor cell's
//! (coupling faults only), and bit `i` of `detected` latches sticky
//! detection. Per-fault constants (stuck value, triggering direction,
//! forced value, activating state) become per-lane constant masks, so
//! `sa0`/`sa1` — and rising/falling or forced-0/forced-1 variants of the
//! coupling classes — share batches. The invariant is per *lane vector*:
//! a `Lanes` value is `[u64; 4]`, bit `i % 64` of block `i / 64` belongs
//! to lane `i`, and every update touches all four blocks unconditionally
//! (the `live` mask confines partial final blocks).
//!
//! # Batch compatibility
//!
//! Two faults share a batch iff they have the same class **and** the same
//! *canonical access program*: the stream of support-word writes and reads
//! projected onto the fault's support bits (a [`Vec<SigOp>`] —
//! simultaneously the exact congruence key and the program the batch
//! executes), normalized for data background. Canonicalization complements
//! every projected data/expectation bit when the program's first
//! polarity-carrying bit is 1 and records a per-lane `flip` bit instead,
//! so faults whose projections are *complements* of each other — opposite
//! bit positions under a checkerboard background, or the same position
//! under complementary backgrounds — also share one batch, with their
//! per-lane constants XOR-corrected by the flip mask. Unchecked reads are
//! dropped whenever they carry no state (they advance stuck-open latches
//! and commit decay events, so those stay), and aggressor-word checked
//! reads are dropped because the aggressor cell never deviates from the
//! golden trace. Programs are content-deduplicated, so faults at
//! *different* addresses batch together whenever the expanded march
//! touches their words identically (the common case: march expansions are
//! address-uniform, so a 1024-word SAF universe compiles to a single
//! program).
//!
//! Decoder faults are not address-local and never lane-pack; they route
//! per fault to the sliced two-word decoder replay, so reports stay
//! bit-identical to [`SimEngine::Full`](crate::SimEngine::Full) — the
//! equivalence the three-way `sliced_equivalence` proptest suite pins.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::ops::{BitAnd, BitOr, BitOrAssign, BitXor, Not};

use mbist_mem::{CellId, FaultKind};

use crate::cancel::{CancelToken, CANCEL_CHECK_STRIDE};
use crate::fanout::{detect_one, WorkerScratch};
use crate::trace::{CompiledTrace, FnvBuild, SimEngine, TraceOpKind};

/// `u64` blocks per lane vector.
const LANE_BLOCKS: usize = 4;

/// Lanes per batch: one fault per bit of the `[u64; 4]` state vectors.
const LANES: usize = 64 * LANE_BLOCKS;

/// A per-lane bit vector: bit `i % 64` of block `i / 64` belongs to lane
/// `i`. The bitwise operators apply blockwise, so the scalar update
/// formulas read unchanged from their `u64` ancestors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Lanes([u64; LANE_BLOCKS]);

impl Lanes {
    const ZERO: Self = Self([0; LANE_BLOCKS]);

    /// All lanes set to `b`.
    fn splat(b: bool) -> Self {
        Self([if b { u64::MAX } else { 0 }; LANE_BLOCKS])
    }

    /// The mask of the first `n` lanes (the live lanes of a partial batch).
    fn first(n: usize) -> Self {
        let mut blocks = [0u64; LANE_BLOCKS];
        for (i, block) in blocks.iter_mut().enumerate() {
            let low = i * 64;
            *block = if n >= low + 64 {
                u64::MAX
            } else if n > low {
                (1u64 << (n - low)) - 1
            } else {
                0
            };
        }
        Self(blocks)
    }

    fn set(&mut self, lane: usize) {
        self.0[lane / 64] |= 1u64 << (lane % 64);
    }

    fn get(self, lane: usize) -> bool {
        self.0[lane / 64] >> (lane % 64) & 1 == 1
    }

    /// Population count across all blocks (detected-lane tallies).
    fn count(self) -> usize {
        self.0.iter().map(|b| b.count_ones() as usize).sum()
    }
}

impl BitAnd for Lanes {
    type Output = Self;
    fn bitand(mut self, rhs: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(rhs.0) {
            *a &= b;
        }
        self
    }
}

impl BitOr for Lanes {
    type Output = Self;
    fn bitor(mut self, rhs: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(rhs.0) {
            *a |= b;
        }
        self
    }
}

impl BitXor for Lanes {
    type Output = Self;
    fn bitxor(mut self, rhs: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(rhs.0) {
            *a ^= b;
        }
        self
    }
}

impl Not for Lanes {
    type Output = Self;
    fn not(mut self) -> Self {
        for a in &mut self.0 {
            *a = !*a;
        }
        self
    }
}

impl BitOrAssign for Lanes {
    fn bitor_assign(&mut self, rhs: Self) {
        *self = *self | rhs;
    }
}

/// What a stuck-open read observes: the sense amp repeats the previous
/// read on the port, which the builder resolves per op against the golden
/// trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PrevBit {
    /// No read yet on the port — the invalid latch reads 0.
    Invalid,
    /// The previous port read was of the fault's own word: repeat the
    /// lane's own previous (possibly deviated) observation.
    SelfLatch,
    /// The previous port read was of another word, which never deviates:
    /// its golden bit, known at build time.
    Golden(bool),
}

/// One access-program instruction: the trace projected onto a fault's
/// support bits. Derives `Eq + Hash` so a whole program doubles as the
/// batch-congruence key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SigOp {
    /// Write to the victim word; `d` is the data bit at the victim's bit
    /// position.
    WVic { d: bool },
    /// Write to the aggressor word (inter-word pairs only); `d` is the data
    /// bit at the aggressor's bit position.
    WAgg { d: bool },
    /// Write to the shared word of an intra-word pair: both projected bits
    /// commit in the same cycle, which is what the two-phase
    /// `victim_sensitized` rule keys on.
    WBoth { d_vic: bool, d_agg: bool },
    /// Checked read of the victim word. `expected` is the expectation bit
    /// at the victim position; `base_mismatch` records that the expectation
    /// already disagrees with the golden value on some *other* bit — a bit
    /// the fault cannot touch, so every live lane detects here.
    RVic { expected: bool, base_mismatch: bool },
    /// Stuck-open read: observe per [`PrevBit`], then latch the
    /// observation. Unchecked reads are kept (`expected: None`) — they
    /// advance the latch.
    RSof { port: u8, prev: PrevBit, expected: Option<bool>, base_mismatch: bool },
    /// Retention / pull-open read. `decayed` is the build-time verdict of
    /// the decay schedule (pause-adjusted timestamps for retention, the
    /// consecutive-read counter for pull-open): a decayed read stores the
    /// lane's forced value before observing. Undecayed unchecked reads are
    /// dropped.
    RDecay { decayed: bool, expected: Option<bool>, base_mismatch: bool },
    /// Static-NPSF base read: `active` is the build-time verdict of the
    /// neighborhood pattern against the golden neighbor values — an active
    /// read observes the lane's forced value instead of the store.
    RNpsf { active: bool, expected: bool, base_mismatch: bool },
    /// Active-NPSF trigger event: the trigger cell transitioned in the
    /// sensitizing direction while the deleted neighborhood held the
    /// activation pattern (both build-time facts), flipping the base cell.
    Flip,
}

/// Which branch-free update rules a batch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LaneClass {
    StuckAt,
    Transition,
    CouplingInversion,
    CouplingIdempotent,
    CouplingState,
    StuckOpen,
    /// Retention and pull-open share one rule: the decay *schedule* lives
    /// in the program, only the decayed-to value is per lane.
    Decay,
    NpsfStatic,
    NpsfActive,
}

/// The decay schedule of a retention / pull-open fault — part of the build
/// key, because faults on one cell with different deadlines or read
/// budgets decay at different ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DecayRule {
    /// Retention: decayed iff `now_ns - last_write_ns > retention_ns`
    /// (bits of the `f64` threshold, hashable and exact).
    Retention { ns_bits: u64 },
    /// Pull-open: drained when the consecutive-read count exceeds the
    /// budget.
    PullOpen { good_reads: u8 },
}

/// The support shape of a five-cell NPSF fault, in role order: base first,
/// then the trigger (active) or the type-1 neighborhood (static), with the
/// activation pattern bit `i` holding `cells[i + 1]`'s value (bit 0 unused
/// for the active family — the trigger has no level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct NpsfShape {
    class: LaneClass,
    cells: [CellId; 5],
    pattern: u8,
    /// Active-family trigger direction (`false` for the static family).
    rising: bool,
}

/// One fault lowered to lane form: support cells plus the per-lane
/// constants that parameterize the class's update rule.
struct LaneSpec {
    class: LaneClass,
    vic: CellId,
    agg: Option<CellId>,
    npsf: Option<NpsfShape>,
    decay: Option<DecayRule>,
    /// SAF stuck value.
    stuck: bool,
    /// TF / CFin / CFid triggering direction.
    rising: bool,
    /// CFid / CFst / NPSF forced value, and the decayed-to value of the
    /// decay family.
    forced: bool,
    /// CFst activating aggressor state.
    when: bool,
}

/// Whether the packed engine simulates `fault` in a bit lane, as opposed
/// to the per-fault sliced/full fallback. The fallback replays the flat
/// step stream, so a scoring loop may compile steps-free traces
/// ([`crate::trace::TraceArena::set_skip_steps`]) only when every universe
/// fault is lane-packable.
pub(crate) fn lane_packable(fault: FaultKind) -> bool {
    lane_spec(fault).is_some()
}

/// Lowers a fault to lane form, or `None` when it must take the per-fault
/// fallback (decoder faults, and hand-made NPSF neighborhoods whose five
/// support cells do not land in five distinct words).
fn lane_spec(fault: FaultKind) -> Option<LaneSpec> {
    let blank = |class, vic, agg| LaneSpec {
        class,
        vic,
        agg,
        npsf: None,
        decay: None,
        stuck: false,
        rising: false,
        forced: false,
        when: false,
    };
    let distinct = |cells: &[CellId; 5]| {
        cells.iter().enumerate().all(|(i, c)| cells[..i].iter().all(|o| o.word != c.word))
    };
    match fault {
        FaultKind::StuckAt { cell, value } => {
            Some(LaneSpec { stuck: value, ..blank(LaneClass::StuckAt, cell, None) })
        }
        FaultKind::Transition { cell, rising } => {
            Some(LaneSpec { rising, ..blank(LaneClass::Transition, cell, None) })
        }
        FaultKind::CouplingInversion { aggressor, victim, rising } => Some(LaneSpec {
            rising,
            ..blank(LaneClass::CouplingInversion, victim, Some(aggressor))
        }),
        FaultKind::CouplingIdempotent { aggressor, victim, rising, forced } => {
            Some(LaneSpec {
                rising,
                forced,
                ..blank(LaneClass::CouplingIdempotent, victim, Some(aggressor))
            })
        }
        FaultKind::CouplingState { aggressor, victim, when, forced } => Some(LaneSpec {
            when,
            forced,
            ..blank(LaneClass::CouplingState, victim, Some(aggressor))
        }),
        FaultKind::StuckOpen { cell } => Some(blank(LaneClass::StuckOpen, cell, None)),
        FaultKind::Retention { cell, decays_to, retention_ns } => Some(LaneSpec {
            decay: Some(DecayRule::Retention { ns_bits: retention_ns.to_bits() }),
            forced: decays_to,
            ..blank(LaneClass::Decay, cell, None)
        }),
        FaultKind::PullOpen { cell, good_reads, decays_to } => Some(LaneSpec {
            decay: Some(DecayRule::PullOpen { good_reads }),
            forced: decays_to,
            ..blank(LaneClass::Decay, cell, None)
        }),
        FaultKind::NpsfStatic { base, neighborhood, forced } => {
            let cells = [
                base,
                neighborhood[0].0,
                neighborhood[1].0,
                neighborhood[2].0,
                neighborhood[3].0,
            ];
            if !distinct(&cells) {
                return None;
            }
            let pattern = neighborhood
                .iter()
                .enumerate()
                .fold(0u8, |p, (i, &(_, v))| p | (u8::from(v) << i));
            Some(LaneSpec {
                npsf: Some(NpsfShape {
                    class: LaneClass::NpsfStatic,
                    cells,
                    pattern,
                    rising: false,
                }),
                forced,
                ..blank(LaneClass::NpsfStatic, base, None)
            })
        }
        FaultKind::NpsfActive { base, trigger, rising, others } => {
            let cells = [base, trigger, others[0].0, others[1].0, others[2].0];
            if !distinct(&cells) {
                return None;
            }
            let pattern = others
                .iter()
                .enumerate()
                .fold(0u8, |p, (i, &(_, v))| p | (u8::from(v) << (i + 1)));
            Some(LaneSpec {
                npsf: Some(NpsfShape {
                    class: LaneClass::NpsfActive,
                    cells,
                    pattern,
                    rising,
                }),
                ..blank(LaneClass::NpsfActive, base, None)
            })
        }
        _ => None,
    }
}

/// Whether the packed engine lane-packs `fault` (the exact
/// [`detect_chunk`] eligibility rule — the basis of the honest routing
/// breakdown in [`crate::coverage`]).
pub(crate) fn batchable(fault: FaultKind) -> bool {
    lane_spec(fault).is_some()
}

/// The per-lane state of a batch — live lane count, class and constant
/// masks (bit `i` = lane `i`'s constant) — separated from the per-fault
/// index bookkeeping so a precomputed [`UniversePlan`] can drive
/// [`run_batch`] without materializing index vectors per candidate.
#[derive(Debug, Clone, Copy)]
struct LaneMasks {
    class: LaneClass,
    /// Live lanes (the rest of the vector is confined by the live mask).
    lanes: usize,
    /// Constant masks, already in canonical (flip-corrected) space.
    stuck: Lanes,
    rising: Lanes,
    forced: Lanes,
    when: Lanes,
    /// Lanes whose projections were complemented by canonicalization: the
    /// canonical image of their real power-up-0 state is 1.
    flip: Lanes,
    /// Lanes detected before the walk starts (a golden miscompare at any
    /// word other than the lane's victim word replays identically under the
    /// fault, deciding detection on its own).
    pre_detected: Lanes,
}

impl LaneMasks {
    fn new(class: LaneClass) -> Self {
        Self {
            class,
            lanes: 0,
            stuck: Lanes::ZERO,
            rising: Lanes::ZERO,
            forced: Lanes::ZERO,
            when: Lanes::ZERO,
            flip: Lanes::ZERO,
            pre_detected: Lanes::ZERO,
        }
    }

    /// Appends one lane holding `spec`'s constants, flip-corrected.
    fn push(&mut self, spec: &LaneSpec, flipped: bool, pre_detected: bool) {
        let lane = self.lanes;
        self.lanes += 1;
        if spec.stuck ^ flipped {
            self.stuck.set(lane);
        }
        if spec.rising ^ flipped {
            self.rising.set(lane);
        }
        if spec.forced ^ flipped {
            self.forced.set(lane);
        }
        if spec.when ^ flipped {
            self.when.set(lane);
        }
        if flipped {
            self.flip.set(lane);
        }
        if pre_detected {
            self.pre_detected.set(lane);
        }
    }

    /// Re-bases raw (never-flipped) masks into `flipped` canonical space —
    /// the whole batch shares one flip because its lanes share one route
    /// key, so the correction is a uniform XOR.
    fn flip_corrected(mut self, flipped: bool) -> Self {
        if flipped {
            let all = Lanes::splat(true);
            self.stuck = self.stuck ^ all;
            self.rising = self.rising ^ all;
            self.forced = self.forced ^ all;
            self.when = self.when ^ all;
            self.flip = all;
        }
        self
    }
}

/// An open batch: up to [`LANES`] same-class faults sharing one canonical
/// program.
struct Batch {
    program: usize,
    /// Index into the caller's fault slice, per lane.
    faults: Vec<usize>,
    masks: LaneMasks,
}

impl Batch {
    fn new(class: LaneClass, program: usize) -> Self {
        Self { program, faults: Vec::with_capacity(LANES), masks: LaneMasks::new(class) }
    }

    fn push(&mut self, index: usize, spec: &LaneSpec, flipped: bool, pre_detected: bool) {
        self.faults.push(index);
        self.masks.push(spec, flipped, pre_detected);
    }
}

/// Builds the access program for a plain `(victim, aggressor)` support
/// shape: the step-ordered merge of the victim- and aggressor-word op
/// lists, projected onto the two support bits (see [`SigOp`]).
fn build_plain(trace: &CompiledTrace, vic: CellId, agg: Option<CellId>) -> Vec<SigOp> {
    let vic_bit = 1u64 << vic.bit;
    let rvic = |expected: Option<u64>, golden: u64| {
        expected.map(|e| SigOp::RVic {
            expected: e & vic_bit != 0,
            base_mismatch: (e ^ golden) & !vic_bit != 0,
        })
    };
    let mut program = Vec::new();
    match agg {
        // Single-cell fault: one op list, one projected bit.
        None => {
            for op in trace.ops_for_word(vic.word) {
                match op.kind {
                    TraceOpKind::Write(data) => {
                        program.push(SigOp::WVic { d: data & vic_bit != 0 });
                    }
                    TraceOpKind::Read { expected, golden, .. } => {
                        program.extend(rvic(expected, golden));
                    }
                }
            }
        }
        // Intra-word pair: one op list, writes carry both projected bits.
        Some(a) if a.word == vic.word => {
            let agg_bit = 1u64 << a.bit;
            for op in trace.ops_for_word(vic.word) {
                match op.kind {
                    TraceOpKind::Write(data) => program.push(SigOp::WBoth {
                        d_vic: data & vic_bit != 0,
                        d_agg: data & agg_bit != 0,
                    }),
                    TraceOpKind::Read { expected, golden, .. } => {
                        program.extend(rvic(expected, golden));
                    }
                }
            }
        }
        // Inter-word pair: two-way merge back into stream order. Reads of
        // the aggressor word are dropped — the aggressor cell never
        // deviates from the golden trace, so they can neither miscompare
        // nor change state.
        Some(a) => {
            let agg_bit = 1u64 << a.bit;
            let (vs, ags) = (trace.ops_for_word(vic.word), trace.ops_for_word(a.word));
            let (mut i, mut j) = (0, 0);
            while i < vs.len() || j < ags.len() {
                let take_vic = j >= ags.len() || (i < vs.len() && vs[i].step < ags[j].step);
                if take_vic {
                    match vs[i].kind {
                        TraceOpKind::Write(data) => {
                            program.push(SigOp::WVic { d: data & vic_bit != 0 });
                        }
                        TraceOpKind::Read { expected, golden, .. } => {
                            program.extend(rvic(expected, golden));
                        }
                    }
                    i += 1;
                } else {
                    if let TraceOpKind::Write(data) = ags[j].kind {
                        program.push(SigOp::WAgg { d: data & agg_bit != 0 });
                    }
                    j += 1;
                }
            }
        }
    }
    program
}

/// Builds the stuck-open program for one cell: writes vanish (the
/// disconnected cell never stores), so the program is the word's reads,
/// each resolving what the port's sense latch held — the lane's own
/// previous observation when the previous port read was this word, the
/// golden bit of that read otherwise.
fn build_sof(trace: &CompiledTrace, cell: CellId, ports: u8) -> Vec<SigOp> {
    let bit = 1u64 << cell.bit;
    let mut last_self_read: Vec<Option<u32>> = vec![None; usize::from(ports)];
    let mut program = Vec::new();
    for op in trace.ops_for_word(cell.word) {
        if let TraceOpKind::Read { expected, golden, prev_read } = op.kind {
            let port = usize::from(op.port.0);
            let prev = match prev_read {
                None => PrevBit::Invalid,
                Some(pr) if last_self_read[port] == Some(pr.step) => PrevBit::SelfLatch,
                Some(pr) => PrevBit::Golden(pr.golden & bit != 0),
            };
            program.push(SigOp::RSof {
                port: op.port.0,
                prev,
                expected: expected.map(|e| e & bit != 0),
                base_mismatch: expected.is_some_and(|e| (e ^ golden) & !bit != 0),
            });
            last_self_read[port] = Some(op.step);
        }
    }
    program
}

/// Builds the retention / pull-open program for one cell: writes commit
/// normally, and each read carries the build-time decay verdict of the
/// rule's schedule (wall-clock deadline or consecutive-read budget —
/// both functions of the trace alone, never of the lane values).
fn build_decay(trace: &CompiledTrace, cell: CellId, rule: DecayRule) -> Vec<SigOp> {
    let bit = 1u64 << cell.bit;
    let mut program = Vec::new();
    let mut last_write_ns = 0.0f64;
    let mut consecutive_reads = 0u8;
    for op in trace.ops_for_word(cell.word) {
        match op.kind {
            TraceOpKind::Write(data) => {
                last_write_ns = op.now_ns;
                consecutive_reads = 0;
                program.push(SigOp::WVic { d: data & bit != 0 });
            }
            TraceOpKind::Read { expected, golden, .. } => {
                let decayed = match rule {
                    DecayRule::Retention { ns_bits } => {
                        let hit = op.now_ns - last_write_ns > f64::from_bits(ns_bits);
                        if hit {
                            // The decayed store refreshes the cell like any
                            // write.
                            last_write_ns = op.now_ns;
                        }
                        hit
                    }
                    DecayRule::PullOpen { good_reads } => {
                        consecutive_reads = consecutive_reads.saturating_add(1);
                        let hit = consecutive_reads > good_reads;
                        if hit {
                            consecutive_reads = 0;
                        }
                        hit
                    }
                };
                if decayed || expected.is_some() {
                    program.push(SigOp::RDecay {
                        decayed,
                        expected: expected.map(|e| e & bit != 0),
                        base_mismatch: expected.is_some_and(|e| (e ^ golden) & !bit != 0),
                    });
                }
            }
        }
    }
    program
}

/// Builds the NPSF program for a five-distinct-word shape: a five-way
/// step-ordered merge that tracks the golden values of the non-base
/// support cells (they never deviate — the base is the only cell a
/// neighborhood fault touches), resolving neighborhood activation and
/// trigger events at build time.
fn build_npsf(trace: &CompiledTrace, shape: &NpsfShape) -> Vec<SigOp> {
    let base = shape.cells[0];
    let base_bit = 1u64 << base.bit;
    let lists: Vec<_> = shape.cells.iter().map(|c| trace.ops_for_word(c.word)).collect();
    let mut cursor = [0usize; 5];
    // Golden values of the support cells (power-up 0); slot 0 (the base)
    // is unused — the base's stored value lives in the lanes.
    let mut held = [false; 5];
    let matches_pattern = |held: &[bool; 5], from: usize| {
        (from..5).all(|k| held[k] == (shape.pattern >> (k - 1) & 1 == 1))
    };
    let mut program = Vec::new();
    loop {
        let mut next: Option<usize> = None;
        for i in 0..5 {
            if cursor[i] < lists[i].len()
                && next.is_none_or(|j: usize| {
                    lists[i][cursor[i]].step < lists[j][cursor[j]].step
                })
            {
                next = Some(i);
            }
        }
        let Some(i) = next else { break };
        let op = lists[i][cursor[i]];
        cursor[i] += 1;
        if i == 0 {
            match op.kind {
                TraceOpKind::Write(data) => {
                    program.push(SigOp::WVic { d: data & base_bit != 0 });
                }
                TraceOpKind::Read { expected, golden, .. } => {
                    let Some(e) = expected else { continue };
                    let expected = e & base_bit != 0;
                    let base_mismatch = (e ^ golden) & !base_bit != 0;
                    if shape.class == LaneClass::NpsfStatic {
                        let active = matches_pattern(&held, 1);
                        program.push(SigOp::RNpsf { active, expected, base_mismatch });
                    } else {
                        program.push(SigOp::RVic { expected, base_mismatch });
                    }
                }
            }
        } else if let TraceOpKind::Write(data) = op.kind {
            let new = data >> shape.cells[i].bit & 1 == 1;
            let old = held[i];
            held[i] = new;
            // Active-family trigger: a transition of the trigger cell in
            // the sensitizing direction while the deleted neighborhood
            // holds the activation pattern flips the base.
            if shape.class == LaneClass::NpsfActive
                && i == 1
                && old != new
                && new == shape.rising
                && matches_pattern(&held, 2)
            {
                program.push(SigOp::Flip);
            }
        }
    }
    program
}

/// Canonicalizes a program for data background: if the first
/// polarity-carrying bit is 1, every projected data/expectation/golden bit
/// is complemented and `true` is returned so the caller records the lane's
/// flip. Detection is computed in canonical space, where the global
/// complement cancels out of every comparison — so faults whose
/// projections are complements of each other share one batch. Structural
/// flags (`base_mismatch`, `decayed`, `active`, ports, trigger events) are
/// polarity-free and stay.
fn canonicalize(program: &mut [SigOp]) -> bool {
    let first_polarity = program.iter().find_map(|op| match *op {
        SigOp::WVic { d } | SigOp::WAgg { d } | SigOp::WBoth { d_vic: d, .. } => Some(d),
        SigOp::RVic { expected, .. } | SigOp::RNpsf { expected, .. } => Some(expected),
        SigOp::RSof { expected: Some(e), .. } | SigOp::RDecay { expected: Some(e), .. } => {
            Some(e)
        }
        SigOp::RSof { prev: PrevBit::Golden(b), .. } => Some(b),
        SigOp::RSof { .. } | SigOp::RDecay { .. } | SigOp::Flip => None,
    });
    if first_polarity != Some(true) {
        return false;
    }
    for op in program {
        match op {
            SigOp::WVic { d } | SigOp::WAgg { d } => *d = !*d,
            SigOp::WBoth { d_vic, d_agg } => {
                *d_vic = !*d_vic;
                *d_agg = !*d_agg;
            }
            SigOp::RVic { expected, .. } | SigOp::RNpsf { expected, .. } => {
                *expected = !*expected;
            }
            SigOp::RSof { prev, expected, .. } => {
                if let PrevBit::Golden(b) = prev {
                    *b = !*b;
                }
                if let Some(e) = expected {
                    *e = !*e;
                }
            }
            SigOp::RDecay { expected, .. } => {
                if let Some(e) = expected {
                    *e = !*e;
                }
            }
            SigOp::Flip => {}
        }
    }
    true
}

/// Executes one batch: a single replay of the shared canonical program
/// with branch-free per-lane updates, returning the sticky detected lane
/// vector. Each lane update is the exact projection of the corresponding
/// single-fault path in `mbist_mem::array` (and [`crate::sliced`]) onto
/// the fault's support bits, in canonical space — the lane's real state is
/// the canonical state XOR its flip bit, and the XOR cancels out of every
/// detection comparison.
fn run_batch(program: &[SigOp], batch: &LaneMasks, ports: u8) -> Lanes {
    let live = Lanes::first(batch.lanes);
    let splat = Lanes::splat;
    // SAF injection clamps the stored value immediately; everything else
    // powers up 0 like the array — whose canonical image is the flip mask.
    let mut vic = if batch.class == LaneClass::StuckAt { batch.stuck } else { batch.flip };
    let mut agg = batch.flip;
    // Per-port stuck-open sense latches (the value is unused until the
    // first read resolves it).
    let mut latch: Vec<Lanes> = Vec::new();
    if batch.class == LaneClass::StuckOpen {
        latch.resize(usize::from(ports), Lanes::ZERO);
    }
    let mut detected = batch.pre_detected & live;
    if detected == live {
        return detected;
    }
    for &op in program {
        match op {
            SigOp::WVic { d } => {
                let dm = splat(d);
                match batch.class {
                    LaneClass::StuckAt => vic = batch.stuck,
                    LaneClass::Transition => {
                        // A broken 0→1 (rising lanes) leaves the cell 0; a
                        // broken 1→0 leaves it 1.
                        let block_up = batch.rising & !vic & dm;
                        let block_down = !batch.rising & vic & !dm;
                        vic = (dm & !block_up) | block_down;
                    }
                    // Everything else commits plainly: coupling write-phase
                    // effects key on the *aggressor* word, decay and static
                    // NPSF are read-path effects, and stuck-open programs
                    // carry no writes at all.
                    _ => vic = dm,
                }
            }
            SigOp::WAgg { d } => {
                let dm = splat(d);
                let changed = agg ^ dm;
                // Fired: the aggressor actually transitioned and its new
                // value matches the lane's triggering direction. Inter-word
                // victims are always sensitized.
                let fired = changed & !(dm ^ batch.rising);
                match batch.class {
                    LaneClass::CouplingInversion => vic = vic ^ fired,
                    LaneClass::CouplingIdempotent => {
                        vic = (vic & !fired) | (batch.forced & fired);
                    }
                    // CFst has no write-phase effect; other classes never
                    // contain WAgg.
                    _ => {}
                }
                agg = dm;
            }
            SigOp::WBoth { d_vic, d_agg } => {
                let (dv, da) = (splat(d_vic), splat(d_agg));
                // Intra-word sensitization: the coupling only lands if the
                // same write did not *also* change the victim bit.
                let fired = (agg ^ da) & !(da ^ batch.rising) & !(vic ^ dv);
                match batch.class {
                    LaneClass::CouplingInversion => vic = dv ^ fired,
                    LaneClass::CouplingIdempotent => {
                        vic = (dv & !fired) | (batch.forced & fired);
                    }
                    _ => vic = dv,
                }
                agg = da;
            }
            SigOp::RVic { expected, base_mismatch } => {
                let obs = match batch.class {
                    // The read path clamps too (storage already is).
                    LaneClass::StuckAt => batch.stuck,
                    // State coupling masks the observation, not the store.
                    LaneClass::CouplingState => {
                        let active = !(agg ^ batch.when);
                        (active & batch.forced) | (!active & vic)
                    }
                    _ => vic,
                };
                let miss = if base_mismatch { live } else { obs ^ splat(expected) };
                detected |= miss & live;
                if detected == live {
                    return detected;
                }
            }
            SigOp::RSof { port, prev, expected, base_mismatch } => {
                // The sense amp repeats the previous port read; the invalid
                // latch reads 0, whose canonical image is the flip mask.
                let obs = match prev {
                    PrevBit::Invalid => batch.flip,
                    PrevBit::SelfLatch => latch[usize::from(port)],
                    PrevBit::Golden(b) => splat(b),
                };
                latch[usize::from(port)] = obs;
                if let Some(e) = expected {
                    let miss = if base_mismatch { live } else { obs ^ splat(e) };
                    detected |= miss & live;
                    if detected == live {
                        return detected;
                    }
                }
            }
            SigOp::RDecay { decayed, expected, base_mismatch } => {
                if decayed {
                    // The decayed store commits before observation.
                    vic = batch.forced;
                }
                if let Some(e) = expected {
                    let miss = if base_mismatch { live } else { vic ^ splat(e) };
                    detected |= miss & live;
                    if detected == live {
                        return detected;
                    }
                }
            }
            SigOp::RNpsf { active, expected, base_mismatch } => {
                let obs = if active { batch.forced } else { vic };
                let miss = if base_mismatch { live } else { obs ^ splat(expected) };
                detected |= miss & live;
                if detected == live {
                    return detected;
                }
            }
            SigOp::Flip => vic = !vic,
        }
    }
    detected
}

/// The memoized build shape of a program: faults with equal keys share one
/// build (programs are polarity-independent after canonicalization, so
/// e.g. SAF and TF at the same cell, both decay rules' polarities, or all
/// sixteen static-NPSF patterns on one neighborhood, reuse work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BuildKey {
    Plain(CellId, Option<CellId>),
    Sof(CellId),
    Decay(CellId, DecayRule),
    Npsf(NpsfShape),
}

impl BuildKey {
    fn of(spec: &LaneSpec) -> Self {
        match spec.class {
            LaneClass::StuckOpen => Self::Sof(spec.vic),
            LaneClass::Decay => Self::Decay(spec.vic, spec.decay.expect("decay rule")),
            LaneClass::NpsfStatic | LaneClass::NpsfActive => {
                Self::Npsf(spec.npsf.expect("npsf shape"))
            }
            _ => Self::Plain(spec.vic, spec.agg),
        }
    }
}

/// Program store with two-level memoization: per build shape
/// ([`BuildKey`]) and per canonical content (faults at different
/// addresses — or complementary backgrounds — whose canonical programs
/// coincide share one batch).
#[derive(Default)]
struct Programs {
    store: Vec<Vec<SigOp>>,
    by_key: HashMap<BuildKey, (usize, bool), FnvBuild>,
    by_content: HashMap<Vec<SigOp>, usize, FnvBuild>,
}

impl Programs {
    /// Builds `spec`'s program, memoized per build key. Returns the
    /// canonical program id plus the flip this fault's lane must record.
    fn id_for(&mut self, trace: &CompiledTrace, spec: &LaneSpec) -> (usize, bool) {
        let key = BuildKey::of(spec);
        if let Some(&hit) = self.by_key.get(&key) {
            return hit;
        }
        let entry = self.id_for_content(trace, spec);
        self.by_key.insert(key, entry);
        entry
    }

    /// Builds (or content-dedups) the canonical program for one
    /// representative spec — the route-key paths call this once per key.
    fn id_for_content(&mut self, trace: &CompiledTrace, spec: &LaneSpec) -> (usize, bool) {
        let mut program = match spec.class {
            LaneClass::StuckOpen => build_sof(trace, spec.vic, trace.geometry().ports()),
            LaneClass::Decay => {
                build_decay(trace, spec.vic, spec.decay.expect("decay rule"))
            }
            LaneClass::NpsfStatic | LaneClass::NpsfActive => {
                build_npsf(trace, &spec.npsf.expect("npsf shape"))
            }
            _ => build_plain(trace, spec.vic, spec.agg),
        };
        let flipped = canonicalize(&mut program);
        let id = match self.by_content.get(&program) {
            Some(&id) => id,
            None => {
                let id = self.store.len();
                self.store.push(program.clone());
                self.by_content.insert(program, id);
                id
            }
        };
        (id, flipped)
    }
}

/// O(1) batch route for a plain-shape fault, derived from the trace's
/// compile-time word-content classes: faults with equal keys provably
/// share an access program, so the per-fault cost of batching is one small
/// hash lookup instead of rebuilding and hashing the fault's whole
/// projected program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RouteKey {
    class: LaneClass,
    /// 0 = single cell, 1 = intra-word pair, 2 = inter-word pair with
    /// victim at the lower address, 3 = with aggressor at the lower
    /// address (2/3 only issued when the trace certifies address-uniform
    /// interleave).
    shape: u8,
    vic_class: u32,
    vic_bit: u8,
    agg_class: u32,
    agg_bit: u8,
}

/// O(1) batch route for a five-cell NPSF fault under the address-uniform
/// certificate: on a uniform trace every word's op list is one segment
/// projection per march element, ordered by address rank, so the merged
/// projection of the five support words — and with it the built program —
/// depends only on their content classes, bit positions, relative address
/// order, and the activation parameters. ~tens of keys cover a whole NPSF
/// universe instead of one five-way merge per fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct NpsfRouteKey {
    class: LaneClass,
    classes: [u32; 5],
    bits: [u8; 5],
    /// Relative address rank of each support word among the five (the
    /// words are pairwise distinct, so ranks are a permutation).
    rank: [u8; 5],
    pattern: u8,
    rising: bool,
}

/// How the scheduler resolves a fault's program.
enum Route {
    Plain(RouteKey),
    Npsf(NpsfRouteKey),
    /// No uniform shortcut: build via the [`BuildKey`] memo (cheap —
    /// stuck-open and decay builds walk one op list, and non-uniform
    /// traces are the slow path anyway).
    Keyed,
}

fn route_of(trace: &CompiledTrace, spec: &LaneSpec, uniform: bool) -> Route {
    match spec.class {
        LaneClass::StuckAt
        | LaneClass::Transition
        | LaneClass::CouplingInversion
        | LaneClass::CouplingIdempotent
        | LaneClass::CouplingState => {
            let key = match spec.agg {
                None => RouteKey {
                    class: spec.class,
                    shape: 0,
                    vic_class: trace.word_class(spec.vic.word),
                    vic_bit: spec.vic.bit,
                    agg_class: 0,
                    agg_bit: 0,
                },
                Some(a) if a.word == spec.vic.word => RouteKey {
                    class: spec.class,
                    shape: 1,
                    vic_class: trace.word_class(spec.vic.word),
                    vic_bit: spec.vic.bit,
                    agg_class: 0,
                    agg_bit: a.bit,
                },
                Some(a) if uniform => RouteKey {
                    class: spec.class,
                    shape: if spec.vic.word < a.word { 2 } else { 3 },
                    vic_class: trace.word_class(spec.vic.word),
                    vic_bit: spec.vic.bit,
                    agg_class: trace.word_class(a.word),
                    agg_bit: a.bit,
                },
                Some(_) => return Route::Keyed,
            };
            Route::Plain(key)
        }
        LaneClass::NpsfStatic | LaneClass::NpsfActive if uniform => {
            let shape = spec.npsf.as_ref().expect("npsf shape");
            let mut classes = [0u32; 5];
            let mut bits = [0u8; 5];
            let mut rank = [0u8; 5];
            for (i, c) in shape.cells.iter().enumerate() {
                classes[i] = trace.word_class(c.word);
                bits[i] = c.bit;
                rank[i] = shape.cells.iter().filter(|o| o.word < c.word).count() as u8;
            }
            Route::Npsf(NpsfRouteKey {
                class: spec.class,
                classes,
                bits,
                rank,
                pattern: shape.pattern,
                rising: shape.rising,
            })
        }
        _ => Route::Keyed,
    }
}

/// Simulates a chunk of faults: every address-local fault is grouped into
/// lanes and replayed once per batch; decoder faults route per fault
/// through the same sliced path as [`SimEngine::Sliced`]. Returns one flag
/// per fault, in chunk order — batching never reorders or changes a
/// verdict, only the wall-clock cost.
pub(crate) fn detect_chunk(
    trace: &CompiledTrace,
    faults: &[FaultKind],
    scratch: &mut WorkerScratch,
    cancel: &CancelToken,
) -> Vec<bool> {
    let mut flags = vec![false; faults.len()];
    let mut programs = Programs::default();
    let mut batches: Vec<Batch> = Vec::new();
    // Program resolution is memoized per route key; the open (possibly
    // full) batch lives per (class, canonical program), so route keys that
    // canonicalize onto one program — complementary backgrounds — share
    // batches. A full batch is replaced by a fresh one on the next hit.
    let mut routed: HashMap<RouteKey, (usize, bool), FnvBuild> =
        HashMap::with_hasher(FnvBuild);
    let mut routed_npsf: HashMap<NpsfRouteKey, (usize, bool), FnvBuild> =
        HashMap::with_hasher(FnvBuild);
    let mut open: HashMap<(LaneClass, usize), usize, FnvBuild> =
        HashMap::with_hasher(FnvBuild);
    let uniform = trace.uniform_interleave();
    let miscompares = trace.golden_miscompares();
    let ports = trace.geometry().ports();
    for (index, &fault) in faults.iter().enumerate() {
        // Batch flags land out of chunk order, so a cancelled chunk cannot
        // return a meaningful prefix: hand back an empty (clearly partial)
        // vector and let the caller discard it after checking the token.
        if index % CANCEL_CHECK_STRIDE == 0 && cancel.is_cancelled() {
            return Vec::new();
        }
        let Some(spec) = lane_spec(fault) else {
            flags[index] = detect_one(trace, fault, SimEngine::Sliced, scratch);
            continue;
        };
        let (program, flipped) = match route_of(trace, &spec, uniform) {
            Route::Plain(key) => match routed.entry(key) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => *e.insert(programs.id_for_content(trace, &spec)),
            },
            Route::Npsf(key) => match routed_npsf.entry(key) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => *e.insert(programs.id_for_content(trace, &spec)),
            },
            Route::Keyed => programs.id_for(trace, &spec),
        };
        let slot = match open.entry((spec.class, program)) {
            Entry::Occupied(mut e) => refill(&mut batches, e.get_mut(), spec.class),
            Entry::Vacant(e) => {
                batches.push(Batch::new(spec.class, program));
                *e.insert(batches.len() - 1)
            }
        };
        let pre_detected = !miscompares.is_empty()
            && miscompares.iter().any(|&(_, addr)| addr != spec.vic.word);
        batches[slot].push(index, &spec, flipped, pre_detected);
    }
    for batch in &batches {
        if cancel.is_cancelled() {
            return Vec::new();
        }
        let detected = run_batch(&programs.store[batch.program], &batch.masks, ports);
        for (lane, &index) in batch.faults.iter().enumerate() {
            flags[index] = detected.get(lane);
        }
    }
    flags
}

/// Returns the slot an open batch lives in, replacing a full batch with a
/// fresh one for the same program (updating the open slot in place).
fn refill(batches: &mut Vec<Batch>, slot: &mut usize, class: LaneClass) -> usize {
    if batches[*slot].faults.len() == LANES {
        let program = batches[*slot].program;
        batches.push(Batch::new(class, program));
        *slot = batches.len() - 1;
    }
    *slot
}

/// The trace-independent batch route of a fault under the *planned
/// signature* — address-uniform interleave, one word-content class,
/// clean golden replay. Every word class is provably 0 then, so the route
/// key [`route_of`] would compute is a function of the fault alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PlanKey {
    Plain(RouteKey),
    Npsf(NpsfRouteKey),
}

/// [`route_of`] specialized to the planned signature (`word_class ≡ 0`,
/// `uniform = true`), computable without a trace. Returns `None` for
/// faults the plan scores through [`detect_chunk`] instead: decoder
/// faults, overlapping NPSF shapes, and the stuck-open/decay families
/// (their programs fold by content, not by a trace-independent key).
fn plan_route(spec: &LaneSpec) -> Option<PlanKey> {
    match spec.class {
        LaneClass::StuckAt
        | LaneClass::Transition
        | LaneClass::CouplingInversion
        | LaneClass::CouplingIdempotent
        | LaneClass::CouplingState => {
            let key = match spec.agg {
                None => RouteKey {
                    class: spec.class,
                    shape: 0,
                    vic_class: 0,
                    vic_bit: spec.vic.bit,
                    agg_class: 0,
                    agg_bit: 0,
                },
                Some(a) if a.word == spec.vic.word => RouteKey {
                    class: spec.class,
                    shape: 1,
                    vic_class: 0,
                    vic_bit: spec.vic.bit,
                    agg_class: 0,
                    agg_bit: a.bit,
                },
                Some(a) => RouteKey {
                    class: spec.class,
                    shape: if spec.vic.word < a.word { 2 } else { 3 },
                    vic_class: 0,
                    vic_bit: spec.vic.bit,
                    agg_class: 0,
                    agg_bit: a.bit,
                },
            };
            Some(PlanKey::Plain(key))
        }
        LaneClass::NpsfStatic | LaneClass::NpsfActive => {
            let shape = spec.npsf.as_ref().expect("npsf shape");
            let mut bits = [0u8; 5];
            let mut rank = [0u8; 5];
            for (i, c) in shape.cells.iter().enumerate() {
                bits[i] = c.bit;
                rank[i] = shape.cells.iter().filter(|o| o.word < c.word).count() as u8;
            }
            Some(PlanKey::Npsf(NpsfRouteKey {
                class: spec.class,
                classes: [0; 5],
                bits,
                rank,
                pattern: shape.pattern,
                rising: shape.rising,
            }))
        }
        LaneClass::StuckOpen | LaneClass::Decay => None,
    }
}

/// One batch of a [`UniversePlan`]: raw (never-flipped) lane masks, ready
/// to be re-based by the group's canonicalization flip at scoring time.
struct PlanSlot {
    masks: LaneMasks,
}

/// A route-key group of a [`UniversePlan`]: every member provably shares
/// one canonical program on any trace satisfying the planned signature, so
/// one representative build serves every slot.
struct PlanGroup {
    /// First member in universe order — the build representative.
    rep: FaultKind,
    slots: Vec<PlanSlot>,
}

/// A fault universe pre-batched for repeated scoring against many traces
/// of one shape — the synthesis hot path, where thousands of candidate
/// traces are scored against one fixed universe.
///
/// [`detect_chunk`] spends most of a scoring call on per-fault routing
/// (a `lane_spec` lowering plus a hash lookup per fault) and per-call map
/// allocation, all of which produce the *same* grouping for every
/// candidate: search candidates expand to single-background single-port
/// march streams, which are address-uniform with one word-content class
/// and a clean golden replay. Under that signature (checked by
/// [`Self::applies`]) the batch route of every plain and NPSF fault is a
/// function of the fault alone, so the grouping — lane order, per-lane
/// constant masks, batch membership — is computed once here and replayed
/// against each candidate with just one program build per group and one
/// [`run_batch`] per slot.
///
/// Stuck-open, decay, decoder and overlapping-NPSF faults keep their
/// exact per-trace routing through [`detect_chunk`] (the `rest` list);
/// verdicts are identical either way — per-lane updates never depend on
/// batch composition — so a planned count always equals the engine count.
pub(crate) struct UniversePlan {
    geometry: mbist_mem::MemGeometry,
    groups: Vec<PlanGroup>,
    /// Faults scored through [`detect_chunk`] (in universe order).
    rest: Vec<FaultKind>,
}

impl UniversePlan {
    /// Pre-batches `universe` for traces on `geometry` satisfying the
    /// planned signature.
    pub(crate) fn new(geometry: mbist_mem::MemGeometry, universe: &[FaultKind]) -> Self {
        let mut groups: Vec<PlanGroup> = Vec::new();
        let mut by_key: HashMap<PlanKey, usize, FnvBuild> = HashMap::with_hasher(FnvBuild);
        let mut rest = Vec::new();
        for &fault in universe {
            let Some(spec) = lane_spec(fault) else {
                rest.push(fault);
                continue;
            };
            let Some(key) = plan_route(&spec) else {
                rest.push(fault);
                continue;
            };
            let gi = match by_key.entry(key) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    groups.push(PlanGroup { rep: fault, slots: Vec::new() });
                    *e.insert(groups.len() - 1)
                }
            };
            let group = &mut groups[gi];
            if group.slots.last().is_none_or(|s| s.masks.lanes == LANES) {
                group.slots.push(PlanSlot { masks: LaneMasks::new(spec.class) });
            }
            let slot = group.slots.last_mut().expect("slot just ensured");
            // Raw space: flip correction is applied per trace at scoring
            // time, pre-detection is impossible under a clean golden replay.
            slot.masks.push(&spec, false, false);
        }
        Self { geometry, groups, rest }
    }

    /// Which words' per-word op lists [`Self::count_detected`] reads: the
    /// support cells of each group's representative (programs are built
    /// once per group from the representative's cells) plus every cell of
    /// the ungrouped rest. A scoring loop may compile traces with only
    /// these words' op lists populated
    /// ([`crate::trace::TraceArena::set_word_support`]) — but such traces
    /// are valid ONLY for [`Self::count_detected`], never for the general
    /// per-fault engines, which read arbitrary fault cells.
    pub(crate) fn support_mask(&self) -> Vec<bool> {
        let words = usize::try_from(self.geometry.words()).expect("words fit usize");
        let mut mask = vec![false; words];
        let mark = |mask: &mut Vec<bool>, fault: FaultKind| match lane_spec(fault) {
            Some(spec) => {
                mask[usize::try_from(spec.vic.word).expect("word fits usize")] = true;
                if let Some(agg) = spec.agg {
                    mask[usize::try_from(agg.word).expect("word fits usize")] = true;
                }
                if let Some(shape) = spec.npsf {
                    for cell in shape.cells {
                        mask[usize::try_from(cell.word).expect("word fits usize")] = true;
                    }
                }
                false
            }
            // Non-packable faults take the per-fault fallback, which
            // replays arbitrary words: the whole array is support.
            None => true,
        };
        for group in &self.groups {
            let _ = mark(&mut mask, group.rep);
        }
        for &fault in &self.rest {
            if mark(&mut mask, fault) {
                return vec![true; words];
            }
        }
        mask
    }

    /// Whether the plan's soundness preconditions hold for `trace` (same
    /// geometry, address-uniform, one content class, clean golden replay).
    pub(crate) fn applies(&self, trace: &CompiledTrace) -> bool {
        trace.geometry() == self.geometry
            && trace.uniform_interleave()
            && trace.monoclass()
            && trace.golden_miscompares().is_empty()
    }

    /// Counts the universe's detected faults against `trace` using the
    /// precomputed batching, with the same early-exit cap semantics as
    /// [`CompiledTrace::count_detected`]: a reached cap returns exactly
    /// `stop_after`, otherwise the exact total.
    ///
    /// # Panics
    ///
    /// Panics if [`Self::applies`] is false for `trace`.
    pub(crate) fn count_detected(
        &self,
        trace: &CompiledTrace,
        stop_after: Option<usize>,
        scratch: &mut WorkerScratch,
    ) -> usize {
        assert!(self.applies(trace), "universe plan preconditions violated");
        let stop = stop_after.unwrap_or(usize::MAX);
        if stop == 0 {
            return 0;
        }
        let ports = trace.geometry().ports();
        let mut programs = Programs::default();
        let mut count = 0usize;
        for group in &self.groups {
            let spec = lane_spec(group.rep).expect("plan groups are lane-packable");
            let (pid, flipped) = programs.id_for_content(trace, &spec);
            let program = &programs.store[pid];
            for slot in &group.slots {
                let masks = slot.masks.flip_corrected(flipped);
                count += run_batch(program, &masks, ports).count();
                if count >= stop {
                    return stop;
                }
            }
        }
        for chunk in self.rest.chunks(LANES) {
            let flags = detect_chunk(trace, chunk, scratch, &CancelToken::none());
            count += flags.iter().filter(|&&f| f).count();
            if count >= stop {
                return stop;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{expand_with, ExpandOptions};
    use crate::library;
    use mbist_mem::{
        class_universe, FaultClass, MemGeometry, MemoryArray, PortId, UniverseSpec,
    };
    use mbist_rtl::Bits;

    fn assert_packed_equivalence(g: MemGeometry, test: &crate::MarchTest) {
        let steps = expand_with(test, &g, &ExpandOptions::for_geometry(&g));
        let trace = CompiledTrace::from_steps(g, &steps);
        let spec = UniverseSpec::default();
        let mut scratch = MemoryArray::new(g);
        for class in FaultClass::ALL {
            let universe = class_universe(&g, class, &spec);
            let packed = detect_chunk(
                &trace,
                &universe,
                &mut WorkerScratch::default(),
                &CancelToken::none(),
            );
            for (fault, packed_flag) in universe.iter().zip(packed) {
                assert_eq!(
                    packed_flag,
                    trace.detect_full(*fault, &mut scratch),
                    "{}: packed disagrees with full replay on {fault} ({g})",
                    test.name()
                );
            }
        }
    }

    #[test]
    fn packed_matches_full_replay_across_library_and_geometries() {
        for g in [
            MemGeometry::bit_oriented(16),
            MemGeometry::bit_oriented(24),
            MemGeometry::word_oriented(8, 4),
            MemGeometry::new(12, 1, 2),
        ] {
            for test in [library::mats(), library::march_c(), library::march_b()] {
                assert_packed_equivalence(g, &test);
            }
        }
    }

    #[test]
    fn packed_matches_on_timing_sensitive_tests() {
        // Pauses and triple reads drive the retention and pull-open decay
        // schedules, and the stuck-open self-latch resolution — all lane-
        // packed now, so the whole universe must stay bit-identical.
        let g = MemGeometry::bit_oriented(16);
        for test in [library::march_c_plus(), library::march_c_plus_plus()] {
            assert_packed_equivalence(g, &test);
        }
    }

    #[test]
    fn march_expansions_collapse_to_few_programs() {
        // Address-uniform march streams must dedupe aggressively: the whole
        // SAF universe of a 64-word memory shares one program, so the trace
        // is walked once for every 256 faults, not once per fault.
        let g = MemGeometry::bit_oriented(64);
        let steps = expand_with(&library::march_c(), &g, &ExpandOptions::for_geometry(&g));
        let trace = CompiledTrace::from_steps(g, &steps);
        let mut programs = Programs::default();
        let universe = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
        for fault in &universe {
            let spec = lane_spec(*fault).unwrap();
            programs.id_for(&trace, &spec);
        }
        assert_eq!(programs.store.len(), 1, "uniform stream must share one program");
        assert_eq!(programs.by_key.len(), 64, "one memo entry per cell");
    }

    #[test]
    fn new_lane_classes_collapse_to_few_programs() {
        // The newly vectorized classes build per cell but content-fold on
        // uniform streams: a handful of canonical programs (address-order
        // boundary words differ), never one per cell.
        let g = MemGeometry::bit_oriented(64);
        let steps = expand_with(
            &library::march_c_plus_plus(),
            &g,
            &ExpandOptions::for_geometry(&g),
        );
        let trace = CompiledTrace::from_steps(g, &steps);
        for class in [FaultClass::StuckOpen, FaultClass::Retention, FaultClass::PullOpen] {
            let mut programs = Programs::default();
            let universe = class_universe(&g, class, &UniverseSpec::default());
            assert!(!universe.is_empty());
            for fault in &universe {
                let spec = lane_spec(*fault).unwrap();
                programs.id_for(&trace, &spec);
            }
            assert!(
                programs.store.len() <= 4,
                "{class:?}: {} programs for {} faults",
                programs.store.len(),
                universe.len()
            );
        }
    }

    #[test]
    fn batches_fill_lanes_across_fault_polarity() {
        // sa0 and sa1 differ only in the per-lane stuck mask, so they pack
        // into the same batches: 256 SAFs on 128 words = exactly 1 batch,
        // 130 words = 2 (a full one plus a 4-lane remainder).
        for (words, expect_batches) in [(128u64, 1usize), (130, 2)] {
            let g = MemGeometry::bit_oriented(words);
            let steps = expand_with(&library::mats(), &g, &ExpandOptions::for_geometry(&g));
            let trace = CompiledTrace::from_steps(g, &steps);
            let universe =
                class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
            assert_eq!(universe.len() as u64, words * 2);
            // Count batches by replicating the scheduler's grouping.
            let mut programs = Programs::default();
            let mut lanes_per_key: HashMap<(LaneClass, usize), usize> = HashMap::new();
            for fault in &universe {
                let spec = lane_spec(*fault).unwrap();
                let (id, _) = programs.id_for(&trace, &spec);
                *lanes_per_key.entry((spec.class, id)).or_default() += 1;
            }
            let batch_count: usize =
                lanes_per_key.values().map(|n| n.div_ceil(LANES)).sum();
            assert_eq!(batch_count, expect_batches, "{words} words");
        }
    }

    #[test]
    fn partial_final_lane_blocks_stay_exact() {
        // Lane counts straddling every `[u64; 4]` block boundary: the live
        // mask must confine partial blocks without perturbing verdicts.
        let g = MemGeometry::bit_oriented(300);
        let steps = expand_with(&library::mats(), &g, &ExpandOptions::for_geometry(&g));
        let trace = CompiledTrace::from_steps(g, &steps);
        let universe = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
        assert!(universe.len() > 257);
        let mut scratch = MemoryArray::new(g);
        let oracle: Vec<bool> =
            universe[..257].iter().map(|f| trace.detect_full(*f, &mut scratch)).collect();
        for n in [1usize, 63, 64, 65, 255, 256, 257] {
            let flags = detect_chunk(
                &trace,
                &universe[..n],
                &mut WorkerScratch::default(),
                &CancelToken::none(),
            );
            assert_eq!(flags[..], oracle[..n], "lane count {n}");
        }
    }

    #[test]
    fn complementary_backgrounds_share_one_canonical_program() {
        // Under a checkerboard background the even- and odd-bit projections
        // are exact complements; canonicalization folds them onto one
        // program, with half the lanes recording a flip — and verdicts
        // stay bit-identical to the full replay.
        let g = MemGeometry::word_oriented(16, 8);
        let opts =
            ExpandOptions { backgrounds: vec![Bits::new(8, 0x55)], ports: vec![PortId(0)] };
        let steps = expand_with(&library::march_c(), &g, &opts);
        let trace = CompiledTrace::from_steps(g, &steps);
        let universe = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
        assert_eq!(universe.len(), 256);
        let mut programs = Programs::default();
        let mut flips = 0usize;
        for fault in &universe {
            let spec = lane_spec(*fault).unwrap();
            let (_, flipped) = programs.id_for(&trace, &spec);
            flips += usize::from(flipped);
        }
        assert_eq!(programs.store.len(), 1, "complements must fold onto one program");
        assert_eq!(flips, 128, "half the lanes ride the complemented projection");
        let packed = detect_chunk(
            &trace,
            &universe,
            &mut WorkerScratch::default(),
            &CancelToken::none(),
        );
        let mut scratch = MemoryArray::new(g);
        for (fault, flag) in universe.iter().zip(packed) {
            assert_eq!(flag, trace.detect_full(*fault, &mut scratch), "{fault}");
        }
    }

    #[test]
    fn dirty_streams_pre_detect_or_walk_exactly() {
        use mbist_mem::{BusCycle, Operation, TestStep};
        // A golden miscompare at word 1: faults on other words pre-detect,
        // faults on word 1 are decided by the walk — exactly like full.
        let g = MemGeometry::bit_oriented(4);
        let steps = [TestStep::Bus(BusCycle {
            port: PortId(0),
            addr: 1,
            op: Operation::Read,
            expected: Some(Bits::bit1(true)), // powers up 0 → dirty
        })];
        let trace = CompiledTrace::from_steps(g, &steps);
        let spec = UniverseSpec::default();
        let mut scratch = MemoryArray::new(g);
        for class in FaultClass::ALL {
            let universe = class_universe(&g, class, &spec);
            let packed = detect_chunk(
                &trace,
                &universe,
                &mut WorkerScratch::default(),
                &CancelToken::none(),
            );
            for (fault, flag) in universe.iter().zip(packed) {
                assert_eq!(flag, trace.detect_full(*fault, &mut scratch), "{fault}");
            }
        }
    }

    #[test]
    fn only_decoder_faults_take_the_fallback() {
        // Every address-local class lane-packs now; decoder faults are the
        // single per-fault route left.
        for class in FaultClass::ALL {
            let g = MemGeometry::bit_oriented(16);
            let universe = class_universe(&g, class, &UniverseSpec::default());
            assert!(!universe.is_empty(), "{class:?} universe must be populated");
            let expect = class != FaultClass::AddressDecoder;
            for fault in universe {
                assert_eq!(batchable(fault), expect, "{fault} routed to the wrong engine");
            }
        }
        // Hand-made NPSF neighborhoods that reuse a word do not lane-pack
        // (the five support words must be pairwise distinct) and fall back
        // per fault.
        let overlapping = FaultKind::NpsfStatic {
            base: CellId::new(0, 0),
            neighborhood: [
                (CellId::new(1, 0), true),
                (CellId::new(2, 0), false),
                (CellId::new(3, 0), true),
                (CellId::new(1, 1), false),
            ],
            forced: true,
        };
        assert!(!batchable(overlapping));
    }

    #[test]
    fn universe_plan_matches_engine_counts_exactly() {
        use crate::trace::SimEngine;
        use mbist_mem::subset_universe;
        // Every class — including the rest-list families (stuck-open,
        // decay, decoder) — across several library tests: the planned count
        // must equal the engine count, capped and uncapped.
        let g = MemGeometry::bit_oriented(24);
        let spec = UniverseSpec::default();
        let universe = subset_universe(&g, &FaultClass::ALL, &spec, 64);
        let plan = UniversePlan::new(g, &universe);
        for test in [library::mats(), library::march_c(), library::march_b()] {
            let steps = expand_with(&test, &g, &ExpandOptions::for_geometry(&g));
            let trace = CompiledTrace::from_steps(g, &steps);
            assert!(plan.applies(&trace), "{}: signature must hold", test.name());
            let total = trace.count_detected(&universe, SimEngine::Packed, None);
            let mut scratch = WorkerScratch::default();
            assert_eq!(
                plan.count_detected(&trace, None, &mut scratch),
                total,
                "{}: planned total diverges",
                test.name()
            );
            for cap in [0, 1, total.saturating_sub(1), total, total + 10] {
                assert_eq!(
                    plan.count_detected(&trace, Some(cap), &mut scratch),
                    total.min(cap),
                    "{}: cap {cap}",
                    test.name()
                );
            }
        }
    }

    #[test]
    fn universe_plan_declines_non_conforming_traces() {
        let g = MemGeometry::bit_oriented(4);
        let universe = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
        let plan = UniversePlan::new(g, &universe);
        let w = |addr, bit| {
            TestStep::Bus(BusCycle {
                port: PortId(0),
                addr,
                op: Operation::Write(Bits::bit1(bit)),
                expected: None,
            })
        };
        use mbist_mem::{BusCycle, Operation, TestStep};
        // Non-monotone address order: no uniform certificate.
        let scrambled =
            CompiledTrace::from_steps(g, &[w(0, true), w(2, true), w(1, true), w(3, true)]);
        assert!(!plan.applies(&scrambled));
        // Uniform order but mixed data: more than one content class.
        let mixed = CompiledTrace::from_steps(
            g,
            &[w(0, true), w(1, false), w(2, true), w(3, true)],
        );
        assert!(!plan.applies(&mixed));
        // Wrong geometry.
        let g2 = MemGeometry::bit_oriented(8);
        let t2 = CompiledTrace::from_steps(
            g2,
            &expand_with(&library::mats(), &g2, &ExpandOptions::for_geometry(&g2)),
        );
        assert!(!plan.applies(&t2));
    }

    #[test]
    fn universe_plan_groups_stay_small_on_reference_config() {
        // The whole point: a 256-word 5-class universe collapses to a
        // handful of groups, so per-candidate routing work vanishes.
        use mbist_mem::subset_universe;
        let g = MemGeometry::bit_oriented(256);
        let classes = [
            FaultClass::StuckAt,
            FaultClass::Transition,
            FaultClass::CouplingInversion,
            FaultClass::CouplingIdempotent,
            FaultClass::CouplingState,
        ];
        let universe = subset_universe(&g, &classes, &UniverseSpec::default(), 256);
        let plan = UniversePlan::new(g, &universe);
        assert!(plan.rest.is_empty(), "all five classes are plan-routable");
        assert!(
            plan.groups.len() <= 16,
            "{} groups for {} faults",
            plan.groups.len(),
            universe.len()
        );
    }
}
