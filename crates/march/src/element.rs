//! March elements and test items.

use std::fmt;

use mbist_rtl::Direction;

use crate::op::MarchOp;

/// The address order of a march element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressOrder {
    /// ⇑ — traverse addresses 0 to n−1.
    Up,
    /// ⇓ — traverse addresses n−1 to 0.
    Down,
    /// ⇕ — either order is acceptable (realized as up).
    #[default]
    Any,
}

impl AddressOrder {
    /// The complemented order (`Any` stays `Any`).
    #[must_use]
    pub fn reversed(self) -> Self {
        match self {
            AddressOrder::Up => AddressOrder::Down,
            AddressOrder::Down => AddressOrder::Up,
            AddressOrder::Any => AddressOrder::Any,
        }
    }

    /// The concrete sweep direction used when the element executes
    /// (`Any` is realized as up, the convention every controller in this
    /// workspace shares so their operation streams stay comparable).
    #[must_use]
    pub fn direction(self) -> Direction {
        match self {
            AddressOrder::Up | AddressOrder::Any => Direction::Up,
            AddressOrder::Down => Direction::Down,
        }
    }

    /// The notation glyph.
    #[must_use]
    pub fn glyph(self) -> &'static str {
        match self {
            AddressOrder::Up => "⇑",
            AddressOrder::Down => "⇓",
            AddressOrder::Any => "⇕",
        }
    }
}

impl fmt::Display for AddressOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.glyph())
    }
}

/// One march element: an address order and a sequence of operations applied
/// to every cell before moving to the next address.
///
/// # Examples
///
/// ```
/// use mbist_march::{AddressOrder, MarchElement, MarchOp};
///
/// let e = MarchElement::new(
///     AddressOrder::Up,
///     vec![MarchOp::Read(false), MarchOp::Write(true)],
/// );
/// assert_eq!(e.to_string(), "⇑(r0,w1)");
/// assert_eq!(e.ops().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MarchElement {
    order: AddressOrder,
    ops: Vec<MarchOp>,
}

impl MarchElement {
    /// Creates an element.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty — an element must perform at least one
    /// operation.
    #[must_use]
    pub fn new(order: AddressOrder, ops: Vec<MarchOp>) -> Self {
        assert!(!ops.is_empty(), "march element must contain at least one operation");
        Self { order, ops }
    }

    /// The address order.
    #[must_use]
    pub fn order(&self) -> AddressOrder {
        self.order
    }

    /// The per-cell operation sequence.
    #[must_use]
    pub fn ops(&self) -> &[MarchOp] {
        &self.ops
    }

    /// Whether the element only writes (an initialization element).
    #[must_use]
    pub fn is_write_only(&self) -> bool {
        self.ops.iter().all(MarchOp::is_write)
    }

    /// Applies a complement mask: optionally reverse the order, complement
    /// write data and/or complement read (compare) data.
    #[must_use]
    pub fn complemented(&self, mask: ComplementMask) -> MarchElement {
        let order = if mask.order { self.order.reversed() } else { self.order };
        let ops = self
            .ops
            .iter()
            .map(|op| match op {
                MarchOp::Write(_) if mask.data => op.complemented(),
                MarchOp::Read(_) if mask.compare => op.complemented(),
                _ => *op,
            })
            .collect();
        MarchElement { order, ops }
    }
}

impl fmt::Display for MarchElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ops: Vec<String> = self.ops.iter().map(MarchOp::to_string).collect();
        write!(f, "{}({})", self.order, ops.join(","))
    }
}

/// Which polarities a symmetric repeat complements — the three auxiliary
/// bits of the paper's microcode *reference register*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ComplementMask {
    /// Complement the address order.
    pub order: bool,
    /// Complement written data.
    pub data: bool,
    /// Complement expected (compare) data.
    pub compare: bool,
}

impl ComplementMask {
    /// All non-trivial masks, most common first.
    pub const CANDIDATES: [ComplementMask; 7] = [
        ComplementMask { order: true, data: false, compare: false },
        ComplementMask { order: true, data: true, compare: true },
        ComplementMask { order: false, data: true, compare: true },
        ComplementMask { order: true, data: true, compare: false },
        ComplementMask { order: true, data: false, compare: true },
        ComplementMask { order: false, data: true, compare: false },
        ComplementMask { order: false, data: false, compare: true },
    ];

    /// Whether the mask complements nothing.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        !self.order && !self.data && !self.compare
    }
}

impl fmt::Display for ComplementMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.order {
            parts.push("order");
        }
        if self.data {
            parts.push("data");
        }
        if self.compare {
            parts.push("compare");
        }
        if parts.is_empty() {
            f.write_str("none")
        } else {
            f.write_str(&parts.join("+"))
        }
    }
}

/// An item of a march test: a march element or an idle pause (for
/// data-retention detection).
#[derive(Debug, Clone, PartialEq)]
pub enum MarchItem {
    /// A march element.
    Element(MarchElement),
    /// An idle pause of the given duration.
    Pause {
        /// Pause duration in nanoseconds.
        ns: f64,
    },
}

impl MarchItem {
    /// The element, if this item is one.
    #[must_use]
    pub fn as_element(&self) -> Option<&MarchElement> {
        match self {
            MarchItem::Element(e) => Some(e),
            MarchItem::Pause { .. } => None,
        }
    }

    /// Applies a complement mask (pauses are unaffected).
    #[must_use]
    pub fn complemented(&self, mask: ComplementMask) -> MarchItem {
        match self {
            MarchItem::Element(e) => MarchItem::Element(e.complemented(mask)),
            MarchItem::Pause { ns } => MarchItem::Pause { ns: *ns },
        }
    }
}

impl From<MarchElement> for MarchItem {
    fn from(e: MarchElement) -> Self {
        MarchItem::Element(e)
    }
}

impl fmt::Display for MarchItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarchItem::Element(e) => e.fmt(f),
            MarchItem::Pause { ns } => {
                if *ns >= 1e6 {
                    write!(f, "pause({}ms)", ns / 1e6)
                } else if *ns >= 1e3 {
                    write!(f, "pause({}us)", ns / 1e3)
                } else {
                    write!(f, "pause({ns}ns)")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(order: AddressOrder, ops: &[MarchOp]) -> MarchElement {
        MarchElement::new(order, ops.to_vec())
    }

    #[test]
    fn orders_reverse() {
        assert_eq!(AddressOrder::Up.reversed(), AddressOrder::Down);
        assert_eq!(AddressOrder::Down.reversed(), AddressOrder::Up);
        assert_eq!(AddressOrder::Any.reversed(), AddressOrder::Any);
        assert_eq!(AddressOrder::Any.direction(), Direction::Up);
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn empty_element_panics() {
        let _ = MarchElement::new(AddressOrder::Up, vec![]);
    }

    #[test]
    fn write_only_detection() {
        assert!(elem(AddressOrder::Any, &[MarchOp::Write(false)]).is_write_only());
        assert!(!elem(AddressOrder::Up, &[MarchOp::Read(false), MarchOp::Write(true)])
            .is_write_only());
    }

    #[test]
    fn complement_masks_apply_independently() {
        let e = elem(AddressOrder::Up, &[MarchOp::Read(false), MarchOp::Write(true)]);
        let order_only =
            e.complemented(ComplementMask { order: true, data: false, compare: false });
        assert_eq!(order_only.to_string(), "⇓(r0,w1)");
        let full =
            e.complemented(ComplementMask { order: true, data: true, compare: true });
        assert_eq!(full.to_string(), "⇓(r1,w0)");
        let data_only =
            e.complemented(ComplementMask { order: false, data: true, compare: false });
        assert_eq!(data_only.to_string(), "⇑(r0,w0)");
    }

    #[test]
    fn mask_display() {
        assert_eq!(ComplementMask::default().to_string(), "none");
        assert_eq!(
            ComplementMask { order: true, data: true, compare: true }.to_string(),
            "order+data+compare"
        );
    }

    #[test]
    fn pause_display_scales_units() {
        assert_eq!(MarchItem::Pause { ns: 500.0 }.to_string(), "pause(500ns)");
        assert_eq!(MarchItem::Pause { ns: 2_000.0 }.to_string(), "pause(2us)");
        assert_eq!(MarchItem::Pause { ns: 3e6 }.to_string(), "pause(3ms)");
    }

    #[test]
    fn item_conversions() {
        let e = elem(AddressOrder::Up, &[MarchOp::Read(true)]);
        let item: MarchItem = e.clone().into();
        assert_eq!(item.as_element(), Some(&e));
        assert!(MarchItem::Pause { ns: 1.0 }.as_element().is_none());
    }
}
