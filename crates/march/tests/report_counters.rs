//! `RunReport` accounting on word-oriented multiport geometries, and
//! `evaluate_coverage` under explicit `ExpandOptions` overrides.

use mbist_march::{
    evaluate_coverage, expand_with, library, run_steps, standard_backgrounds,
    CoverageOptions, ExpandOptions,
};
use mbist_mem::{FaultClass, MemGeometry, MemoryArray, PortId};

#[test]
fn report_counters_scale_with_backgrounds_and_ports() {
    // 8 words × 4 bits × 2 ports; the default expansion repeats the
    // algorithm per background (3 standard backgrounds at width 4) and per
    // port. March C is 10 ops/cell, half reads half writes.
    let g = MemGeometry::new(8, 4, 2);
    let opts = ExpandOptions::for_geometry(&g);
    assert_eq!(standard_backgrounds(4).len(), 3);
    let steps = expand_with(&library::march_c(), &g, &opts);
    let mut mem = MemoryArray::new(g);
    let r = run_steps(&mut mem, &steps);
    let expected_bus = 10 * 8 * 3 * 2;
    assert_eq!(r.bus_cycles, expected_bus);
    assert_eq!(r.reads, expected_bus / 2);
    assert_eq!(r.writes, expected_bus / 2);
    assert_eq!(r.pause_ns, 0.0);
    assert!(r.passed());
    assert_eq!(mem.accesses(), r.bus_cycles, "every bus cycle hits the array");
}

#[test]
fn report_counts_pauses_per_background_and_port() {
    // March C+ has 2 retention pauses per expansion pass; passes = 3
    // backgrounds × 2 ports.
    let g = MemGeometry::new(4, 4, 2);
    let steps = expand_with(&library::march_c_plus(), &g, &ExpandOptions::for_geometry(&g));
    let mut mem = MemoryArray::new(g);
    let r = run_steps(&mut mem, &steps);
    assert_eq!(r.pause_ns, 2.0 * library::DEFAULT_RETENTION_PAUSE_NS * 6.0);
    assert!(r.passed());
}

#[test]
fn coverage_honors_background_override() {
    // An intra-word idempotent coupling fault needs a background that
    // distinguishes the two bits; the full standard set finds strictly more
    // CFid faults than a single solid background on a word-oriented array.
    let g = MemGeometry::word_oriented(16, 4);
    let run = |expand: Option<ExpandOptions>| {
        evaluate_coverage(
            &library::march_c(),
            &g,
            &CoverageOptions {
                classes: vec![FaultClass::CouplingIdempotent],
                max_faults_per_class: Some(128),
                expand,
                ..CoverageOptions::default()
            },
        )
    };
    let full = run(None); // for_geometry: all standard backgrounds
    let minimal = run(Some(ExpandOptions::minimal(&g)));
    let full_row = full.row(FaultClass::CouplingIdempotent).unwrap();
    let min_row = minimal.row(FaultClass::CouplingIdempotent).unwrap();
    assert_eq!(full_row.total, min_row.total, "same sampled universe");
    assert!(
        full_row.detected > min_row.detected,
        "backgrounds must matter: full {} vs minimal {}",
        full_row.detected,
        min_row.detected
    );
}

#[test]
fn coverage_honors_port_override() {
    // Restricting expansion to one port of a symmetric dual-port array
    // must not change single-port-observable coverage rows.
    let g = MemGeometry::new(8, 1, 2);
    let both = ExpandOptions::for_geometry(&g);
    let single = ExpandOptions { ports: vec![PortId(0)], ..both.clone() };
    let run = |expand: ExpandOptions| {
        evaluate_coverage(
            &library::march_c(),
            &g,
            &CoverageOptions {
                classes: vec![FaultClass::StuckAt, FaultClass::Transition],
                expand: Some(expand),
                ..CoverageOptions::default()
            },
        )
    };
    assert_eq!(run(both).rows, run(single).rows);
}

#[test]
fn coverage_with_empty_backgrounds_detects_nothing() {
    // No backgrounds → empty step stream → nothing can be observed.
    let g = MemGeometry::bit_oriented(8);
    let report = evaluate_coverage(
        &library::march_c(),
        &g,
        &CoverageOptions {
            classes: vec![FaultClass::StuckAt],
            expand: Some(ExpandOptions { backgrounds: Vec::new(), ports: vec![PortId(0)] }),
            ..CoverageOptions::default()
        },
    );
    let row = report.row(FaultClass::StuckAt).unwrap();
    assert_eq!(row.detected, 0);
    assert!(row.total > 0);
}
