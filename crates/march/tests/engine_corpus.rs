//! Fixed-seed regression corpus for the three-way engine equivalence
//! (full vs sliced vs packed).
//!
//! The `sliced_equivalence` property suite explores random streams behind
//! the `proptest` feature; this corpus replays a committed set of
//! deterministic stream seeds on every tier-1 `cargo test` run, so an
//! engine divergence found in CI reproduces exactly — the failure message
//! names the `(seed, geometry)` pair, with no property-test RNG to chase.

use mbist_march::{
    expand_with, library, run_steps_detect, CompiledTrace, ExpandOptions, SimEngine,
};
use mbist_mem::{
    class_universe, FaultClass, MemGeometry, MemoryArray, Operation, PortId, TestStep,
    UniverseSpec,
};
use mbist_rtl::Bits;

/// The same geometry menu as the property suite: bit-oriented (power-of-
/// two and not), word-oriented, and multi-port.
fn geometry(choice: usize) -> MemGeometry {
    match choice % 5 {
        0 => MemGeometry::bit_oriented(16),
        1 => MemGeometry::bit_oriented(24),
        2 => MemGeometry::word_oriented(8, 4),
        3 => MemGeometry::word_oriented(6, 8),
        _ => MemGeometry::new(12, 1, 2),
    }
}

/// Builds a concrete step stream from raw `(addr, data, action, port)`
/// seeds, tracking a fault-free golden model so checked reads carry
/// consistent expectations (with a rare deliberately-wrong expectation to
/// exercise the golden-miscompare path) — the same stream shape the
/// property suite generates.
fn build_steps(g: &MemGeometry, raw: &[(u64, u64, u8, u8)]) -> Vec<TestStep> {
    let mask = if g.width() >= 64 { u64::MAX } else { (1u64 << g.width()) - 1 };
    let mut golden = vec![0u64; usize::try_from(g.words()).unwrap()];
    let mut steps = Vec::with_capacity(raw.len());
    for &(addr, data, action, port) in raw {
        let addr = addr % g.words();
        let port = PortId(port % g.ports());
        match action % 16 {
            // Pauses straddle the default 50 µs retention threshold.
            0 => steps.push(TestStep::Pause { ns: 30_000.0 }),
            1 => steps.push(TestStep::Pause { ns: 60_000.0 }),
            2 | 3 => steps.push(TestStep::Bus(mbist_mem::BusCycle {
                port,
                addr,
                op: Operation::Read,
                expected: None,
            })),
            // A sliver of deliberately-wrong expectations: the stream is
            // dirty even fault-free, and every engine must agree it
            // "detects" everything.
            4 if action == 4 && data % 97 == 0 => {
                steps.push(TestStep::Bus(mbist_mem::BusCycle {
                    port,
                    addr,
                    op: Operation::Read,
                    expected: Some(Bits::new(g.width(), golden[addr as usize] ^ 1)),
                }));
            }
            4..=9 => steps.push(TestStep::Bus(mbist_mem::BusCycle {
                port,
                addr,
                op: Operation::Read,
                expected: Some(Bits::new(g.width(), golden[addr as usize])),
            })),
            _ => {
                let value = data & mask;
                golden[addr as usize] = value;
                steps.push(TestStep::Bus(mbist_mem::BusCycle {
                    port,
                    addr,
                    op: Operation::Write(Bits::new(g.width(), value)),
                    expected: None,
                }));
            }
        }
    }
    steps
}

/// A tiny deterministic generator (xorshift64*): no RNG state leaves this
/// file, so a corpus failure reproduces exactly on every machine.
struct Xorshift(u64);

impl Xorshift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// The committed regression corpus: each seed drives one stream, cycling
/// through the geometry menu so every shape (including pause-heavy and
/// multi-port streams) is covered twice.
const CORPUS_SEEDS: [u64; 10] = [
    0x0000_0000_0000_0001,
    0x9e37_79b9_7f4a_7c15, // golden-ratio increment
    0xdead_beef_cafe_f00d,
    0x0123_4567_89ab_cdef,
    0xffff_ffff_ffff_fffe,
    0x0f0f_0f0f_0f0f_0f0f,
    0x5555_5555_5555_5555,
    0xa5a5_a5a5_5a5a_5a5a,
    0x1357_9bdf_0246_8ace,
    0x7fff_ffff_ffff_ffff,
];

#[test]
fn fixed_seed_corpus_agrees_three_ways() {
    for (i, &seed) in CORPUS_SEEDS.iter().enumerate() {
        let g = geometry(i);
        let mut rng = Xorshift(seed);
        let len = 40 + usize::try_from(rng.next() % 160).unwrap();
        let raw: Vec<(u64, u64, u8, u8)> = (0..len)
            .map(|_| {
                let w = rng.next();
                (rng.next(), rng.next(), (w >> 8) as u8, w as u8)
            })
            .collect();
        let steps = build_steps(&g, &raw);
        let trace = CompiledTrace::from_steps(g, &steps);
        let mut universe = Vec::new();
        for class in FaultClass::ALL {
            universe.extend(class_universe(&g, class, &UniverseSpec::default()));
        }
        let full: Vec<bool> = universe
            .iter()
            .map(|&fault| {
                let mut mem = MemoryArray::with_fault(g, fault).unwrap();
                run_steps_detect(&mut mem, &steps)
            })
            .collect();
        for engine in [SimEngine::Sliced, SimEngine::Packed] {
            for jobs in [Some(1), Some(3)] {
                assert_eq!(
                    trace.detect_universe(&universe, jobs, engine),
                    full,
                    "corpus seed {seed:#x} ({g}) disagrees under {engine:?} jobs={jobs:?}"
                );
            }
        }
    }
}

/// March-expansion corpus for the classes the packed engine vectorizes via
/// special lane state: stuck-open (previous-read latch), retention/DRF
/// (pause-driven decay deadlines) and fixed-shape NPSF. The expansions use
/// the full background/port policy, so word-oriented geometries loop
/// multiple data backgrounds and the multi-port geometry repeats per port —
/// the batches the packed engine folds across backgrounds and ports.
#[test]
fn march_expansions_agree_on_sof_retention_npsf_universes() {
    let classes = [
        FaultClass::StuckOpen,
        FaultClass::Retention,
        FaultClass::PullOpen,
        FaultClass::NpsfStatic,
        FaultClass::NpsfActive,
    ];
    for g in [
        MemGeometry::bit_oriented(24),
        MemGeometry::word_oriented(8, 4),
        MemGeometry::new(12, 1, 2),
    ] {
        // march-c+ carries pauses (retention) and back-to-back reads
        // (pull-open drain); mats+ is the cheap contrast stream.
        for test in [library::march_c_plus(), library::mats_plus()] {
            let steps = expand_with(&test, &g, &ExpandOptions::for_geometry(&g));
            let trace = CompiledTrace::from_steps(g, &steps);
            let mut universe = Vec::new();
            for class in classes {
                universe.extend(class_universe(&g, class, &UniverseSpec::default()));
            }
            let full: Vec<bool> = universe
                .iter()
                .map(|&fault| {
                    let mut mem = MemoryArray::with_fault(g, fault).unwrap();
                    run_steps_detect(&mut mem, &steps)
                })
                .collect();
            for engine in [SimEngine::Sliced, SimEngine::Packed] {
                for jobs in [Some(1), Some(3)] {
                    assert_eq!(
                        trace.detect_universe(&universe, jobs, engine),
                        full,
                        "{} on {g} disagrees under {engine:?} jobs={jobs:?}",
                        test.name()
                    );
                }
            }
        }
    }
}

/// Partial-final-block schedules: every lane count around the `u64` word
/// boundary (63/64/65) and the 256-lane block boundary (255/256/257) must
/// agree with the per-fault full replay, including the single-fault batch.
#[test]
fn packed_partial_final_blocks_agree() {
    let g = MemGeometry::bit_oriented(160);
    let universe = class_universe(&g, FaultClass::StuckAt, &UniverseSpec::default());
    assert!(universe.len() >= 257, "need 257+ stuck-at faults, got {}", universe.len());
    let mut rng = Xorshift(0x0bad_5eed_0bad_5eed);
    let raw: Vec<(u64, u64, u8, u8)> = (0..220)
        .map(|_| {
            let w = rng.next();
            (rng.next(), rng.next(), (w >> 8) as u8, w as u8)
        })
        .collect();
    let steps = build_steps(&g, &raw);
    let trace = CompiledTrace::from_steps(g, &steps);
    for lanes in [1usize, 63, 64, 65, 255, 256, 257] {
        let subset = &universe[..lanes];
        let full: Vec<bool> = subset
            .iter()
            .map(|&fault| {
                let mut mem = MemoryArray::with_fault(g, fault).unwrap();
                run_steps_detect(&mut mem, &steps)
            })
            .collect();
        assert_eq!(
            trace.detect_universe(subset, Some(1), SimEngine::Packed),
            full,
            "partial final block of {lanes} lanes disagrees"
        );
    }
}
