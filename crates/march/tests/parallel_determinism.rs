//! Regression: the parallel fault fan-out must be bit-for-bit
//! deterministic — `jobs = 1` and `jobs = N` produce identical coverage
//! reports for every algorithm in the library, and the early-exit replay
//! agrees with the full-report replay on every sampled fault.

use mbist_march::{
    evaluate_coverage, expand, library, run_steps, run_steps_detect, CoverageOptions,
};
use mbist_mem::{class_universe, FaultClass, MemGeometry, MemoryArray, UniverseSpec};

#[test]
fn jobs_setting_never_changes_the_report() {
    let g = MemGeometry::bit_oriented(16);
    for test in library::all() {
        let opts = |jobs| CoverageOptions {
            max_faults_per_class: Some(64),
            jobs,
            ..CoverageOptions::default()
        };
        let serial = evaluate_coverage(&test, &g, &opts(Some(1)));
        for jobs in [Some(2), Some(4), None] {
            let parallel = evaluate_coverage(&test, &g, &opts(jobs));
            assert_eq!(parallel, serial, "{} diverged with jobs={jobs:?}", test.name());
        }
    }
}

#[test]
fn jobs_setting_never_changes_the_report_word_oriented_multiport() {
    let g = MemGeometry::new(8, 4, 2);
    for test in [library::march_c(), library::march_c_plus_plus()] {
        let opts = |jobs| CoverageOptions {
            max_faults_per_class: Some(32),
            jobs,
            ..CoverageOptions::default()
        };
        let serial = evaluate_coverage(&test, &g, &opts(Some(1)));
        let parallel = evaluate_coverage(&test, &g, &opts(Some(4)));
        assert_eq!(parallel, serial, "{} diverged on {g}", test.name());
    }
}

#[test]
fn early_exit_replay_agrees_with_full_replay() {
    let g = MemGeometry::bit_oriented(12);
    let spec = UniverseSpec::default();
    for test in library::all() {
        let steps = expand(&test, &g);
        for class in FaultClass::ALL {
            // Every ~5th fault keeps the cross-product tractable.
            for fault in class_universe(&g, class, &spec).into_iter().step_by(5) {
                let mut a = MemoryArray::with_fault(g, fault).unwrap();
                let mut b = MemoryArray::with_fault(g, fault).unwrap();
                assert_eq!(
                    run_steps_detect(&mut a, &steps),
                    !run_steps(&mut b, &steps).passed(),
                    "{} vs {fault:?}",
                    test.name()
                );
            }
        }
    }
}
