//! Randomized equivalence suite: the sliced differential engine and the
//! lane-packed bit-parallel engine must be bit-for-bit equivalent to the
//! full replay on arbitrary step streams — not just on well-formed march
//! expansions — across bit- and word-oriented geometries, multi-port
//! streams, `Pause` steps (the Retention timing axis) and repeated reads
//! (the PullOpen drain axis). A fixed-seed corpus reruns deterministic
//! stream seeds on every CI run, so a failure reproduces without chasing
//! the property-test RNG.

use proptest::prelude::*;

use mbist_march::{
    evaluate_coverage, expand_with, library, run_steps_detect, CompiledTrace,
    CoverageOptions, ExpandOptions, SimEngine,
};
use mbist_mem::{
    class_universe, FaultClass, MemGeometry, MemoryArray, Operation, PortId, TestStep,
    UniverseSpec,
};
use mbist_rtl::Bits;

/// The geometry menu: bit-oriented (power-of-two and not), word-oriented,
/// and multi-port.
fn geometry(choice: usize) -> MemGeometry {
    match choice % 5 {
        0 => MemGeometry::bit_oriented(16),
        1 => MemGeometry::bit_oriented(24),
        2 => MemGeometry::word_oriented(8, 4),
        3 => MemGeometry::word_oriented(6, 8),
        _ => MemGeometry::new(12, 1, 2),
    }
}

/// One raw step seed: `(addr, data, action, port)`; the action selector
/// mixes writes, checked/unchecked reads and retention-scale pauses.
fn arb_raw_steps() -> impl Strategy<Value = Vec<(u64, u64, u8, u8)>> {
    prop::collection::vec((any::<u64>(), any::<u64>(), any::<u8>(), any::<u8>()), 1..200)
}

/// Builds a concrete step stream from the raw seeds, tracking a fault-free
/// golden model so checked reads carry consistent expectations (with a
/// rare deliberately-wrong expectation to exercise the golden-miscompare
/// path).
fn build_steps(g: &MemGeometry, raw: &[(u64, u64, u8, u8)]) -> Vec<TestStep> {
    let mask = if g.width() >= 64 { u64::MAX } else { (1u64 << g.width()) - 1 };
    let mut golden = vec![0u64; usize::try_from(g.words()).unwrap()];
    let mut steps = Vec::with_capacity(raw.len());
    for &(addr, data, action, port) in raw {
        let addr = addr % g.words();
        let port = PortId(port % g.ports());
        match action % 16 {
            // Pauses straddle the default 50 µs retention threshold.
            0 => steps.push(TestStep::Pause { ns: 30_000.0 }),
            1 => steps.push(TestStep::Pause { ns: 60_000.0 }),
            2 | 3 => steps.push(TestStep::Bus(mbist_mem::BusCycle {
                port,
                addr,
                op: Operation::Read,
                expected: None,
            })),
            // A sliver of deliberately-wrong expectations: the stream is
            // dirty even fault-free, and both engines must agree it
            // "detects" everything.
            4 if action == 4 && data % 97 == 0 => {
                steps.push(TestStep::Bus(mbist_mem::BusCycle {
                    port,
                    addr,
                    op: Operation::Read,
                    expected: Some(Bits::new(g.width(), golden[addr as usize] ^ 1)),
                }));
            }
            4..=9 => steps.push(TestStep::Bus(mbist_mem::BusCycle {
                port,
                addr,
                op: Operation::Read,
                expected: Some(Bits::new(g.width(), golden[addr as usize])),
            })),
            _ => {
                let value = data & mask;
                golden[addr as usize] = value;
                steps.push(TestStep::Bus(mbist_mem::BusCycle {
                    port,
                    addr,
                    op: Operation::Write(Bits::new(g.width(), value)),
                    expected: None,
                }));
            }
        }
    }
    steps
}

proptest! {
    /// Sliced ≡ packed ≡ full replay for a random fault of a random class
    /// on a random stream — the core three-way differential property.
    #[test]
    fn sliced_detection_matches_full_replay(
        raw in arb_raw_steps(),
        geom_choice in 0usize..5,
        class_idx in 0usize..FaultClass::ALL.len(),
        fault_idx in any::<usize>(),
    ) {
        let g = geometry(geom_choice);
        let spec = UniverseSpec::default();
        let universe = class_universe(&g, FaultClass::ALL[class_idx], &spec);
        if universe.is_empty() {
            return Ok(());
        }
        let fault = universe[fault_idx % universe.len()];
        let steps = build_steps(&g, &raw);
        let trace = CompiledTrace::from_steps(g, &steps);

        let mut mem = MemoryArray::with_fault(g, fault).unwrap();
        let full = run_steps_detect(&mut mem, &steps);

        if let Some(flag) = trace.detect_sliced(fault) {
            prop_assert_eq!(flag, full, "sliced vs full on {} ({})", fault, g);
        }
        prop_assert_eq!(trace.detect(fault), full, "routed detect on {} ({})", fault, g);
        let packed = trace.detect_universe(&[fault], Some(1), SimEngine::Packed);
        prop_assert_eq!(packed[0], full, "packed vs full on {} ({})", fault, g);
    }

    /// The packed engine batches whole class universes (up to 256 faults
    /// per replay, batch composition decided by the scheduler) — the flags
    /// must still match a per-fault full replay on arbitrary streams.
    #[test]
    fn packed_batches_match_full_replay(
        raw in arb_raw_steps(),
        geom_choice in 0usize..5,
        class_idx in 0usize..FaultClass::ALL.len(),
    ) {
        let g = geometry(geom_choice);
        let universe =
            class_universe(&g, FaultClass::ALL[class_idx], &UniverseSpec::default());
        if universe.is_empty() {
            return Ok(());
        }
        let steps = build_steps(&g, &raw);
        let trace = CompiledTrace::from_steps(g, &steps);
        let packed = trace.detect_universe(&universe, Some(1), SimEngine::Packed);
        for (fault, flag) in universe.iter().zip(packed) {
            let mut mem = MemoryArray::with_fault(g, *fault).unwrap();
            prop_assert_eq!(
                flag,
                run_steps_detect(&mut mem, &steps),
                "packed batch vs full on {} ({})",
                fault,
                g
            );
        }
    }

    /// Timing-sensitive classes deserve extra shots: Retention decay
    /// (pause-driven) and PullOpen drain (consecutive-read-driven) must
    /// agree on streams full of pauses and repeated reads.
    #[test]
    fn timing_sensitive_classes_agree(
        raw in arb_raw_steps(),
        geom_choice in 0usize..5,
        fault_idx in any::<usize>(),
        class_pick in 0usize..3,
    ) {
        let g = geometry(geom_choice);
        let class = [FaultClass::Retention, FaultClass::PullOpen, FaultClass::StuckOpen]
            [class_pick];
        let universe = class_universe(&g, class, &UniverseSpec::default());
        if universe.is_empty() {
            return Ok(());
        }
        let fault = universe[fault_idx % universe.len()];
        let steps = build_steps(&g, &raw);
        let trace = CompiledTrace::from_steps(g, &steps);

        let mut mem = MemoryArray::with_fault(g, fault).unwrap();
        let full = run_steps_detect(&mut mem, &steps);
        prop_assert_eq!(
            trace.detect_sliced(fault),
            Some(full),
            "{} is address-local and must slice ({})",
            fault,
            g
        );
    }

    /// The classes the packed engine vectorizes via special lane state —
    /// stuck-open latches, retention decay deadlines and fixed-shape NPSF —
    /// on full-policy march expansions: word-oriented geometries loop
    /// multiple data backgrounds and the multi-port geometry repeats per
    /// port, the exact batches the packed engine folds across backgrounds
    /// and ports.
    #[test]
    fn multi_background_expansions_agree_on_latched_classes(
        geom_choice in 0usize..5,
        test_idx in any::<usize>(),
        class_pick in 0usize..4,
        fault_idx in any::<usize>(),
    ) {
        let g = geometry(geom_choice);
        let class = [
            FaultClass::StuckOpen,
            FaultClass::Retention,
            FaultClass::NpsfStatic,
            FaultClass::NpsfActive,
        ][class_pick];
        let universe = class_universe(&g, class, &UniverseSpec::default());
        if universe.is_empty() {
            return Ok(());
        }
        let tests = library::all();
        let test = &tests[test_idx % tests.len()];
        let steps = expand_with(test, &g, &ExpandOptions::for_geometry(&g));
        let trace = CompiledTrace::from_steps(g, &steps);
        let fault = universe[fault_idx % universe.len()];
        let mut mem = MemoryArray::with_fault(g, fault).unwrap();
        let full = run_steps_detect(&mut mem, &steps);
        let packed = trace.detect_universe(&[fault], Some(1), SimEngine::Packed);
        prop_assert_eq!(packed[0], full, "packed vs full on {} ({}, {})", fault, g, test.name());
        prop_assert_eq!(trace.detect(fault), full, "routed detect on {} ({})", fault, g);
    }

    /// Whole-report equivalence through the public coverage API, including
    /// under multi-worker fan-out: engine × jobs never changes a report.
    #[test]
    fn coverage_reports_agree_across_engines_and_jobs(
        geom_choice in 0usize..5,
        test_idx in any::<usize>(),
    ) {
        let g = geometry(geom_choice);
        let tests = library::all();
        let test = &tests[test_idx % tests.len()];
        let opts = |engine: SimEngine, jobs: Option<usize>| CoverageOptions {
            max_faults_per_class: Some(48),
            jobs,
            engine,
            ..CoverageOptions::default()
        };
        let reference = evaluate_coverage(test, &g, &opts(SimEngine::Full, Some(1)));
        for engine in [SimEngine::Full, SimEngine::Sliced, SimEngine::Packed] {
            for jobs in [Some(1), Some(3), None] {
                prop_assert_eq!(
                    &evaluate_coverage(test, &g, &opts(engine, jobs)),
                    &reference,
                    "{} engine={:?} jobs={:?}",
                    test.name(),
                    engine,
                    jobs
                );
            }
        }
    }
}
