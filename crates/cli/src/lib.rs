//! # mbist-cli — command-line front end
//!
//! The command surface, testable as a library (`main.rs` is a thin shim):
//!
//! ```text
//! mbist algorithms
//! mbist show <algorithm>
//! mbist compile <algorithm> [--arch microcode|progfsm]
//! mbist run <algorithm> --words N [--width W] [--ports P]
//!           [--arch microcode|progfsm|hardwired] [--fault KIND@ADDR[.BIT]]
//!           [--cycle-budget C]
//! mbist inject-upset <algorithm> --words N [--bit B]... [--arch A]
//!           [--max-reloads R] [--cycle-budget C]
//! mbist coverage <algorithm> --words N [--max-faults K]
//! mbist area [--table 1|2|3]
//! mbist rtl <algorithm> [--capacity Z] [--words N] [--width W]
//! ```
//!
//! Errors exit with a class-specific status: 1 for execution failures, 2 for
//! usage errors, 4 for a watchdog abort, 5 for exhausted recovery.
//!
//! `<algorithm>` is a library name (`march-c`, `mats+`, …) or inline march
//! notation such as `"m(w0); u(r0,w1); d(r1,w0)"`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use mbist_area::{table1, table2, table3, Technology};
use mbist_core::{
    hardwired::HardwiredBist, microcode, microcode::MicrocodeBist, progfsm,
    progfsm::ProgFsmBist, BistController, BistUnit, CoreError, RecoveryPolicy,
    ScanRecoverable, SessionReport,
};
use mbist_march::{evaluate_coverage, library, CoverageOptions, MarchTest, SimEngine};
use mbist_mem::{FaultKind, MemGeometry, MemoryArray};

/// A user-facing CLI error, categorized so the binary can exit with a
/// distinct, scriptable status per failure class.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CliError {
    /// The invocation itself is wrong: unknown command or flag, missing or
    /// unparsable value. Exit code 2.
    Usage(String),
    /// The request was well-formed but could not be carried out (compile
    /// rejection, lint failure, injection error, …). Exit code 1.
    Failed(String),
    /// The watchdog aborted a bounded run
    /// ([`CoreError::CycleBudgetExceeded`]). Exit code 4.
    Watchdog(String),
    /// Scan-reload recovery exhausted its retry bound
    /// ([`CoreError::RecoveryFailed`]). Exit code 5.
    Recovery(String),
}

impl CliError {
    /// The process exit status this error maps to (never 0).
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Failed(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Watchdog(_) => 4,
            CliError::Recovery(_) => 5,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m)
            | CliError::Failed(m)
            | CliError::Watchdog(m)
            | CliError::Recovery(m) => f.write_str(m),
        }
    }
}

impl Error for CliError {}

fn err(message: impl Into<String>) -> CliError {
    CliError::Usage(message.into())
}

fn failed(message: impl ToString) -> CliError {
    CliError::Failed(message.to_string())
}

/// Maps run-time core errors onto their CLI categories.
fn run_error(e: CoreError) -> CliError {
    match e {
        CoreError::CycleBudgetExceeded { .. } => CliError::Watchdog(e.to_string()),
        CoreError::RecoveryFailed { .. } => CliError::Recovery(e.to_string()),
        other => CliError::Failed(other.to_string()),
    }
}

/// The single pass over `--flag value` arguments every command shares:
/// rejects unknown `--flags` (typos must not silently fall back to
/// defaults) and flags whose value is missing, and returns the
/// `(flag, value)` pairs in invocation order so repeatable flags
/// (`--fault`, `--bit`) can be collected without re-scanning.
fn scan_flags<'a>(
    args: &[&'a str],
    allowed: &[&str],
) -> Result<Vec<(&'a str, &'a str)>, CliError> {
    let mut pairs = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if !a.starts_with("--") {
            continue;
        }
        if !allowed.contains(a) {
            return Err(err(format!(
                "unknown flag `{a}` (allowed here: {})",
                if allowed.is_empty() { "none".to_string() } else { allowed.join(" ") }
            )));
        }
        match args.get(i + 1) {
            Some(v) => pairs.push((*a, *v)),
            None => return Err(err(format!("flag `{a}` needs a value"))),
        }
    }
    Ok(pairs)
}

/// [`scan_flags`] when only validation is needed.
fn check_flags(args: &[&str], allowed: &[&str]) -> Result<(), CliError> {
    scan_flags(args, allowed).map(|_| ())
}

/// Executes a CLI invocation (without the leading program name), returning
/// the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-readable message on any misuse or
/// failure.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help" | "--help" | "-h") => Ok(usage()),
        Some("algorithms") => Ok(cmd_algorithms()),
        Some("show") => cmd_show(&collect(it)),
        Some("compile") => cmd_compile(&collect(it)),
        Some("run") => cmd_run(&collect(it)),
        Some("inject-upset") => cmd_inject_upset(&collect(it)),
        Some("coverage") => cmd_coverage(&collect(it)),
        Some("area") => cmd_area(&collect(it)),
        Some("rtl") => cmd_rtl(&collect(it)),
        Some("synth") => cmd_synth(&collect(it)),
        Some("synth-search") => cmd_synth_search(&collect(it)),
        Some("serve") => cmd_serve(&collect(it)),
        Some(other) => Err(err(format!("unknown command `{other}`; try `mbist help`"))),
    }
}

fn collect<'a>(it: impl Iterator<Item = &'a str>) -> Vec<&'a str> {
    it.collect()
}

fn usage() -> String {
    "\
mbist — programmable memory built-in self test (DATE 1999 reproduction)

commands:
  algorithms                          list the march algorithm library
  show <algorithm>                    print an algorithm in march notation
  compile <algorithm> [--arch A]      compile to microcode (default) or progfsm
  run <algorithm> --words N [opts]    run a BIST session on a simulated memory
      [--width W] [--ports P] [--arch microcode|progfsm|hardwired]
      [--fault KIND@ADDR[.BIT]]       KIND: sa0 sa1 tf-up tf-down sof drf puf
      [--cycle-budget C]              abort (exit 4) instead of hanging after
                                      C controller cycles
  inject-upset <algorithm> --words N  flip program-store bit(s), then detect
      [--bit B]... [--arch A]         via the integrity signature and recover
      [--max-reloads R]               by scan-reloading (exit 5 if recovery
      [--cycle-budget C]              fails; A: microcode|progfsm)
  coverage <algorithm> --words N      per-fault-class coverage (serial fault sim)
      [--max-faults K] [--jobs J]     J worker threads (0 or absent = auto);
      [--engine full|sliced|packed]   the report is identical for every J and
                                      engine (sliced = default; packed batches
                                      64 faults per replay into u64 lanes)
  area [--table 1|2|3]                regenerate the paper's tables
  rtl <algorithm> [--capacity Z]      emit Verilog for the microcode BIST unit
      [--words N] [--width W]
  synth --classes C1,C2,..            synthesize a minimal march test for a
      [--max-elements N] [--jobs J]   fault mix (saf tf af cfin cfid cfst)
      [--engine full|sliced|packed]
  synth-search --universe C1,C2,..    search for a minimal march test hitting a
      [--target-coverage PCT]         target coverage of the fault universe
      [--strategy evolve|compose]     (classes: saf tf af cfin cfid cfst sof
      [--budget B] [--seed S]         drf puf snpsf anpsf); deterministic in
      [--words N] [--width W]         --seed, scored by the packed engine
      [--ports P] [--max-elements N]  (default geometry 256x1, budget 2000,
      [--jobs J] [--engine E]         seed 1, target 100%)
  serve [--addr A] [--workers W]      run the evaluation daemon (line-delimited
      [--cache-bytes B]               JSON over TCP; default 127.0.0.1:1999);
      [--queue-depth D]               send {\"kind\":\"shutdown\"} to stop;
      [--default-deadline-ms T]       per-request deadline when the request
                                      carries none (0 = unlimited)
      [--chaos seed=S,panic=P,        deterministic fault injection for
       delay=D,drop=C]                resilience testing (also delay_ms, burst)
      [--shards N]                    N shard processes behind a consistent-
                                      hash router on --addr (0 = in-process)
      [--tenant-quota Q]              max in-flight requests per tenant at
                                      the router (sharded mode only)

<algorithm> is a library name (march-c, mats+, ...) or inline notation like
\"m(w0); u(r0,w1); d(r1,w0)\".

exit codes: 0 ok, 1 execution failure, 2 usage error, 4 watchdog abort,
5 recovery exhausted.
"
    .to_string()
}

fn resolve_test(spec: &str) -> Result<MarchTest, CliError> {
    if let Some(t) = library::by_name(spec) {
        return Ok(t);
    }
    if spec.contains('(') {
        return MarchTest::parse("custom", spec).map_err(|e| err(e.to_string()));
    }
    Err(err(format!(
        "unknown algorithm `{spec}` (see `mbist algorithms`, or pass march notation)"
    )))
}

fn flag_value<'a>(args: &[&'a str], name: &str) -> Option<&'a str> {
    args.iter().position(|a| *a == name).and_then(|i| args.get(i + 1).copied())
}

fn parse_flag<T: std::str::FromStr>(
    args: &[&str],
    name: &str,
    default: T,
) -> Result<T, CliError> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| err(format!("invalid value `{v}` for {name}"))),
    }
}

/// `--jobs N` → worker-thread request: 0 (or absent) means "use the host's
/// available parallelism".
fn jobs_from(args: &[&str]) -> Result<Option<usize>, CliError> {
    let n: usize = parse_flag(args, "--jobs", 0)?;
    Ok(if n == 0 { None } else { Some(n) })
}

/// `--engine full|sliced|packed` → fault-simulation engine (sliced
/// differential replay by default; the output is identical for every
/// choice — `packed` batches up to 64 compatible faults into `u64` lanes
/// per trace replay).
fn engine_from(args: &[&str]) -> Result<SimEngine, CliError> {
    match flag_value(args, "--engine") {
        None => Ok(SimEngine::default()),
        Some("full") => Ok(SimEngine::Full),
        Some("sliced") => Ok(SimEngine::Sliced),
        Some("packed") => Ok(SimEngine::Packed),
        Some(other) => Err(err(format!("unknown --engine `{other}` (full|sliced|packed)"))),
    }
}

fn geometry_from(args: &[&str]) -> Result<MemGeometry, CliError> {
    let words: u64 = match flag_value(args, "--words") {
        Some(v) => v.parse().map_err(|_| err(format!("invalid --words `{v}`")))?,
        None => return Err(err("--words N is required")),
    };
    let width: u8 = parse_flag(args, "--width", 1)?;
    let ports: u8 = parse_flag(args, "--ports", 1)?;
    if words == 0 || width == 0 || width > 64 || ports == 0 {
        return Err(err("geometry out of range (words ≥ 1, 1 ≤ width ≤ 64, ports ≥ 1)"));
    }
    Ok(MemGeometry::new(words, width, ports))
}

fn cmd_algorithms() -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "{:<12} {:>6} {:>9} {:>8}", "name", "ops/n", "elements", "pauses");
    for t in library::all() {
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>9} {:>8}",
            t.name(),
            t.ops_per_cell(),
            t.element_count(),
            t.pause_count()
        );
    }
    out
}

fn cmd_show(args: &[&str]) -> Result<String, CliError> {
    check_flags(args, &[])?;
    let spec = args.first().ok_or_else(|| err("usage: mbist show <algorithm>"))?;
    let t = resolve_test(spec)?;
    Ok(format!("{t}\n"))
}

fn cmd_compile(args: &[&str]) -> Result<String, CliError> {
    check_flags(args, &["--arch"])?;
    let spec = args.first().ok_or_else(|| err("usage: mbist compile <algorithm>"))?;
    let t = resolve_test(spec)?;
    match flag_value(args, "--arch").unwrap_or("microcode") {
        "microcode" => {
            let program = microcode::compile(&t).map_err(failed)?;
            Ok(format!(
                "; {} → {} microinstructions\n{}",
                t,
                program.len(),
                microcode::disassemble(&program)
            ))
        }
        "progfsm" => {
            let program = progfsm::compile(&t).map_err(failed)?;
            let mut out = format!("; {} → {} component instructions\n", t, program.len());
            for (i, inst) in program.iter().enumerate() {
                let _ = writeln!(out, "{i:>3}: {inst}");
            }
            Ok(out)
        }
        other => Err(err(format!("unknown --arch `{other}` (microcode|progfsm)"))),
    }
}

/// Parses the `--fault` spec syntax, shared with the service protocol via
/// [`FaultKind::parse_spec`].
fn parse_fault(spec: &str, geometry: &MemGeometry) -> Result<FaultKind, CliError> {
    FaultKind::parse_spec(spec, geometry).map_err(err)
}

/// Parses the optional `--cycle-budget` watchdog flag.
fn budget_from(args: &[&str]) -> Result<Option<u64>, CliError> {
    match flag_value(args, "--cycle-budget") {
        None => Ok(None),
        Some(v) => {
            v.parse().map(Some).map_err(|_| err(format!("invalid --cycle-budget `{v}`")))
        }
    }
}

/// Runs one session, unbounded or under the watchdog, mapping
/// [`CoreError::CycleBudgetExceeded`] to [`CliError::Watchdog`].
fn bounded_session<C: BistController>(
    mut unit: BistUnit<C>,
    mem: &mut MemoryArray,
    budget: Option<u64>,
) -> Result<SessionReport, CliError> {
    match budget {
        None => Ok(unit.run(mem)),
        Some(b) => unit.run_bounded(mem, b).map_err(run_error),
    }
}

fn cmd_run(args: &[&str]) -> Result<String, CliError> {
    let flags = scan_flags(
        args,
        &["--words", "--width", "--ports", "--arch", "--fault", "--cycle-budget"],
    )?;
    let spec = args.first().ok_or_else(|| err("usage: mbist run <algorithm> --words N"))?;
    let t = resolve_test(spec)?;
    let geometry = geometry_from(args)?;
    let mut mem = MemoryArray::new(geometry);
    for (_, value) in flags.iter().filter(|(name, _)| *name == "--fault") {
        let fault = parse_fault(value, &geometry)?;
        mem.inject(fault).map_err(failed)?;
    }
    let budget = budget_from(args)?;

    let arch = flag_value(args, "--arch").unwrap_or("microcode");
    let report = match arch {
        "microcode" => bounded_session(
            MicrocodeBist::for_test(&t, &geometry).map_err(failed)?,
            &mut mem,
            budget,
        )?,
        "progfsm" => bounded_session(
            ProgFsmBist::for_test(&t, &geometry).map_err(failed)?,
            &mut mem,
            budget,
        )?,
        "hardwired" => {
            bounded_session(HardwiredBist::for_test(&t, &geometry), &mut mem, budget)?
        }
        other => {
            return Err(err(format!(
                "unknown --arch `{other}` (microcode|progfsm|hardwired)"
            )))
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} `{}` on {}: {}",
        report.architecture,
        report.algorithm,
        geometry,
        if report.passed() { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(
        out,
        "cycles {} (bus {}, overhead {}), pause {:.1} us",
        report.cycles,
        report.bus_cycles,
        report.overhead_cycles(),
        report.pause_ns / 1000.0
    );
    if !report.passed() {
        let _ = writeln!(out, "miscompares: {}", report.fail_log.len());
        for (cycle, m) in report.fail_log.entries().iter().take(8) {
            let _ = writeln!(out, "  cycle {cycle:>8}: {m}");
        }
        let bitmap = report.fail_log.bitmap(geometry);
        let _ = writeln!(out, "signature: {:?}", bitmap.signature());
        let _ = write!(out, "{bitmap}");
    }
    Ok(out)
}

fn cmd_inject_upset(args: &[&str]) -> Result<String, CliError> {
    let flags = scan_flags(
        args,
        &[
            "--words",
            "--width",
            "--ports",
            "--arch",
            "--bit",
            "--max-reloads",
            "--cycle-budget",
        ],
    )?;
    let spec = args
        .first()
        .ok_or_else(|| err("usage: mbist inject-upset <algorithm> --words N [--bit B]"))?;
    let t = resolve_test(spec)?;
    let geometry = geometry_from(args)?;
    let mut bits = Vec::new();
    for (_, v) in flags.iter().filter(|(name, _)| *name == "--bit") {
        bits.push(v.parse().map_err(|_| err(format!("invalid --bit `{v}`")))?);
    }
    if bits.is_empty() {
        bits.push(0);
    }
    let policy = RecoveryPolicy {
        max_reload_attempts: parse_flag(args, "--max-reloads", 3)?,
        cycle_budget: budget_from(args)?,
    };
    match flag_value(args, "--arch").unwrap_or("microcode") {
        "microcode" => upset_session(
            MicrocodeBist::for_test(&t, &geometry).map_err(failed)?,
            &geometry,
            &bits,
            &policy,
        ),
        "progfsm" => upset_session(
            ProgFsmBist::for_test(&t, &geometry).map_err(failed)?,
            &geometry,
            &bits,
            &policy,
        ),
        "hardwired" => Err(err(
            "the hardwired controller has no program store to upset (microcode|progfsm)",
        )),
        other => Err(err(format!("unknown --arch `{other}` (microcode|progfsm)"))),
    }
}

/// Flips `bits` in the unit's program store, reports whether the integrity
/// signature catches the corruption, then runs protected (scan-reload
/// recovery under the watchdog budget).
fn upset_session<C: BistController + ScanRecoverable>(
    mut unit: BistUnit<C>,
    geometry: &MemGeometry,
    bits: &[usize],
    policy: &RecoveryPolicy,
) -> Result<String, CliError> {
    let store_bits = unit.controller().store_bits();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} program store: {} bits, load-time signature {}",
        unit.controller().architecture(),
        store_bits,
        unit.controller().loaded_signature()
    );
    for &bit in bits {
        if bit >= store_bits {
            return Err(err(format!(
                "--bit {bit} is outside the {store_bits}-bit program store"
            )));
        }
        unit.controller_mut().inject_upset(bit);
    }
    let detected = unit.controller().verify_integrity().is_err();
    let _ = writeln!(
        out,
        "upset: flipped bit(s) {:?}, store signature now {} ({})",
        bits,
        unit.controller().store_signature(),
        if detected {
            "detected"
        } else {
            "NOT DETECTED — even flips per parity column alias"
        }
    );
    let mut mem = MemoryArray::new(*geometry);
    let (report, recovery) = unit.run_protected(&mut mem, policy).map_err(run_error)?;
    let _ = writeln!(out, "recovery: {recovery}");
    let _ = writeln!(
        out,
        "session: {} in {} cycles (bus {})",
        if report.passed() { "PASS" } else { "FAIL" },
        report.cycles,
        report.bus_cycles
    );
    Ok(out)
}

fn cmd_coverage(args: &[&str]) -> Result<String, CliError> {
    check_flags(
        args,
        &["--words", "--width", "--ports", "--max-faults", "--jobs", "--engine"],
    )?;
    let spec =
        args.first().ok_or_else(|| err("usage: mbist coverage <algorithm> --words N"))?;
    let t = resolve_test(spec)?;
    let geometry = geometry_from(args)?;
    let max: usize = parse_flag(args, "--max-faults", 256)?;
    let report = evaluate_coverage(
        &t,
        &geometry,
        &CoverageOptions {
            max_faults_per_class: Some(max),
            jobs: jobs_from(args)?,
            engine: engine_from(args)?,
            ..CoverageOptions::default()
        },
    );
    Ok(report.to_string())
}

fn cmd_area(args: &[&str]) -> Result<String, CliError> {
    check_flags(args, &["--table"])?;
    let tech = Technology::cmos5s();
    match flag_value(args, "--table") {
        None => Ok(format!("{}\n{}\n{}", table1(&tech), table2(&tech), table3(&tech))),
        Some("1") => Ok(table1(&tech).to_string()),
        Some("2") => Ok(table2(&tech).to_string()),
        Some("3") => Ok(table3(&tech).to_string()),
        Some(other) => Err(err(format!("unknown table `{other}` (1|2|3)"))),
    }
}

fn cmd_rtl(args: &[&str]) -> Result<String, CliError> {
    check_flags(args, &["--capacity", "--words", "--width"])?;
    let spec = args.first().ok_or_else(|| err("usage: mbist rtl <algorithm>"))?;
    let t = resolve_test(spec)?;
    let program = microcode::compile(&t).map_err(failed)?;
    let z: usize = parse_flag(args, "--capacity", program.len().max(16))?;
    let words: u64 = parse_flag(args, "--words", 1024)?;
    let width: u8 = parse_flag(args, "--width", 8)?;
    let geometry = MemGeometry::word_oriented(words, width);

    let ctrl = mbist_hdl::emit_microcode(z, "mbist_microcode_ctrl");
    let dp = mbist_hdl::emit_datapath(&geometry, "mbist_datapath");
    let top = mbist_hdl::emit_top(&geometry, "mbist_top");
    for m in [&ctrl, &dp, &top] {
        let issues = mbist_hdl::lint(m);
        if !issues.is_empty() {
            return Err(failed(format!("generated RTL failed lint: {}", issues[0])));
        }
    }
    let tb = mbist_hdl::emit_testbench(&t, &geometry, z, "mbist_top").map_err(failed)?;
    Ok(format!("{}\n{}\n{}\n{}", ctrl.emit(), dp.emit(), top.emit(), tb))
}

fn cmd_synth(args: &[&str]) -> Result<String, CliError> {
    use mbist_march::{synthesize_march, SynthesisOptions};
    use mbist_mem::FaultClass;
    check_flags(args, &["--classes", "--max-elements", "--jobs", "--engine"])?;
    let spec = flag_value(args, "--classes")
        .ok_or_else(|| err("usage: mbist synth --classes saf,tf,af"))?;
    let classes = FaultClass::parse_list(spec).map_err(err)?;
    let max_elements: usize = parse_flag(args, "--max-elements", 8)?;
    let mut options =
        SynthesisOptions { classes, max_elements, ..SynthesisOptions::default() };
    options.coverage.jobs = jobs_from(args)?;
    options.coverage.engine = engine_from(args)?;
    let result = synthesize_march("synthesized", &options);
    let mut out = String::new();
    let _ = writeln!(out, "{}", result.test);
    let _ = writeln!(
        out,
        "complexity {}n, coverage {}/{} on the search geometry, {} evaluations",
        result.test.ops_per_cell(),
        result.detected,
        result.total,
        result.evaluations
    );
    if !result.is_complete() {
        let _ = writeln!(out, "warning: coverage incomplete; raise --max-elements");
    }
    Ok(out)
}

fn cmd_synth_search(args: &[&str]) -> Result<String, CliError> {
    use mbist_mem::FaultClass;
    use mbist_search::{report_text, search_march, SearchOptions, Strategy};
    check_flags(
        args,
        &[
            "--universe",
            "--words",
            "--width",
            "--ports",
            "--target-coverage",
            "--budget",
            "--seed",
            "--strategy",
            "--max-elements",
            "--jobs",
            "--engine",
        ],
    )?;
    let spec = flag_value(args, "--universe")
        .ok_or_else(|| err("usage: mbist synth-search --universe saf,tf,cfin,cfid,cfst"))?;
    let classes = FaultClass::parse_list(spec).map_err(err)?;
    let words: u64 = parse_flag(args, "--words", 256)?;
    let width: u8 = parse_flag(args, "--width", 1)?;
    let ports: u8 = parse_flag(args, "--ports", 1)?;
    if words == 0 || width == 0 || width > 64 || ports == 0 {
        return Err(err("geometry out of range (words ≥ 1, 1 ≤ width ≤ 64, ports ≥ 1)"));
    }
    let target_pct: f64 = parse_flag(args, "--target-coverage", 100.0)?;
    if !(0.0..=100.0).contains(&target_pct) {
        return Err(err(format!("--target-coverage must be 0–100, got {target_pct}")));
    }
    let strategy = match flag_value(args, "--strategy") {
        None => Strategy::Evolutionary,
        Some(name) => Strategy::parse_name(name)
            .ok_or_else(|| err(format!("unknown --strategy `{name}` (evolve|compose)")))?,
    };
    let options = SearchOptions {
        geometry: MemGeometry::new(words, width, ports),
        classes,
        target_coverage: target_pct / 100.0,
        budget: parse_flag(args, "--budget", 2000)?,
        seed: parse_flag(args, "--seed", 1)?,
        max_elements: parse_flag(args, "--max-elements", 12)?,
        jobs: jobs_from(args)?,
        engine: match flag_value(args, "--engine") {
            None => SimEngine::Packed, // the search default: fastest oracle
            Some(_) => engine_from(args)?,
        },
        strategy,
        ..SearchOptions::default()
    };
    let found = search_march("found", &options);
    Ok(report_text(&found, &options))
}

fn cmd_serve(args: &[&str]) -> Result<String, CliError> {
    check_flags(
        args,
        &[
            "--addr",
            "--workers",
            "--cache-bytes",
            "--queue-depth",
            "--default-deadline-ms",
            "--chaos",
            "--shards",
            "--tenant-quota",
        ],
    )?;
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:1999");
    let chaos = match flag_value(args, "--chaos") {
        Some(spec) => mbist_service::ChaosConfig::parse(spec).map_err(err)?,
        None => mbist_service::ChaosConfig::disabled(),
    };
    let config = mbist_service::ServiceConfig {
        workers: parse_flag(args, "--workers", 0)?,
        cache_bytes: parse_flag(args, "--cache-bytes", 64 << 20)?,
        queue_depth: parse_flag(args, "--queue-depth", 64)?,
        default_deadline_ms: parse_flag(args, "--default-deadline-ms", 30_000)?,
        chaos,
    };
    let shards: usize = parse_flag(args, "--shards", 0)?;
    if shards > 0 {
        return cmd_serve_sharded(args, shards, addr, &config);
    }
    let server = mbist_service::Server::start(addr, config)
        .map_err(|e| failed(format!("cannot bind `{addr}`: {e}")))?;
    // Announced (and flushed) before blocking: the return value below only
    // prints after shutdown, and scripts parse the port from this line.
    {
        use std::io::Write;
        let mut stdout = std::io::stdout();
        let _ = writeln!(
            stdout,
            "mbist-service listening on {} (workers {}, cache {} bytes, queue depth {})",
            server.local_addr(),
            if config.workers == 0 {
                "auto".to_string()
            } else {
                config.workers.to_string()
            },
            config.cache_bytes,
            config.queue_depth,
        );
        if chaos.enabled() {
            let _ = writeln!(stdout, "chaos injection armed: {}", chaos.describe());
        }
        let _ = stdout.flush();
    }
    let summary = server.join();
    Ok(format!(
        "shutdown: served {} request(s), drained {} queued job(s), \
         recovered {} panicked job(s)\n",
        summary.served, summary.drained, summary.recovered_jobs
    ))
}

/// `serve --shards N`: spawns N single-shard daemon processes on ephemeral
/// ports (re-invoking this binary) and fronts them with the
/// consistent-hash router on the requested address.
fn cmd_serve_sharded(
    args: &[&str],
    shards: usize,
    addr: &str,
    config: &mbist_service::ServiceConfig,
) -> Result<String, CliError> {
    use std::io::{BufRead, BufReader, Write};
    use std::process::{Child, Command, Stdio};

    let exe = std::env::current_exe()
        .map_err(|e| failed(format!("cannot locate own binary: {e}")))?;
    let mut children: Vec<(Child, BufReader<std::process::ChildStdout>)> = Vec::new();
    let mut shard_addrs = Vec::new();
    let spawn_error = |children: &mut Vec<(Child, _)>, message: String| {
        for (child, _) in children.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        failed(message)
    };
    for i in 0..shards {
        let mut cmd = Command::new(&exe);
        cmd.arg("serve")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--workers")
            .arg(config.workers.to_string())
            .arg("--cache-bytes")
            .arg(config.cache_bytes.to_string())
            .arg("--queue-depth")
            .arg(config.queue_depth.to_string())
            .arg("--default-deadline-ms")
            .arg(config.default_deadline_ms.to_string());
        if let Some(spec) = flag_value(args, "--chaos") {
            cmd.arg("--chaos").arg(spec);
        }
        cmd.stdin(Stdio::null()).stdout(Stdio::piped()).stderr(Stdio::inherit());
        let mut child = cmd.spawn().map_err(|e| {
            spawn_error(&mut children, format!("cannot spawn shard {i}: {e}"))
        })?;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        // The shard announces its ephemeral port on the first banner line.
        let mut banner = String::new();
        reader
            .read_line(&mut banner)
            .map_err(|e| spawn_error(&mut children, format!("shard {i} banner: {e}")))?;
        let shard_addr = banner
            .strip_prefix("mbist-service listening on ")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|a| a.parse::<std::net::SocketAddr>().ok())
            .ok_or_else(|| {
                spawn_error(
                    &mut children,
                    format!("shard {i} printed no address: {banner:?}"),
                )
            })?;
        shard_addrs.push(shard_addr);
        children.push((child, reader));
    }

    let router_config = mbist_service::RouterConfig {
        shards: shard_addrs,
        tenant_quota: match flag_value(args, "--tenant-quota") {
            Some(v) => Some(
                v.parse::<usize>()
                    .map_err(|_| err(format!("invalid --tenant-quota `{v}`")))?,
            ),
            None => None,
        },
        ..mbist_service::RouterConfig::default()
    };
    let router = mbist_service::Router::start(addr, router_config)
        .map_err(|e| failed(format!("cannot bind `{addr}`: {e}")))?;
    {
        let mut stdout = std::io::stdout();
        let _ = writeln!(
            stdout,
            "mbist-service listening on {} (router fronting {} shard(s))",
            router.local_addr(),
            shards,
        );
        if config.chaos.enabled() {
            let _ = writeln!(stdout, "chaos injection armed: {}", config.chaos.describe());
        }
        let _ = stdout.flush();
    }
    let summary = router.join();
    // The router's shutdown broadcast has already told every shard to
    // drain; collect their exits (and summaries) before reporting.
    let mut shard_served = 0u64;
    for (mut child, reader) in children {
        for line in reader.lines().map_while(Result::ok) {
            if let Some(rest) = line.strip_prefix("shutdown: served ") {
                if let Some(n) = rest.split_whitespace().next() {
                    shard_served += n.parse::<u64>().unwrap_or(0);
                }
            }
        }
        let _ = child.wait();
    }
    Ok(format!(
        "shutdown: served {} request(s), drained 0 queued job(s), \
         recovered 0 panicked job(s)\n\
         router: forwarded {} request(s), shed {} request(s), \
         shards answered {} request(s)\n",
        summary.served, summary.forwarded, summary.shed, shard_served
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(args: &[&str]) -> String {
        match run(&args.iter().map(ToString::to_string).collect::<Vec<_>>()) {
            Ok(out) => out,
            Err(e) => panic!(
                "expected success for {args:?}, got `{e}` (exit code {})",
                e.exit_code()
            ),
        }
    }

    fn run_err(args: &[&str]) -> CliError {
        run(&args.iter().map(ToString::to_string).collect::<Vec<_>>())
            .expect_err("command should fail")
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_ok(&["help"]).contains("commands:"));
        assert!(run_ok(&[]).contains("mbist"));
        assert!(run_err(&["frob"]).to_string().contains("unknown command"));
    }

    #[test]
    fn algorithms_lists_the_library() {
        let out = run_ok(&["algorithms"]);
        assert!(out.contains("march-c"));
        assert!(out.contains("march-ss"));
    }

    #[test]
    fn show_prints_notation() {
        let out = run_ok(&["show", "march-c"]);
        assert!(out.contains("⇕(w0)"));
        assert!(run_err(&["show", "nope"]).to_string().contains("unknown algorithm"));
    }

    #[test]
    fn compile_both_architectures() {
        let out = run_ok(&["compile", "march-c"]);
        assert!(out.contains("repeat(order)"));
        let out = run_ok(&["compile", "march-c", "--arch", "progfsm"]);
        assert!(out.contains("SM1"));
        let e = run_err(&["compile", "march-b", "--arch", "progfsm"]);
        assert!(e.to_string().contains("not expressible"));
    }

    #[test]
    fn compile_inline_notation() {
        let out = run_ok(&["compile", "m(w0); u(r0,w1); d(r1,w0)"]);
        assert!(out.contains("custom"));
    }

    #[test]
    fn run_pass_and_fail() {
        let out = run_ok(&["run", "march-c", "--words", "32"]);
        assert!(out.contains("PASS"));
        let out = run_ok(&["run", "march-c", "--words", "32", "--fault", "sa1@0x5"]);
        assert!(out.contains("FAIL"));
        assert!(out.contains("SingleCell"));
    }

    #[test]
    fn run_architecture_selection() {
        for arch in ["microcode", "progfsm", "hardwired"] {
            let out = run_ok(&["run", "mats+", "--words", "16", "--arch", arch]);
            assert!(out.contains("PASS"), "{arch}: {out}");
        }
    }

    #[test]
    fn run_word_oriented_fault_with_bit() {
        let out = run_ok(&[
            "run",
            "march-c",
            "--words",
            "16",
            "--width",
            "8",
            "--fault",
            "tf-up@3.6",
        ]);
        assert!(out.contains("FAIL"));
    }

    #[test]
    fn run_rejects_bad_inputs() {
        assert!(run_err(&["run", "march-c"]).to_string().contains("--words"));
        assert!(run_err(&["run", "march-c", "--words", "8", "--fault", "zz@1"])
            .to_string()
            .contains("unknown fault kind"));
        assert!(run_err(&["run", "march-c", "--words", "8", "--fault", "sa1@99"])
            .to_string()
            .contains("does not fit"));
    }

    #[test]
    fn coverage_reports_classes() {
        let out = run_ok(&["coverage", "mats+", "--words", "16", "--max-faults", "32"]);
        assert!(out.contains("SAF"));
        assert!(out.contains("%"));
    }

    #[test]
    fn coverage_output_is_independent_of_jobs() {
        let base = ["coverage", "march-c", "--words", "16", "--max-faults", "32"];
        let with_jobs = |j: &str| {
            let mut args = base.to_vec();
            args.extend(["--jobs", j]);
            run_ok(&args)
        };
        let serial = with_jobs("1");
        assert_eq!(with_jobs("2"), serial);
        assert_eq!(with_jobs("0"), serial, "0 = auto must match too");
        assert_eq!(run_ok(&base), serial, "flag absent = auto");
        assert!(run_err(&["coverage", "march-c", "--words", "8", "--jobs", "x"])
            .to_string()
            .contains("--jobs"));
    }

    #[test]
    fn coverage_output_is_independent_of_engine() {
        let base = ["coverage", "march-c", "--words", "16", "--max-faults", "32"];
        let with_engine = |e: &str| {
            let mut args = base.to_vec();
            args.extend(["--engine", e]);
            run_ok(&args)
        };
        let sliced = with_engine("sliced");
        assert_eq!(with_engine("full"), sliced);
        assert_eq!(with_engine("packed"), sliced);
        assert_eq!(run_ok(&base), sliced, "flag absent = sliced default");
        let e = run_err(&["coverage", "march-c", "--words", "8", "--engine", "turbo"]);
        assert!(e.to_string().contains("--engine"), "{e}");
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn area_tables() {
        assert!(run_ok(&["area", "--table", "1"]).contains("Microcode-Based"));
        assert!(run_ok(&["area", "--table", "3"]).contains("Adjusted"));
        let all = run_ok(&["area"]);
        assert!(all.contains("Table 1") && all.contains("Table 3"));
        assert!(run_err(&["area", "--table", "9"]).to_string().contains("unknown table"));
    }

    #[test]
    fn synth_produces_a_complete_test() {
        let out = run_ok(&["synth", "--classes", "saf,tf"]);
        assert!(out.contains("synthesized:"));
        assert!(out.contains("coverage"));
        assert!(!out.contains("warning"));
        assert!(run_err(&["synth", "--classes", "zzz"])
            .to_string()
            .contains("unknown fault class"));
        assert!(run_err(&["synth"]).to_string().contains("--classes"));
    }

    #[test]
    fn synth_search_converges_on_a_small_universe() {
        let out = run_ok(&[
            "synth-search",
            "--universe",
            "saf,tf",
            "--words",
            "32",
            "--budget",
            "300",
        ]);
        assert!(out.contains("found:"), "{out}");
        assert!(out.contains("converged"), "{out}");
        assert!(out.contains("strategy evolve, seed 1"), "{out}");
    }

    #[test]
    fn synth_search_strategies_and_errors() {
        let out = run_ok(&[
            "synth-search",
            "--universe",
            "saf,af",
            "--words",
            "32",
            "--strategy",
            "compose",
        ]);
        assert!(out.contains("strategy compose"), "{out}");
        assert!(run_err(&["synth-search"]).to_string().contains("--universe"));
        assert!(run_err(&["synth-search", "--universe", "zzz"])
            .to_string()
            .contains("unknown fault class"));
        let e = run_err(&["synth-search", "--universe", "saf", "--strategy", "anneal"]);
        assert!(e.to_string().contains("unknown --strategy"), "{e}");
        let e = run_err(&["synth-search", "--universe", "saf", "--target-coverage", "150"]);
        assert!(e.to_string().contains("0–100"), "{e}");
        assert_eq!(e.exit_code(), 2);
    }

    /// Same `--seed` must print byte-identical output for every worker
    /// count and engine — the CLI-level determinism contract.
    #[test]
    fn synth_search_output_is_independent_of_jobs_and_engine() {
        let base = [
            "synth-search",
            "--universe",
            "saf,tf,cfid",
            "--words",
            "32",
            "--budget",
            "300",
            "--seed",
            "9",
        ];
        let with = |extra: &[&str]| {
            let mut args = base.to_vec();
            args.extend_from_slice(extra);
            run_ok(&args)
        };
        let reference = with(&["--jobs", "1"]);
        assert_eq!(with(&["--jobs", "3"]), reference, "--jobs must not change output");
        assert_eq!(with(&["--engine", "packed"]), reference);
        assert_eq!(with(&["--engine", "sliced"]), reference, "engine must not either");
        assert_eq!(with(&[]), reference, "defaults match too");
    }

    #[test]
    fn exit_codes_follow_the_error_category() {
        // usage errors exit 2
        assert_eq!(run_err(&["frob"]).exit_code(), 2);
        assert_eq!(run_err(&["run", "march-c"]).exit_code(), 2);
        // execution failures exit 1
        assert_eq!(run_err(&["compile", "march-b", "--arch", "progfsm"]).exit_code(), 1);
    }

    #[test]
    fn unknown_flags_are_rejected_not_defaulted() {
        let e = run_err(&["run", "march-c", "--wrods", "8"]);
        assert!(e.to_string().contains("unknown flag `--wrods`"), "{e}");
        assert_eq!(e.exit_code(), 2);
        let e = run_err(&["compile", "march-c", "--arch"]);
        assert!(e.to_string().contains("needs a value"), "{e}");
        let e = run_err(&["area", "--table", "1", "--tble", "2"]);
        assert!(e.to_string().contains("unknown flag"), "{e}");
    }

    #[test]
    fn run_cycle_budget_watchdog() {
        let out = run_ok(&["run", "march-c", "--words", "16", "--cycle-budget", "100000"]);
        assert!(out.contains("PASS"));
        let e = run_err(&["run", "march-c", "--words", "16", "--cycle-budget", "10"]);
        assert_eq!(e.exit_code(), 4, "watchdog abort has its own exit code");
        assert!(e.to_string().contains("cycle budget"), "{e}");
        let e = run_err(&["run", "march-c", "--words", "16", "--cycle-budget", "x"]);
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn inject_upset_detects_and_recovers_on_both_architectures() {
        for arch in ["microcode", "progfsm"] {
            let out = run_ok(&[
                "inject-upset",
                "march-c",
                "--words",
                "16",
                "--arch",
                arch,
                "--bit",
                "5",
            ]);
            assert!(out.contains("(detected)"), "{arch}: {out}");
            assert!(out.contains("1 reload(s)"), "{arch}: {out}");
            assert!(out.contains("PASS"), "{arch}: {out}");
        }
    }

    #[test]
    fn inject_upset_exhausted_retries_exit_distinctly() {
        let e = run_err(&[
            "inject-upset",
            "march-c",
            "--words",
            "16",
            "--bit",
            "5",
            "--max-reloads",
            "0",
        ]);
        assert_eq!(e.exit_code(), 5);
        assert!(e.to_string().contains("scan-reload"), "{e}");
    }

    #[test]
    fn inject_upset_even_flips_per_column_alias_the_signature() {
        // flipping the same bit twice restores the store; the signature
        // cannot see it (its documented blind spot) and the clean program
        // runs without recovery
        let out = run_ok(&[
            "inject-upset",
            "march-c",
            "--words",
            "16",
            "--bit",
            "5",
            "--bit",
            "5",
        ]);
        assert!(out.contains("NOT DETECTED"), "{out}");
        assert!(out.contains("0 reload(s)"), "{out}");
        assert!(out.contains("PASS"), "{out}");
    }

    #[test]
    fn inject_upset_rejects_bad_targets() {
        let e =
            run_err(&["inject-upset", "march-c", "--words", "16", "--arch", "hardwired"]);
        assert!(e.to_string().contains("no program store"), "{e}");
        assert_eq!(e.exit_code(), 2);
        let e = run_err(&["inject-upset", "march-c", "--words", "16", "--bit", "99999"]);
        assert!(e.to_string().contains("outside"), "{e}");
    }

    #[test]
    fn rtl_emits_all_modules_and_testbench() {
        let out = run_ok(&["rtl", "march-c", "--words", "64", "--width", "4"]);
        assert!(out.contains("module mbist_microcode_ctrl"));
        assert!(out.contains("module mbist_datapath"));
        assert!(out.contains("module mbist_top"));
        assert!(out.contains("module tb;"));
        assert!(out.contains("MBIST_PASS"));
    }
}
