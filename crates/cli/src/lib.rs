//! # mbist-cli — command-line front end
//!
//! The command surface, testable as a library (`main.rs` is a thin shim):
//!
//! ```text
//! mbist algorithms
//! mbist show <algorithm>
//! mbist compile <algorithm> [--arch microcode|progfsm]
//! mbist run <algorithm> --words N [--width W] [--ports P]
//!           [--arch microcode|progfsm|hardwired] [--fault KIND@ADDR[.BIT]]
//! mbist coverage <algorithm> --words N [--max-faults K]
//! mbist area [--table 1|2|3]
//! mbist rtl <algorithm> [--capacity Z] [--words N] [--width W]
//! ```
//!
//! `<algorithm>` is a library name (`march-c`, `mats+`, …) or inline march
//! notation such as `"m(w0); u(r0,w1); d(r1,w0)"`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use mbist_area::{table1, table2, table3, Technology};
use mbist_core::{
    hardwired::HardwiredBist, microcode, microcode::MicrocodeBist, progfsm,
    progfsm::ProgFsmBist,
};
use mbist_march::{evaluate_coverage, library, CoverageOptions, MarchTest};
use mbist_mem::{CellId, FaultKind, MemGeometry, MemoryArray};

/// A user-facing CLI error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for CliError {}

fn err(message: impl Into<String>) -> CliError {
    CliError(message.into())
}

/// Executes a CLI invocation (without the leading program name), returning
/// the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-readable message on any misuse or
/// failure.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help" | "--help" | "-h") => Ok(usage()),
        Some("algorithms") => Ok(cmd_algorithms()),
        Some("show") => cmd_show(&collect(it)),
        Some("compile") => cmd_compile(&collect(it)),
        Some("run") => cmd_run(&collect(it)),
        Some("coverage") => cmd_coverage(&collect(it)),
        Some("area") => cmd_area(&collect(it)),
        Some("rtl") => cmd_rtl(&collect(it)),
        Some("synth") => cmd_synth(&collect(it)),
        Some(other) => Err(err(format!("unknown command `{other}`; try `mbist help`"))),
    }
}

fn collect<'a>(it: impl Iterator<Item = &'a str>) -> Vec<&'a str> {
    it.collect()
}

fn usage() -> String {
    "\
mbist — programmable memory built-in self test (DATE 1999 reproduction)

commands:
  algorithms                          list the march algorithm library
  show <algorithm>                    print an algorithm in march notation
  compile <algorithm> [--arch A]      compile to microcode (default) or progfsm
  run <algorithm> --words N [opts]    run a BIST session on a simulated memory
      [--width W] [--ports P] [--arch microcode|progfsm|hardwired]
      [--fault KIND@ADDR[.BIT]]       KIND: sa0 sa1 tf-up tf-down sof drf puf
  coverage <algorithm> --words N      per-fault-class coverage (serial fault sim)
      [--max-faults K] [--jobs J]     J worker threads (0 or absent = auto);
                                      the report is identical for every J
  area [--table 1|2|3]                regenerate the paper's tables
  rtl <algorithm> [--capacity Z]      emit Verilog for the microcode BIST unit
      [--words N] [--width W]
  synth --classes C1,C2,..            synthesize a minimal march test for a
      [--max-elements N] [--jobs J]   fault mix (saf tf af cfin cfid cfst)

<algorithm> is a library name (march-c, mats+, ...) or inline notation like
\"m(w0); u(r0,w1); d(r1,w0)\".
"
    .to_string()
}

fn resolve_test(spec: &str) -> Result<MarchTest, CliError> {
    if let Some(t) = library::by_name(spec) {
        return Ok(t);
    }
    if spec.contains('(') {
        return MarchTest::parse("custom", spec).map_err(|e| err(e.to_string()));
    }
    Err(err(format!(
        "unknown algorithm `{spec}` (see `mbist algorithms`, or pass march notation)"
    )))
}

fn flag_value<'a>(args: &[&'a str], name: &str) -> Option<&'a str> {
    args.iter().position(|a| *a == name).and_then(|i| args.get(i + 1).copied())
}

fn parse_flag<T: std::str::FromStr>(
    args: &[&str],
    name: &str,
    default: T,
) -> Result<T, CliError> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| err(format!("invalid value `{v}` for {name}"))),
    }
}

/// `--jobs N` → worker-thread request: 0 (or absent) means "use the host's
/// available parallelism".
fn jobs_from(args: &[&str]) -> Result<Option<usize>, CliError> {
    let n: usize = parse_flag(args, "--jobs", 0)?;
    Ok(if n == 0 { None } else { Some(n) })
}

fn geometry_from(args: &[&str]) -> Result<MemGeometry, CliError> {
    let words: u64 = match flag_value(args, "--words") {
        Some(v) => v.parse().map_err(|_| err(format!("invalid --words `{v}`")))?,
        None => return Err(err("--words N is required")),
    };
    let width: u8 = parse_flag(args, "--width", 1)?;
    let ports: u8 = parse_flag(args, "--ports", 1)?;
    if words == 0 || width == 0 || width > 64 || ports == 0 {
        return Err(err("geometry out of range (words ≥ 1, 1 ≤ width ≤ 64, ports ≥ 1)"));
    }
    Ok(MemGeometry::new(words, width, ports))
}

fn cmd_algorithms() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<12} {:>6} {:>9} {:>8}", "name", "ops/n", "elements", "pauses");
    for t in library::all() {
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>9} {:>8}",
            t.name(),
            t.ops_per_cell(),
            t.element_count(),
            t.pause_count()
        );
    }
    out
}

fn cmd_show(args: &[&str]) -> Result<String, CliError> {
    let spec = args.first().ok_or_else(|| err("usage: mbist show <algorithm>"))?;
    let t = resolve_test(spec)?;
    Ok(format!("{t}\n"))
}

fn cmd_compile(args: &[&str]) -> Result<String, CliError> {
    let spec = args.first().ok_or_else(|| err("usage: mbist compile <algorithm>"))?;
    let t = resolve_test(spec)?;
    match flag_value(args, "--arch").unwrap_or("microcode") {
        "microcode" => {
            let program = microcode::compile(&t).map_err(|e| err(e.to_string()))?;
            Ok(format!(
                "; {} → {} microinstructions\n{}",
                t,
                program.len(),
                microcode::disassemble(&program)
            ))
        }
        "progfsm" => {
            let program = progfsm::compile(&t).map_err(|e| err(e.to_string()))?;
            let mut out = format!("; {} → {} component instructions\n", t, program.len());
            for (i, inst) in program.iter().enumerate() {
                let _ = writeln!(out, "{i:>3}: {inst}");
            }
            Ok(out)
        }
        other => Err(err(format!("unknown --arch `{other}` (microcode|progfsm)"))),
    }
}

fn parse_fault(spec: &str, geometry: &MemGeometry) -> Result<FaultKind, CliError> {
    let (kind, loc) = spec
        .split_once('@')
        .ok_or_else(|| err(format!("fault `{spec}` must look like sa0@ADDR[.BIT]")))?;
    let (addr_s, bit_s) = match loc.split_once('.') {
        Some((a, b)) => (a, b),
        None => (loc, "0"),
    };
    let parse_u64 = |s: &str| -> Result<u64, CliError> {
        if let Some(hex) = s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).map_err(|_| err(format!("invalid address `{s}`")))
        } else {
            s.parse().map_err(|_| err(format!("invalid address `{s}`")))
        }
    };
    let cell = CellId::new(
        parse_u64(addr_s)?,
        bit_s.parse().map_err(|_| err(format!("invalid bit `{bit_s}`")))?,
    );
    let fault = match kind {
        "sa0" => FaultKind::StuckAt { cell, value: false },
        "sa1" => FaultKind::StuckAt { cell, value: true },
        "tf-up" => FaultKind::Transition { cell, rising: true },
        "tf-down" => FaultKind::Transition { cell, rising: false },
        "sof" => FaultKind::StuckOpen { cell },
        "drf" => FaultKind::Retention { cell, decays_to: true, retention_ns: 50_000.0 },
        "puf" => FaultKind::PullOpen { cell, good_reads: 2, decays_to: false },
        other => return Err(err(format!("unknown fault kind `{other}`"))),
    };
    if !fault.is_valid_for(geometry) {
        return Err(err(format!("fault `{spec}` does not fit the geometry")));
    }
    Ok(fault)
}

fn cmd_run(args: &[&str]) -> Result<String, CliError> {
    let spec = args.first().ok_or_else(|| err("usage: mbist run <algorithm> --words N"))?;
    let t = resolve_test(spec)?;
    let geometry = geometry_from(args)?;
    let mut mem = MemoryArray::new(geometry);
    for (i, a) in args.iter().enumerate() {
        if *a == "--fault" {
            let spec = args.get(i + 1).ok_or_else(|| err("--fault needs a value"))?;
            let fault = parse_fault(spec, &geometry)?;
            mem.inject(fault).map_err(|e| err(e.to_string()))?;
        }
    }

    let arch = flag_value(args, "--arch").unwrap_or("microcode");
    let report = match arch {
        "microcode" => MicrocodeBist::for_test(&t, &geometry)
            .map_err(|e| err(e.to_string()))?
            .run(&mut mem),
        "progfsm" => ProgFsmBist::for_test(&t, &geometry)
            .map_err(|e| err(e.to_string()))?
            .run(&mut mem),
        "hardwired" => HardwiredBist::for_test(&t, &geometry).run(&mut mem),
        other => {
            return Err(err(format!(
                "unknown --arch `{other}` (microcode|progfsm|hardwired)"
            )))
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} `{}` on {}: {}",
        report.architecture,
        report.algorithm,
        geometry,
        if report.passed() { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(
        out,
        "cycles {} (bus {}, overhead {}), pause {:.1} us",
        report.cycles,
        report.bus_cycles,
        report.overhead_cycles(),
        report.pause_ns / 1000.0
    );
    if !report.passed() {
        let _ = writeln!(out, "miscompares: {}", report.fail_log.len());
        for (cycle, m) in report.fail_log.entries().iter().take(8) {
            let _ = writeln!(out, "  cycle {cycle:>8}: {m}");
        }
        let bitmap = report.fail_log.bitmap(geometry);
        let _ = writeln!(out, "signature: {:?}", bitmap.signature());
        let _ = write!(out, "{bitmap}");
    }
    Ok(out)
}

fn cmd_coverage(args: &[&str]) -> Result<String, CliError> {
    let spec =
        args.first().ok_or_else(|| err("usage: mbist coverage <algorithm> --words N"))?;
    let t = resolve_test(spec)?;
    let geometry = geometry_from(args)?;
    let max: usize = parse_flag(args, "--max-faults", 256)?;
    let report = evaluate_coverage(
        &t,
        &geometry,
        &CoverageOptions {
            max_faults_per_class: Some(max),
            jobs: jobs_from(args)?,
            ..CoverageOptions::default()
        },
    );
    Ok(report.to_string())
}

fn cmd_area(args: &[&str]) -> Result<String, CliError> {
    let tech = Technology::cmos5s();
    match flag_value(args, "--table") {
        None => Ok(format!("{}\n{}\n{}", table1(&tech), table2(&tech), table3(&tech))),
        Some("1") => Ok(table1(&tech).to_string()),
        Some("2") => Ok(table2(&tech).to_string()),
        Some("3") => Ok(table3(&tech).to_string()),
        Some(other) => Err(err(format!("unknown table `{other}` (1|2|3)"))),
    }
}

fn cmd_rtl(args: &[&str]) -> Result<String, CliError> {
    let spec = args.first().ok_or_else(|| err("usage: mbist rtl <algorithm>"))?;
    let t = resolve_test(spec)?;
    let program = microcode::compile(&t).map_err(|e| err(e.to_string()))?;
    let z: usize = parse_flag(args, "--capacity", program.len().max(16))?;
    let words: u64 = parse_flag(args, "--words", 1024)?;
    let width: u8 = parse_flag(args, "--width", 8)?;
    let geometry = MemGeometry::word_oriented(words, width);

    let ctrl = mbist_hdl::emit_microcode(z, "mbist_microcode_ctrl");
    let dp = mbist_hdl::emit_datapath(&geometry, "mbist_datapath");
    let top = mbist_hdl::emit_top(&geometry, "mbist_top");
    for m in [&ctrl, &dp, &top] {
        let issues = mbist_hdl::lint(m);
        if !issues.is_empty() {
            return Err(err(format!("generated RTL failed lint: {}", issues[0])));
        }
    }
    let tb = mbist_hdl::emit_testbench(&t, &geometry, z, "mbist_top")
        .map_err(|e| err(e.to_string()))?;
    Ok(format!("{}\n{}\n{}\n{}", ctrl.emit(), dp.emit(), top.emit(), tb))
}

fn cmd_synth(args: &[&str]) -> Result<String, CliError> {
    use mbist_march::{synthesize_march, SynthesisOptions};
    use mbist_mem::FaultClass;
    let spec = flag_value(args, "--classes")
        .ok_or_else(|| err("usage: mbist synth --classes saf,tf,af"))?;
    let mut classes = Vec::new();
    for name in spec.split(',') {
        classes.push(match name.trim() {
            "saf" => FaultClass::StuckAt,
            "tf" => FaultClass::Transition,
            "af" => FaultClass::AddressDecoder,
            "cfin" => FaultClass::CouplingInversion,
            "cfid" => FaultClass::CouplingIdempotent,
            "cfst" => FaultClass::CouplingState,
            other => return Err(err(format!("unknown fault class `{other}`"))),
        });
    }
    let max_elements: usize = parse_flag(args, "--max-elements", 8)?;
    let mut options =
        SynthesisOptions { classes, max_elements, ..SynthesisOptions::default() };
    options.coverage.jobs = jobs_from(args)?;
    let result = synthesize_march("synthesized", &options);
    let mut out = String::new();
    let _ = writeln!(out, "{}", result.test);
    let _ = writeln!(
        out,
        "complexity {}n, coverage {}/{} on the search geometry, {} evaluations",
        result.test.ops_per_cell(),
        result.detected,
        result.total,
        result.evaluations
    );
    if !result.is_complete() {
        let _ = writeln!(out, "warning: coverage incomplete; raise --max-elements");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(args: &[&str]) -> String {
        run(&args.iter().map(ToString::to_string).collect::<Vec<_>>())
            .unwrap_or_else(|e| panic!("{args:?} failed: {e}"))
    }

    fn run_err(args: &[&str]) -> CliError {
        run(&args.iter().map(ToString::to_string).collect::<Vec<_>>())
            .expect_err("command should fail")
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_ok(&["help"]).contains("commands:"));
        assert!(run_ok(&[]).contains("mbist"));
        assert!(run_err(&["frob"]).to_string().contains("unknown command"));
    }

    #[test]
    fn algorithms_lists_the_library() {
        let out = run_ok(&["algorithms"]);
        assert!(out.contains("march-c"));
        assert!(out.contains("march-ss"));
    }

    #[test]
    fn show_prints_notation() {
        let out = run_ok(&["show", "march-c"]);
        assert!(out.contains("⇕(w0)"));
        assert!(run_err(&["show", "nope"]).to_string().contains("unknown algorithm"));
    }

    #[test]
    fn compile_both_architectures() {
        let out = run_ok(&["compile", "march-c"]);
        assert!(out.contains("repeat(order)"));
        let out = run_ok(&["compile", "march-c", "--arch", "progfsm"]);
        assert!(out.contains("SM1"));
        let e = run_err(&["compile", "march-b", "--arch", "progfsm"]);
        assert!(e.to_string().contains("not expressible"));
    }

    #[test]
    fn compile_inline_notation() {
        let out = run_ok(&["compile", "m(w0); u(r0,w1); d(r1,w0)"]);
        assert!(out.contains("custom"));
    }

    #[test]
    fn run_pass_and_fail() {
        let out = run_ok(&["run", "march-c", "--words", "32"]);
        assert!(out.contains("PASS"));
        let out = run_ok(&[
            "run", "march-c", "--words", "32", "--fault", "sa1@0x5",
        ]);
        assert!(out.contains("FAIL"));
        assert!(out.contains("SingleCell"));
    }

    #[test]
    fn run_architecture_selection() {
        for arch in ["microcode", "progfsm", "hardwired"] {
            let out = run_ok(&["run", "mats+", "--words", "16", "--arch", arch]);
            assert!(out.contains("PASS"), "{arch}: {out}");
        }
    }

    #[test]
    fn run_word_oriented_fault_with_bit() {
        let out = run_ok(&[
            "run", "march-c", "--words", "16", "--width", "8", "--fault", "tf-up@3.6",
        ]);
        assert!(out.contains("FAIL"));
    }

    #[test]
    fn run_rejects_bad_inputs() {
        assert!(run_err(&["run", "march-c"]).to_string().contains("--words"));
        assert!(run_err(&["run", "march-c", "--words", "8", "--fault", "zz@1"])
            .to_string()
            .contains("unknown fault kind"));
        assert!(run_err(&["run", "march-c", "--words", "8", "--fault", "sa1@99"])
            .to_string()
            .contains("does not fit"));
    }

    #[test]
    fn coverage_reports_classes() {
        let out = run_ok(&["coverage", "mats+", "--words", "16", "--max-faults", "32"]);
        assert!(out.contains("SAF"));
        assert!(out.contains("%"));
    }

    #[test]
    fn coverage_output_is_independent_of_jobs() {
        let base = ["coverage", "march-c", "--words", "16", "--max-faults", "32"];
        let with_jobs = |j: &str| {
            let mut args = base.to_vec();
            args.extend(["--jobs", j]);
            run_ok(&args)
        };
        let serial = with_jobs("1");
        assert_eq!(with_jobs("2"), serial);
        assert_eq!(with_jobs("0"), serial, "0 = auto must match too");
        assert_eq!(run_ok(&base), serial, "flag absent = auto");
        assert!(run_err(&["coverage", "march-c", "--words", "8", "--jobs", "x"])
            .to_string()
            .contains("--jobs"));
    }

    #[test]
    fn area_tables() {
        assert!(run_ok(&["area", "--table", "1"]).contains("Microcode-Based"));
        assert!(run_ok(&["area", "--table", "3"]).contains("Adjusted"));
        let all = run_ok(&["area"]);
        assert!(all.contains("Table 1") && all.contains("Table 3"));
        assert!(run_err(&["area", "--table", "9"]).to_string().contains("unknown table"));
    }

    #[test]
    fn synth_produces_a_complete_test() {
        let out = run_ok(&["synth", "--classes", "saf,tf"]);
        assert!(out.contains("synthesized:"));
        assert!(out.contains("coverage"));
        assert!(!out.contains("warning"));
        assert!(run_err(&["synth", "--classes", "zzz"])
            .to_string()
            .contains("unknown fault class"));
        assert!(run_err(&["synth"]).to_string().contains("--classes"));
    }

    #[test]
    fn rtl_emits_all_modules_and_testbench() {
        let out = run_ok(&["rtl", "march-c", "--words", "64", "--width", "4"]);
        assert!(out.contains("module mbist_microcode_ctrl"));
        assert!(out.contains("module mbist_datapath"));
        assert!(out.contains("module mbist_top"));
        assert!(out.contains("module tb;"));
        assert!(out.contains("MBIST_PASS"));
    }
}
