//! The `mbist` command-line binary (thin shim over [`mbist_cli::run`]).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mbist_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
