//! The daemon must answer byte-for-byte what the offline CLI prints.
//!
//! The service reuses the CLI's formatting code paths, and these tests pin
//! that contract from the outside: for every queued request kind the `text`
//! payload is compared against [`mbist_cli::run`] on the equivalent
//! invocation, across worker counts, engines and cache settings.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use mbist_service::json::Json;
use mbist_service::{Server, ServiceConfig};

fn cli(args: &[&str]) -> String {
    mbist_cli::run(&args.iter().map(ToString::to_string).collect::<Vec<_>>())
        .expect("offline CLI succeeds")
}

fn ask(addr: SocketAddr, line: &str) -> Json {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    // One write per request (a lone-newline segment trips Nagle/delayed-ACK).
    stream.write_all(format!("{line}\n").as_bytes()).expect("send");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    Json::parse(reply.trim()).expect("reply is JSON")
}

fn text(reply: &Json) -> &str {
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "{reply}");
    reply.get("text").and_then(Json::as_str).expect("text payload")
}

/// Every queued request kind, compared against the offline CLI under one
/// warm-cache server — and again under a cache-disabled one: caching must
/// never change bytes, only latency.
#[test]
fn service_responses_are_bit_identical_to_the_cli() {
    let cases: Vec<(String, Vec<&str>)> = vec![
        (
            r#"{"kind":"coverage","test":"march-c","words":64}"#.into(),
            vec!["coverage", "march-c", "--words", "64"],
        ),
        (
            r#"{"kind":"coverage","test":"mats+","words":16,"width":8,"max_faults":64,"engine":"full"}"#.into(),
            vec![
                "coverage", "mats+", "--words", "16", "--width", "8", "--max-faults",
                "64", "--engine", "full",
            ],
        ),
        (
            r#"{"kind":"coverage","test":"m(w0); u(r0,w1); d(r1,w0)","words":32}"#.into(),
            vec!["coverage", "m(w0); u(r0,w1); d(r1,w0)", "--words", "32"],
        ),
        (
            r#"{"kind":"coverage","test":"march-c","words":64,"engine":"packed"}"#.into(),
            vec!["coverage", "march-c", "--words", "64", "--engine", "packed"],
        ),
        (
            r#"{"kind":"synth","classes":"saf,tf"}"#.into(),
            vec!["synth", "--classes", "saf,tf"],
        ),
        (r#"{"kind":"area"}"#.into(), vec!["area"]),
        (r#"{"kind":"area","table":"2"}"#.into(), vec!["area", "--table", "2"]),
    ];
    for config in [
        ServiceConfig { workers: 3, ..ServiceConfig::default() },
        ServiceConfig { workers: 1, cache_bytes: 0, ..ServiceConfig::default() },
    ] {
        let server = Server::start("127.0.0.1:0", config).expect("bind");
        let addr = server.local_addr();
        for (request, cli_args) in &cases {
            // Twice: the repeat exercises the memo path on the warm server,
            // the cold compute path on the cache-disabled one.
            for round in 0..2 {
                let reply = ask(addr, request);
                assert_eq!(
                    text(&reply),
                    cli(cli_args),
                    "diverged on {request} (round {round}, cache {} bytes)",
                    config.cache_bytes
                );
            }
        }
        server.shutdown();
        let _ = server.join();
    }
}

/// `detects` must agree with the observable outcome of `run --fault`: a
/// detected fault is exactly one that makes the offline session FAIL.
#[test]
fn detects_agrees_with_offline_fault_injection() {
    let server = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("bind");
    let addr = server.local_addr();
    for fault in ["sa0@5", "sa1@0x1f", "tf-up@9", "sof@31", "drf@2"] {
        let reply = ask(
            addr,
            &format!(
                r#"{{"kind":"detects","test":"march-c","words":32,"fault":"{fault}"}}"#
            ),
        );
        let detected = reply.get("detected").and_then(Json::as_bool).expect("verdict");
        let offline = cli(&["run", "march-c", "--words", "32", "--fault", fault]);
        assert_eq!(
            detected,
            offline.contains("FAIL"),
            "service and offline run disagree on {fault}:\n{offline}"
        );
    }
    server.shutdown();
    let _ = server.join();
}

/// The `serve` subcommand end to end: announce, serve, drain on a protocol
/// shutdown, and report the drain summary line scripts grep for.
#[test]
fn serve_subcommand_runs_and_drains() {
    // Reserve an ephemeral port, free it, and hand it to `serve` (`run`
    // prints the listening line to stdout, which a unit test cannot read).
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = probe.local_addr().expect("probe addr");
    drop(probe);
    let serve = std::thread::spawn(move || {
        mbist_cli::run(&[
            "serve".to_string(),
            "--addr".to_string(),
            addr.to_string(),
            "--workers".to_string(),
            "2".to_string(),
        ])
    });
    // The listener may need a moment to come up on the reused port.
    let mut attempts = 0;
    let reply = loop {
        match TcpStream::connect(addr) {
            Ok(mut stream) => {
                stream.set_nodelay(true).expect("nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                stream
                    .write_all(b"{\"kind\":\"coverage\",\"test\":\"mats\",\"words\":16}\n")
                    .expect("send");
                let mut line = String::new();
                reader.read_line(&mut line).expect("reply");
                stream.write_all(b"{\"kind\":\"shutdown\"}\n").expect("send");
                let mut bye = String::new();
                reader.read_line(&mut bye).expect("shutdown reply");
                break Json::parse(line.trim()).expect("reply is JSON");
            }
            Err(e) => {
                attempts += 1;
                assert!(attempts < 100, "server never came up: {e}");
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
    };
    assert_eq!(text(&reply), cli(&["coverage", "mats", "--words", "16"]));
    let summary = serve.join().expect("serve thread").expect("serve exits cleanly");
    assert!(summary.contains("served 2 request(s)"), "{summary}");
    assert!(summary.contains("drained 0 queued job(s)"), "{summary}");
}
