//! # mbist-area — structural area estimation for MBIST controllers
//!
//! Reproduces the paper's evaluation methodology: every controller
//! architecture elaborates into a structural inventory
//! ([`Structure`](mbist_rtl::Structure)); a [`Technology`] model maps
//! primitives to 2-input-NAND gate equivalents and µm² (CMOS5S-like
//! 0.35 µm); hardwired controllers are *synthesized* — their exported
//! transition tables run through the two-level minimizer in
//! [`mbist_logic`] ([`synthesize`]).
//!
//! [`table1`], [`table2`] and [`table3`] regenerate the paper's three
//! tables; [`observations`] computes the §3 closing observations;
//! [`storage_cell_sweep`] reproduces the storage-dominance argument.
//!
//! # Examples
//!
//! ```
//! use mbist_area::{table1, Technology};
//!
//! let t = table1(&Technology::cmos5s());
//! assert_eq!(t.cell("Microcode-Based", "Flex."), Some("HIGH"));
//! println!("{t}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod report;
mod sensitivity;
mod sharing;
mod synth;
mod tables;
mod tech;

pub use model::{
    baseline_algorithms, hardwired_design, microcode_design, progfsm_design, DesignPoint,
    SupportLevel, MICROCODE_DESIGN_CAPACITY, PROGFSM_DESIGN_CAPACITY,
};
pub use report::Table;
pub use sensitivity::{storage_cell_sweep, SensitivityPoint};
pub use sharing::{
    collar_structure, crossover_memory_count, sharing_analysis, SharingAnalysis, SocMemory,
};
pub use synth::{synthesize, synthesized_structure, SynthesizedFsm};
pub use tables::{design_points, observations, table1, table2, table3, Observations};
pub use tech::{AreaEstimate, Technology};
