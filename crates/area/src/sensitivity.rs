//! Sensitivity of the programmable-controller area to the storage-cell
//! area factor — the paper's observation that "any reduction in the area
//! of the storage units … has the largest effect on the area of
//! programmable memory BIST units".

use mbist_rtl::{CellStyle, Primitive};

use crate::model::{microcode_design, SupportLevel};
use crate::tech::Technology;

/// One point of the sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityPoint {
    /// Storage-cell weight in gate equivalents.
    pub cell_ge: f64,
    /// Resulting controller area in gate equivalents.
    pub controller_ge: f64,
    /// Fraction of the controller occupied by the storage unit.
    pub storage_fraction: f64,
}

/// Sweeps the scan-only storage-cell weight from `lo` to `hi` GE in
/// `steps` points and reports the microcode controller area at each.
///
/// # Panics
///
/// Panics if `steps < 2` or the range is not increasing.
#[must_use]
pub fn storage_cell_sweep(
    tech: &Technology,
    lo: f64,
    hi: f64,
    steps: usize,
) -> Vec<SensitivityPoint> {
    assert!(steps >= 2, "need at least two sweep points");
    assert!(lo < hi && lo > 0.0, "range must be increasing and positive");
    (0..steps)
        .map(|i| {
            let cell_ge = lo + (hi - lo) * i as f64 / (steps - 1) as f64;
            let t = tech.with_weight(Primitive::ScanOnlyCell, cell_ge);
            let design =
                microcode_design(&t, CellStyle::ScanOnly, SupportLevel::BitOriented);
            SensitivityPoint {
                cell_ge,
                controller_ge: design.area.ge,
                storage_fraction: design.area.of(Primitive::ScanOnlyCell) / design.area.ge,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_is_monotone_in_cell_weight() {
        let pts = storage_cell_sweep(&Technology::cmos5s(), 1.0, 8.0, 8);
        for w in pts.windows(2) {
            assert!(w[0].controller_ge < w[1].controller_ge);
        }
    }

    #[test]
    fn storage_dominates_at_full_scan_weight() {
        let pts = storage_cell_sweep(&Technology::cmos5s(), 1.0, 7.33, 2);
        let at_full = pts.last().unwrap();
        assert!(
            at_full.storage_fraction > 0.5,
            "storage should dominate the unadjusted controller ({:.2})",
            at_full.storage_fraction
        );
        // … which is exactly why the storage redesign has the largest
        // effect: the fraction falls substantially at scan-only weight.
        assert!(pts[0].storage_fraction < at_full.storage_fraction);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_sweep_panics() {
        let _ = storage_cell_sweep(&Technology::cmos5s(), 1.0, 2.0, 1);
    }
}
