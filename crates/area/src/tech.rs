//! Technology model: mapping structural primitives to gate equivalents and
//! silicon area.
//!
//! The paper reports "internal area" in 2-input NAND gates and physical
//! size in µm² for IBM CMOS5S (0.35 µm). That library is proprietary, so
//! this model uses representative public-domain figures for a 0.35 µm
//! standard-cell process; the *relative* weights are what matters for
//! reproducing the paper's comparisons, and they preserve the paper's two
//! stated cell facts: scan-only storage cells are 4-5× smaller than
//! full-scan registers, and a NAND2 is the area unit.

use std::collections::BTreeMap;

use mbist_rtl::{Primitive, Structure};

/// A standard-cell technology: NAND2 area plus per-primitive
/// gate-equivalent weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    name: String,
    nand2_um2: f64,
    weights: BTreeMap<Primitive, f64>,
}

impl Technology {
    /// A CMOS5S-like 0.35 µm model.
    ///
    /// Weights (gate equivalents): NAND2 1.0, INV 0.67, XOR2 2.33,
    /// MUX2 1.67, DFF 5.67, scan DFF 7.33, scan-only cell 1.67
    /// (≈ 4.4× smaller than a scan DFF, inside the paper's 4-5× band),
    /// SRAM bit 0.4. NAND2 = 49 µm².
    #[must_use]
    pub fn cmos5s() -> Self {
        let mut weights = BTreeMap::new();
        weights.insert(Primitive::Nand2, 1.0);
        weights.insert(Primitive::Inv, 0.67);
        weights.insert(Primitive::Xor2, 2.33);
        weights.insert(Primitive::Mux2, 1.67);
        weights.insert(Primitive::Dff, 5.67);
        weights.insert(Primitive::ScanDff, 7.33);
        weights.insert(Primitive::ScanOnlyCell, 1.67);
        weights.insert(Primitive::SramBit, 0.4);
        Self { name: "cmos5s-like 0.35um".into(), nand2_um2: 49.0, weights }
    }

    /// The model's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Area of one NAND2 in µm².
    #[must_use]
    pub fn nand2_um2(&self) -> f64 {
        self.nand2_um2
    }

    /// Gate-equivalent weight of a primitive.
    #[must_use]
    pub fn weight(&self, prim: Primitive) -> f64 {
        self.weights.get(&prim).copied().unwrap_or(1.0)
    }

    /// Returns a copy with one weight overridden (used by the sensitivity
    /// study on the storage-cell area factor).
    #[must_use]
    pub fn with_weight(&self, prim: Primitive, weight: f64) -> Self {
        let mut t = self.clone();
        t.weights.insert(prim, weight);
        t.name = format!("{} ({prim}={weight})", self.name);
        t
    }

    /// Evaluates a structure into an area estimate.
    #[must_use]
    pub fn area_of(&self, structure: &Structure) -> AreaEstimate {
        let mut ge = 0.0;
        let mut breakdown = BTreeMap::new();
        for (prim, count) in structure.totals() {
            let contribution = self.weight(prim) * f64::from(count);
            ge += contribution;
            breakdown.insert(prim, contribution);
        }
        AreaEstimate { ge, um2: ge * self.nand2_um2, breakdown }
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::cmos5s()
    }
}

/// An evaluated area: gate equivalents (2-input NAND units, the paper's
/// "internal area") and µm².
#[derive(Debug, Clone, PartialEq)]
pub struct AreaEstimate {
    /// Total gate equivalents.
    pub ge: f64,
    /// Physical area in µm².
    pub um2: f64,
    /// Per-primitive GE contributions.
    pub breakdown: BTreeMap<Primitive, f64>,
}

impl AreaEstimate {
    /// GE contribution of one primitive kind.
    #[must_use]
    pub fn of(&self, prim: Primitive) -> f64 {
        self.breakdown.get(&prim).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_only_cells_are_4_to_5_times_smaller() {
        let t = Technology::cmos5s();
        let ratio = t.weight(Primitive::ScanDff) / t.weight(Primitive::ScanOnlyCell);
        assert!((4.0..=5.0).contains(&ratio), "ratio {ratio} outside the paper's band");
    }

    #[test]
    fn area_sums_weighted_primitives() {
        let t = Technology::cmos5s();
        let s = Structure::leaf("x").with(Primitive::Nand2, 10).with(Primitive::Dff, 2);
        let a = t.area_of(&s);
        assert_eq!(a.ge, 10.0 + 2.0 * 5.67);
        assert_eq!(a.um2, a.ge * 49.0);
        assert_eq!(a.of(Primitive::Nand2), 10.0);
    }

    #[test]
    fn with_weight_overrides_one_primitive() {
        let t = Technology::cmos5s().with_weight(Primitive::ScanOnlyCell, 3.0);
        assert_eq!(t.weight(Primitive::ScanOnlyCell), 3.0);
        assert_eq!(t.weight(Primitive::Nand2), 1.0);
    }

    #[test]
    fn empty_structure_is_zero_area() {
        let a = Technology::cmos5s().area_of(&Structure::leaf("empty"));
        assert_eq!(a.ge, 0.0);
        assert_eq!(a.um2, 0.0);
    }
}
