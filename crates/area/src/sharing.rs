//! SoC-level controller sharing analysis.
//!
//! The paper's introduction argues that programmable BIST "could be used
//! to test memories in different stages of their fabrication and
//! therefore result in lower overall memory test logic overhead". This
//! module quantifies that: one programmable controller shared across `N`
//! embedded memories (each memory pays only a small access collar) versus
//! one hardwired controller per memory. With enough memories — or with
//! per-stage algorithm requirements that would force *several* hardwired
//! controllers per memory — the shared programmable unit wins.

use mbist_march::MarchTest;
use mbist_mem::MemGeometry;
use mbist_rtl::{CellStyle, Primitive, Structure};

use crate::model::{hardwired_design, microcode_design, SupportLevel};
use crate::tech::Technology;

/// One embedded memory on the SoC and its test requirement.
#[derive(Debug, Clone)]
pub struct SocMemory {
    /// Instance name.
    pub name: String,
    /// Organization.
    pub geometry: MemGeometry,
    /// Algorithms required over the product lifecycle (wafer sort, final
    /// test, burn-in, in-field) — a hardwired strategy needs the union.
    pub algorithms: Vec<MarchTest>,
}

/// The access collar a shared controller needs at each memory: address /
/// data / control muxing between the functional path and the BIST bus.
#[must_use]
pub fn collar_structure(geometry: &MemGeometry) -> Structure {
    let aw = u32::from(geometry.addr_bits());
    let w = u32::from(geometry.width());
    Structure::leaf("bist_collar")
        .with(Primitive::Mux2, aw + 2 * w + 3)
        .with(Primitive::Nand2, 6)
        .with(Primitive::Inv, 2)
}

/// Totals for the three integration strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingAnalysis {
    /// Gate equivalents: one shared (scan-only) microcode controller plus
    /// a collar per memory.
    pub shared_programmable_ge: f64,
    /// Gate equivalents: one hardwired controller per memory per required
    /// algorithm.
    pub dedicated_hardwired_ge: f64,
    /// Gate equivalents: one (scan-only) microcode controller per memory.
    pub dedicated_programmable_ge: f64,
    /// Number of memories analyzed.
    pub memory_count: usize,
}

impl SharingAnalysis {
    /// Whether sharing beats the dedicated hardwired strategy.
    #[must_use]
    pub fn sharing_wins(&self) -> bool {
        self.shared_programmable_ge < self.dedicated_hardwired_ge
    }
}

/// Analyzes the three strategies for a set of SoC memories.
#[must_use]
pub fn sharing_analysis(tech: &Technology, memories: &[SocMemory]) -> SharingAnalysis {
    let level = SupportLevel::Multiport; // the shared unit must support all
    let controller = microcode_design(tech, CellStyle::ScanOnly, level).area.ge;

    let mut collars = 0.0;
    let mut hardwired = 0.0;
    for m in memories {
        collars += tech.area_of(&collar_structure(&m.geometry)).ge;
        let mem_level = if m.geometry.ports() > 1 {
            SupportLevel::Multiport
        } else if m.geometry.width() > 1 {
            SupportLevel::WordOriented
        } else {
            SupportLevel::BitOriented
        };
        for alg in &m.algorithms {
            hardwired += hardwired_design(tech, alg, mem_level).area.ge;
        }
    }

    SharingAnalysis {
        shared_programmable_ge: controller + collars,
        dedicated_hardwired_ge: hardwired,
        dedicated_programmable_ge: controller * memories.len() as f64 + collars,
        memory_count: memories.len(),
    }
}

/// The smallest number of identical memories at which the shared
/// programmable strategy undercuts dedicated hardwired controllers, or
/// `None` if it never does within `max_n`.
#[must_use]
pub fn crossover_memory_count(
    tech: &Technology,
    template: &SocMemory,
    max_n: usize,
) -> Option<usize> {
    for n in 1..=max_n {
        let memories: Vec<SocMemory> = (0..n)
            .map(|i| SocMemory {
                name: format!("{}_{i}", template.name),
                geometry: template.geometry,
                algorithms: template.algorithms.clone(),
            })
            .collect();
        if sharing_analysis(tech, &memories).sharing_wins() {
            return Some(n);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_march::library;

    fn lifecycle_memory(name: &str, geometry: MemGeometry) -> SocMemory {
        SocMemory {
            name: name.into(),
            geometry,
            // wafer sort, final test (retention), burn-in screen
            algorithms: vec![
                library::march_c(),
                library::march_c_plus(),
                library::march_c_plus_plus(),
            ],
        }
    }

    #[test]
    fn collar_is_small_compared_to_any_controller() {
        let tech = Technology::cmos5s();
        let collar = tech.area_of(&collar_structure(&MemGeometry::word_oriented(1024, 8)));
        let hw = hardwired_design(&tech, &library::march_c(), SupportLevel::BitOriented);
        assert!(collar.ge < hw.area.ge, "{:.0} vs {:.0}", collar.ge, hw.area.ge);
    }

    #[test]
    fn sharing_crosses_over_with_lifecycle_algorithms() {
        let tech = Technology::cmos5s();
        let template = lifecycle_memory("sram", MemGeometry::word_oriented(1024, 8));
        let crossover = crossover_memory_count(&tech, &template, 32)
            .expect("sharing must win eventually");
        assert!(
            crossover <= 4,
            "with three lifecycle algorithms per memory, crossover at {crossover}"
        );
        // below the crossover, hardwired wins
        if crossover > 1 {
            let below: Vec<SocMemory> = (0..crossover - 1)
                .map(|i| lifecycle_memory(&format!("m{i}"), template.geometry))
                .collect();
            assert!(!sharing_analysis(&tech, &below).sharing_wins());
        }
    }

    #[test]
    fn single_algorithm_single_memory_favors_hardwired() {
        let tech = Technology::cmos5s();
        let memories = [SocMemory {
            name: "only".into(),
            geometry: MemGeometry::bit_oriented(256),
            algorithms: vec![library::march_c()],
        }];
        let a = sharing_analysis(&tech, &memories);
        assert!(!a.sharing_wins(), "one memory, one algorithm: hardwired is cheapest");
    }

    #[test]
    fn shared_strategy_scales_sublinearly() {
        let tech = Technology::cmos5s();
        let mk = |n: usize| -> Vec<SocMemory> {
            (0..n)
                .map(|i| {
                    lifecycle_memory(&format!("m{i}"), MemGeometry::word_oriented(512, 8))
                })
                .collect()
        };
        let a4 = sharing_analysis(&tech, &mk(4));
        let a16 = sharing_analysis(&tech, &mk(16));
        let shared_growth = a16.shared_programmable_ge / a4.shared_programmable_ge;
        let hardwired_growth = a16.dedicated_hardwired_ge / a4.dedicated_hardwired_ge;
        assert!(shared_growth < hardwired_growth);
        assert!((hardwired_growth - 4.0).abs() < 0.01, "hardwired scales linearly");
    }
}
