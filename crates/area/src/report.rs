//! Plain-text table rendering for the regenerated paper tables.

use std::fmt;

/// A rendered report table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Self { title: title.into(), headers, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row/header length mismatch");
        self.rows.push(row);
    }

    /// Looks up a cell by row label (first column) and header name.
    #[must_use]
    pub fn cell(&self, row_label: &str, header: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == header)?;
        let row = self.rows.iter().find(|r| r[0] == row_label)?;
        Some(&row[col])
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>| {
            for w in &widths {
                write!(f, "+{}", "-".repeat(w + 2))?;
            }
            writeln!(f, "+")
        };
        line(f)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "| {:<width$} ", h, width = widths[i])?;
        }
        writeln!(f, "|")?;
        line(f)?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "| {:<width$} ", cell, width = widths[i])?;
            }
            writeln!(f, "|")?;
        }
        line(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t =
            Table::new("Table X", vec!["Method".into(), "Flex.".into(), "GE".into()]);
        t.push_row(vec!["Microcode".into(), "HIGH".into(), "960".into()]);
        t.push_row(vec!["March C".into(), "LOW".into(), "120".into()]);
        t
    }

    #[test]
    fn cell_lookup() {
        let t = sample();
        assert_eq!(t.cell("Microcode", "GE"), Some("960"));
        assert_eq!(t.cell("March C", "Flex."), Some("LOW"));
        assert_eq!(t.cell("nope", "GE"), None);
        assert_eq!(t.cell("March C", "nope"), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn short_row_panics() {
        sample().push_row(vec!["x".into()]);
    }

    #[test]
    fn display_aligns_columns() {
        let text = sample().to_string();
        assert!(text.contains("Table X"));
        assert!(text.contains("| Microcode |"));
        assert!(text.contains("| March C   |"));
        // every data line has the same length
        let lines: Vec<&str> =
            text.lines().filter(|l| l.starts_with('|') || l.starts_with('+')).collect();
        let len = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == len));
    }
}
