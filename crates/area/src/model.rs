//! The evaluated architecture design points.
//!
//! The paper compares fixed *designs*, not per-algorithm instances of the
//! programmable controllers: one microcode-based unit sized to hold the
//! March C/A family including retention variants, one programmable
//! FSM-based unit, and one hardwired unit per algorithm.

use mbist_core::hardwired::{HardwiredCaps, HardwiredFsm};
use mbist_core::microcode::{compile as mc_compile, MicrocodeConfig, MicrocodeController};
use mbist_core::progfsm::{compile as fsm_compile, ProgFsmConfig, ProgFsmController};
use mbist_core::{BistController, Flexibility};
use mbist_march::{library, MarchTest};
use mbist_rtl::{CellStyle, Structure};

use crate::tech::{AreaEstimate, Technology};

/// Storage capacity of the microcode design point, in instructions. Sized
/// for the symmetric March C / March A family with retention variants
/// (largest member: March A+ at 17 instructions) plus margin.
pub const MICROCODE_DESIGN_CAPACITY: usize = 20;

/// Circular-buffer capacity of the programmable FSM design point
/// (largest expressible program: March C+ at 10 instructions).
pub const PROGFSM_DESIGN_CAPACITY: usize = 12;

/// One evaluated controller design.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// Row label, e.g. `"Microcode-Based"`.
    pub name: String,
    /// Programmability class.
    pub flexibility: Flexibility,
    /// Elaborated controller structure.
    pub structure: Structure,
    /// Evaluated area.
    pub area: AreaEstimate,
}

/// What kind of memory the BIST design supports — the paper's Table 1
/// (bit-oriented, single-port) versus Table 2 (word-oriented, multiport)
/// configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupportLevel {
    /// Bit-oriented, single-port.
    BitOriented,
    /// Word-oriented (data-background loop, wider datapath).
    WordOriented,
    /// Multiport (port loop) in addition to word-oriented support.
    Multiport,
}

impl SupportLevel {
    /// All levels in report order.
    pub const ALL: [SupportLevel; 3] =
        [SupportLevel::BitOriented, SupportLevel::WordOriented, SupportLevel::Multiport];

    /// Hardwired loop capabilities for this level.
    #[must_use]
    pub fn caps(self) -> HardwiredCaps {
        match self {
            SupportLevel::BitOriented => HardwiredCaps::default(),
            SupportLevel::WordOriented => {
                HardwiredCaps { background_loop: true, port_loop: false }
            }
            SupportLevel::Multiport => {
                HardwiredCaps { background_loop: true, port_loop: true }
            }
        }
    }

    /// Report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SupportLevel::BitOriented => "Bit-Oriented",
            SupportLevel::WordOriented => "Word-Oriented",
            SupportLevel::Multiport => "Multiport",
        }
    }
}

/// Elaborates the microcode-based design point.
///
/// `style` selects the storage-cell implementation:
/// [`CellStyle::FullScan`] is the baseline of Tables 1-2,
/// [`CellStyle::ScanOnly`] the redesigned controller of Table 3.
#[must_use]
pub fn microcode_design(
    tech: &Technology,
    style: CellStyle,
    level: SupportLevel,
) -> DesignPoint {
    let config = MicrocodeConfig {
        capacity: MICROCODE_DESIGN_CAPACITY,
        cell_style: style,
        ..MicrocodeConfig::default()
    };
    // The representative program does not change the elaborated hardware —
    // only capacity and style do.
    let program = mc_compile(&library::march_c()).expect("march C compiles");
    let ctrl = MicrocodeController::new("march-c", &program, config)
        .expect("design capacity fits march C");
    let mut structure = ctrl.structure();
    add_support_overhead(&mut structure, level);
    let area = tech.area_of(&structure);
    let name = match style {
        CellStyle::ScanOnly => "Microcode-Based (scan-only)".to_string(),
        _ => "Microcode-Based".to_string(),
    };
    DesignPoint { name, flexibility: Flexibility::High, structure, area }
}

/// Elaborates the programmable FSM-based design point.
#[must_use]
pub fn progfsm_design(tech: &Technology, level: SupportLevel) -> DesignPoint {
    let config =
        ProgFsmConfig { capacity: PROGFSM_DESIGN_CAPACITY, ..ProgFsmConfig::default() };
    let program = fsm_compile(&library::march_c()).expect("march C compiles");
    let ctrl = ProgFsmController::new("march-c", &program, config)
        .expect("design capacity fits march C");
    let mut structure = ctrl.structure();
    add_support_overhead(&mut structure, level);
    let area = tech.area_of(&structure);
    DesignPoint {
        name: "Prog. FSM-Based".to_string(),
        flexibility: Flexibility::Medium,
        structure,
        area,
    }
}

/// Elaborates (synthesizes) a hardwired design point for one algorithm.
#[must_use]
pub fn hardwired_design(
    tech: &Technology,
    test: &MarchTest,
    level: SupportLevel,
) -> DesignPoint {
    let fsm = HardwiredFsm::new(test, level.caps());
    let mut structure = crate::synth::synthesized_structure(&fsm);
    add_support_overhead(&mut structure, level);
    let area = tech.area_of(&structure);
    DesignPoint {
        name: display_name(test.name()),
        flexibility: Flexibility::Low,
        structure,
        area,
    }
}

/// Controller-side support logic shared by all architectures when the
/// memory is word-oriented / multiport: background-loop condition logic
/// and port-loop condition logic (the datapath growth — wider comparator,
/// port counter — is identical across architectures and excluded, exactly
/// as the paper isolates controller "internal area").
fn add_support_overhead(structure: &mut Structure, level: SupportLevel) {
    use mbist_rtl::Primitive;
    match level {
        SupportLevel::BitOriented => {}
        SupportLevel::WordOriented => {
            structure.push_child(
                Structure::leaf("bg_loop_support")
                    .with(Primitive::Dff, 3)
                    .with(Primitive::Nand2, 14)
                    .with(Primitive::Inv, 4),
            );
        }
        SupportLevel::Multiport => {
            structure.push_child(
                Structure::leaf("bg_loop_support")
                    .with(Primitive::Dff, 3)
                    .with(Primitive::Nand2, 14)
                    .with(Primitive::Inv, 4),
            );
            structure.push_child(
                Structure::leaf("port_loop_support")
                    .with(Primitive::Dff, 2)
                    .with(Primitive::Nand2, 10)
                    .with(Primitive::Inv, 3),
            );
        }
    }
}

fn display_name(name: &str) -> String {
    match name {
        "march-c" => "March C".to_string(),
        "march-c+" => "March C+".to_string(),
        "march-c++" => "March C++".to_string(),
        "march-a" => "March A".to_string(),
        "march-a+" => "March A+".to_string(),
        "march-a++" => "March A++".to_string(),
        other => other.to_string(),
    }
}

/// The hardwired baseline set of the paper's §3.
#[must_use]
pub fn baseline_algorithms() -> Vec<MarchTest> {
    vec![
        library::march_c(),
        library::march_c_plus(),
        library::march_c_plus_plus(),
        library::march_a(),
        library::march_a_plus(),
        library::march_a_plus_plus(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microcode_scan_only_redesign_cuts_area_by_half_or_more() {
        let t = Technology::cmos5s();
        let full = microcode_design(&t, CellStyle::FullScan, SupportLevel::BitOriented);
        let adj = microcode_design(&t, CellStyle::ScanOnly, SupportLevel::BitOriented);
        let reduction = 1.0 - adj.area.ge / full.area.ge;
        assert!(
            (0.4..=0.7).contains(&reduction),
            "paper reports ~60% reduction, got {:.0}%",
            reduction * 100.0
        );
    }

    #[test]
    fn adjusted_microcode_beats_prog_fsm() {
        let t = Technology::cmos5s();
        let adj = microcode_design(&t, CellStyle::ScanOnly, SupportLevel::BitOriented);
        let fsm = progfsm_design(&t, SupportLevel::BitOriented);
        assert!(
            adj.area.ge < fsm.area.ge,
            "adjusted microcode ({:.0} GE) must undercut prog FSM ({:.0} GE)",
            adj.area.ge,
            fsm.area.ge
        );
    }

    #[test]
    fn hardwired_grows_with_algorithm_enhancement() {
        let t = Technology::cmos5s();
        let level = SupportLevel::BitOriented;
        let c = hardwired_design(&t, &library::march_c(), level).area.ge;
        let cp = hardwired_design(&t, &library::march_c_plus(), level).area.ge;
        let cpp = hardwired_design(&t, &library::march_c_plus_plus(), level).area.ge;
        assert!(c < cp && cp < cpp, "{c:.0} < {cp:.0} < {cpp:.0}");
    }

    #[test]
    fn hardwired_is_always_cheapest() {
        let t = Technology::cmos5s();
        let level = SupportLevel::BitOriented;
        let adj = microcode_design(&t, CellStyle::ScanOnly, level).area.ge;
        for test in baseline_algorithms() {
            let hw = hardwired_design(&t, &test, level).area.ge;
            assert!(hw < adj, "{}: {hw:.0} should be below {adj:.0}", test.name());
        }
    }

    #[test]
    fn support_levels_increase_area_monotonically() {
        let t = Technology::cmos5s();
        let areas: Vec<f64> = SupportLevel::ALL
            .iter()
            .map(|&l| microcode_design(&t, CellStyle::FullScan, l).area.ge)
            .collect();
        assert!(areas[0] < areas[1] && areas[1] < areas[2]);
    }

    #[test]
    fn flexibility_labels_match_architectures() {
        let t = Technology::cmos5s();
        assert_eq!(
            microcode_design(&t, CellStyle::FullScan, SupportLevel::BitOriented)
                .flexibility,
            Flexibility::High
        );
        assert_eq!(
            progfsm_design(&t, SupportLevel::BitOriented).flexibility,
            Flexibility::Medium
        );
        assert_eq!(
            hardwired_design(&t, &library::march_c(), SupportLevel::BitOriented)
                .flexibility,
            Flexibility::Low
        );
    }
}
