//! Regeneration of the paper's Tables 1-3.

use mbist_rtl::CellStyle;

use crate::model::{
    baseline_algorithms, hardwired_design, microcode_design, progfsm_design, DesignPoint,
    SupportLevel,
};
use crate::report::Table;
use crate::tech::Technology;

fn fmt_ge(ge: f64) -> String {
    format!("{ge:.0}")
}

fn fmt_um2(um2: f64) -> String {
    format!("{um2:.0}")
}

/// The design points of Table 1/2 rows, in paper order.
#[must_use]
pub fn design_points(tech: &Technology, level: SupportLevel) -> Vec<DesignPoint> {
    let mut rows = vec![
        microcode_design(tech, CellStyle::FullScan, level),
        progfsm_design(tech, level),
    ];
    for test in baseline_algorithms() {
        rows.push(hardwired_design(tech, &test, level));
    }
    rows
}

/// **Table 1** — size of the memory BIST methodology for bit-oriented,
/// single-port memories: flexibility, internal area (2-input NAND gate
/// equivalents) and size in µm².
#[must_use]
pub fn table1(tech: &Technology) -> Table {
    let mut t = Table::new(
        "Table 1. Size of the Memory BIST Methodology For Bit-Oriented and \
         Single-port Memories",
        vec!["Method".into(), "Flex.".into(), "Int. Area (GE)".into(), "Size um^2".into()],
    );
    for p in design_points(tech, SupportLevel::BitOriented) {
        t.push_row(vec![
            p.name.clone(),
            p.flexibility.to_string(),
            fmt_ge(p.area.ge),
            fmt_um2(p.area.um2),
        ]);
    }
    t
}

/// **Table 2** — size for word-oriented and multiport memories: internal
/// area and µm² under each support level.
#[must_use]
pub fn table2(tech: &Technology) -> Table {
    let mut t = Table::new(
        "Table 2. Size of the Memory BIST Methodology For Word-Oriented and \
         Multiport Memories",
        vec![
            "Method".into(),
            "Word Int.A. (GE)".into(),
            "Word Size um^2".into(),
            "Multiport Int.A. (GE)".into(),
            "Multiport Size um^2".into(),
        ],
    );
    let word = design_points(tech, SupportLevel::WordOriented);
    let multi = design_points(tech, SupportLevel::Multiport);
    for (w, m) in word.iter().zip(multi.iter()) {
        assert_eq!(w.name, m.name);
        t.push_row(vec![
            w.name.clone(),
            fmt_ge(w.area.ge),
            fmt_um2(w.area.um2),
            fmt_ge(m.area.ge),
            fmt_um2(m.area.um2),
        ]);
    }
    t
}

/// **Table 3** — adjusted size of the microcode-based controller with the
/// storage unit redesigned in scan-only cells, per support level, with the
/// reduction against the full-scan baseline.
#[must_use]
pub fn table3(tech: &Technology) -> Table {
    let mut t = Table::new(
        "Table 3. Adjusted Size of Microcode-Based Controller (scan-only storage cells)",
        vec![
            "Method".into(),
            "Adj. Int. Area (GE)".into(),
            "Adj. Size um^2".into(),
            "Reduction".into(),
        ],
    );
    for level in SupportLevel::ALL {
        let full = microcode_design(tech, CellStyle::FullScan, level);
        let adj = microcode_design(tech, CellStyle::ScanOnly, level);
        let reduction = 1.0 - adj.area.ge / full.area.ge;
        t.push_row(vec![
            level.label().to_string(),
            fmt_ge(adj.area.ge),
            fmt_um2(adj.area.um2),
            format!("{:.0}%", reduction * 100.0),
        ]);
    }
    t
}

/// The paper's §3 closing observations, computed from the model so the
/// experiment harness can assert them.
#[derive(Debug, Clone, PartialEq)]
pub struct Observations {
    /// Fractional area reduction of the scan-only redesign (paper: ~60%).
    pub scan_only_reduction: f64,
    /// Adjusted microcode area / programmable FSM area (paper: < 1).
    pub microcode_vs_progfsm: f64,
    /// Hardwired March C++ area / hardwired March C area (paper: > 1, the
    /// cost of enhancing the fault model).
    pub enhancement_growth: f64,
    /// (adjusted microcode − March C++) / (adjusted microcode − March C):
    /// below 1 means the programmable-versus-hardwired gap narrows as the
    /// hardwired unit is enhanced (paper's final observation).
    pub gap_narrowing: f64,
}

/// Computes the observations at the bit-oriented design point.
#[must_use]
pub fn observations(tech: &Technology) -> Observations {
    let level = SupportLevel::BitOriented;
    let full = microcode_design(tech, CellStyle::FullScan, level).area.ge;
    let adj = microcode_design(tech, CellStyle::ScanOnly, level).area.ge;
    let fsm = progfsm_design(tech, level).area.ge;
    let algorithms = baseline_algorithms();
    let c = hardwired_design(tech, &algorithms[0], level).area.ge;
    let cpp = hardwired_design(tech, &algorithms[2], level).area.ge;
    Observations {
        scan_only_reduction: 1.0 - adj / full,
        microcode_vs_progfsm: adj / fsm,
        enhancement_growth: cpp / c,
        gap_narrowing: (adj - cpp) / (adj - c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eight_rows_with_flexibility_column() {
        let t = table1(&Technology::cmos5s());
        assert_eq!(t.rows.len(), 8);
        assert_eq!(t.cell("Microcode-Based", "Flex."), Some("HIGH"));
        assert_eq!(t.cell("Prog. FSM-Based", "Flex."), Some("MEDIUM"));
        for row in ["March C", "March C+", "March C++", "March A", "March A+", "March A++"]
        {
            assert_eq!(t.cell(row, "Flex."), Some("LOW"), "{row}");
        }
    }

    #[test]
    fn table2_areas_exceed_table1() {
        let tech = Technology::cmos5s();
        let t1 = table1(&tech);
        let t2 = table2(&tech);
        for row in ["Microcode-Based", "Prog. FSM-Based", "March C", "March A++"] {
            let base: f64 = t1.cell(row, "Int. Area (GE)").unwrap().parse().unwrap();
            let word: f64 = t2.cell(row, "Word Int.A. (GE)").unwrap().parse().unwrap();
            let multi: f64 =
                t2.cell(row, "Multiport Int.A. (GE)").unwrap().parse().unwrap();
            assert!(base < word && word < multi, "{row}: {base} < {word} < {multi}");
        }
    }

    #[test]
    fn table3_reduction_is_in_the_paper_band() {
        let t = table3(&Technology::cmos5s());
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let pct: f64 = row[3].trim_end_matches('%').parse().unwrap();
            assert!((40.0..=70.0).contains(&pct), "reduction {pct}% out of band");
        }
    }

    #[test]
    fn observations_match_paper_shape() {
        let obs = observations(&Technology::cmos5s());
        assert!(
            (0.4..=0.7).contains(&obs.scan_only_reduction),
            "storage redesign reduction {:.2}",
            obs.scan_only_reduction
        );
        assert!(
            obs.microcode_vs_progfsm < 1.0,
            "adjusted microcode must undercut prog FSM ({:.2})",
            obs.microcode_vs_progfsm
        );
        assert!(obs.enhancement_growth > 1.0);
        assert!(
            obs.gap_narrowing < 1.0,
            "gap must narrow as the hardwired unit is enhanced ({:.2})",
            obs.gap_narrowing
        );
    }

    #[test]
    fn tables_render_to_text() {
        let tech = Technology::cmos5s();
        for t in [table1(&tech), table2(&tech), table3(&tech)] {
            let s = t.to_string();
            assert!(s.contains('|'));
            assert!(s.lines().count() > 5);
        }
    }
}
