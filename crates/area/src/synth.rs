//! Logic synthesis of hardwired controllers.
//!
//! A [`HardwiredFsm`] exports its full state transition table; this module
//! turns every next-state and output bit into an incompletely-specified
//! truth table over `{state bits, status inputs}` (unused state codes are
//! don't-cares), minimizes each with the two-level minimizer, and counts
//! the shared-PLA gate cost — the closest tractable analogue of the
//! paper's ASIC synthesis flow.

use mbist_core::hardwired::HardwiredFsm;
use mbist_logic::{estimate_multi_output, minimize, Cover, Spec, TruthTable};
use mbist_rtl::{Primitive, Structure};

/// The synthesized combinational network of a hardwired controller.
#[derive(Debug, Clone)]
pub struct SynthesizedFsm {
    /// State-register width.
    pub state_bits: u32,
    /// Status inputs observed.
    pub status_inputs: u32,
    /// Minimized covers: next-state bits first, then output bits.
    pub covers: Vec<Cover>,
    /// Distinct product terms after PLA-style sharing.
    pub product_terms: usize,
    /// NAND2 gates of the shared network.
    pub nand2: u32,
    /// Inverters of the shared network.
    pub inv: u32,
}

/// Synthesizes the next-state and output logic of a hardwired controller.
///
/// # Panics
///
/// Panics if the controller is too large for the minimizer (more than 16
/// combined state/status bits — far beyond any march controller in the
/// paper's evaluation).
#[must_use]
pub fn synthesize(fsm: &HardwiredFsm) -> SynthesizedFsm {
    let table = fsm.transition_table();
    let state_bits = fsm.state_bits();
    let status_inputs = fsm.input_count() as u32;
    let total_inputs = (state_bits + status_inputs) as u8;
    assert!(total_inputs <= 16, "controller too large for two-level synthesis");

    let next_bits = state_bits as usize;
    let out_bits = table.first().map_or(0, |r| r.outputs.len());

    let mut covers = Vec::with_capacity(next_bits + out_bits);
    for bit in 0..next_bits + out_bits {
        let mut tt = TruthTable::from_fn(total_inputs, |_| Spec::Dc);
        for row in &table {
            let minterm = row.state as u64 | (u64::from(row.inputs) << state_bits);
            let on = if bit < next_bits {
                (row.next >> bit) & 1 == 1
            } else {
                row.outputs[bit - next_bits]
            };
            tt.set(minterm, if on { Spec::On } else { Spec::Off });
        }
        covers.push(minimize(&tt).expect("input count checked above"));
    }

    let est = estimate_multi_output(&covers);
    SynthesizedFsm {
        state_bits,
        status_inputs,
        product_terms: est.distinct_terms,
        nand2: est.gates.nand2,
        inv: est.gates.inv,
        covers,
    }
}

/// The full structural inventory of a synthesized hardwired controller:
/// state register plus minimized combinational network.
#[must_use]
pub fn synthesized_structure(fsm: &HardwiredFsm) -> Structure {
    let synth = synthesize(fsm);
    Structure::named("hardwired_controller")
        .with_child(
            Structure::leaf("state_register").with(Primitive::Dff, synth.state_bits),
        )
        .with_child(
            Structure::leaf("next_state_and_output_logic")
                .with(Primitive::Nand2, synth.nand2)
                .with(Primitive::Inv, synth.inv),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_core::hardwired::HardwiredCaps;
    use mbist_march::library;

    #[test]
    fn synthesized_covers_reproduce_the_table() {
        let fsm = HardwiredFsm::new(&library::mats_plus(), HardwiredCaps::default());
        let synth = synthesize(&fsm);
        let state_bits = synth.state_bits;
        for row in fsm.transition_table() {
            let m = row.state as u64 | (u64::from(row.inputs) << state_bits);
            for bit in 0..state_bits as usize {
                let want = (row.next >> bit) & 1 == 1;
                assert_eq!(
                    synth.covers[bit].evaluate(m),
                    want,
                    "next-state bit {bit} wrong at state {} inputs {}",
                    row.state,
                    row.inputs
                );
            }
            for (k, &want) in row.outputs.iter().enumerate() {
                assert_eq!(
                    synth.covers[state_bits as usize + k].evaluate(m),
                    want,
                    "output {k} wrong at state {} inputs {}",
                    row.state,
                    row.inputs
                );
            }
        }
    }

    #[test]
    fn larger_algorithms_need_more_logic() {
        let caps = HardwiredCaps::default();
        let small = synthesize(&HardwiredFsm::new(&library::mats_plus(), caps));
        let big = synthesize(&HardwiredFsm::new(&library::march_a(), caps));
        assert!(
            big.nand2 > small.nand2,
            "march A ({}) should need more gates than MATS+ ({})",
            big.nand2,
            small.nand2
        );
    }

    #[test]
    fn caps_add_inputs_and_logic() {
        let plain =
            synthesize(&HardwiredFsm::new(&library::march_c(), HardwiredCaps::default()));
        let full = synthesize(&HardwiredFsm::new(
            &library::march_c(),
            HardwiredCaps { background_loop: true, port_loop: true },
        ));
        assert_eq!(plain.status_inputs, 1);
        assert_eq!(full.status_inputs, 3);
        assert!(full.nand2 >= plain.nand2);
    }

    #[test]
    fn structure_contains_register_and_logic() {
        let fsm = HardwiredFsm::new(&library::march_c(), HardwiredCaps::default());
        let s = synthesized_structure(&fsm);
        assert_eq!(s.count(Primitive::Dff), fsm.state_bits());
        assert!(s.count(Primitive::Nand2) > 0);
    }
}
